"""Active PEERING experiments: poisoning and the magnet (Section 3.2).

Installs a PEERING testbed on a small synthetic Internet, then:

1. discovers one target AS's full route preference order by
   iteratively poisoning its next hops, and
2. runs the magnet/anycast experiment and infers which BGP decision
   step picked each AS's route (Table 2's procedure).

Run with:  python examples/poisoning_study.py
"""

from repro.bgp import BGPSimulator
from repro.core.active_analysis import (
    classify_preference_orders,
    infer_magnet_decisions,
)
from repro.peering import (
    FeedArchive,
    PeeringTestbed,
    default_collectors,
    discover_alternate_routes,
    run_magnet_experiments,
)
from repro.topogen import generate_internet, infer_topology
from repro.topogen.config import small_config


def main() -> None:
    internet = generate_internet(small_config(), seed=3)
    testbed = PeeringTestbed(internet, num_muxes=5, seed=3)
    inferred, _ = infer_topology(internet, seed=3)
    simulator = BGPSimulator(
        internet.graph, policies=internet.policies, country_of=internet.country_of
    )
    print(f"PEERING installed as AS{testbed.asn} behind muxes "
          f"{[mux.host_asn for mux in testbed.muxes]}")

    # Pick targets: transit ASes likely to have several routes.
    targets = [asn for asn in internet.graph.asns() if internet.graph.degree(asn) >= 6][:8]
    discovery = discover_alternate_routes(
        testbed, simulator, targets, monitor_asns=internet.eyeball_asns[:20]
    )
    print(f"\nAlternate-route discovery over {len(targets)} targets "
          f"({discovery.distinct_announcements} distinct announcements):")
    for observation in discovery.observations[:4]:
        hops = " | ".join(
            f"via AS{route.next_hop} (len {len(route.path)})"
            for route in observation.routes
        )
        print(f"  AS{observation.target}: {hops}")
    summary = classify_preference_orders(discovery.observations, inferred)
    print(f"  preference orders: {summary.both} both, {summary.best_only} best-only, "
          f"{summary.short_only} short-only, {summary.neither} neither")

    # Magnet experiment.
    feeds = FeedArchive(default_collectors(internet, seed=3))
    observations = run_magnet_experiments(
        testbed, simulator, feeds, vp_asns=internet.eyeball_asns[:20]
    )
    table = infer_magnet_decisions(observations, inferred)
    print("\nMagnet experiment — inferred decision triggers (BGP feeds):")
    for trigger, count in table.feed_counts.items():
        print(f"  {trigger.value:<26} {table.percent('feeds', trigger):>5.1f}%  ({count})")
    print(f"  inference accuracy vs simulator ground truth: "
          f"{100 * table.inference_accuracy():.0f}%")


if __name__ == "__main__":
    main()
