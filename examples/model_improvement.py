"""Building a better routing model from the study's findings.

The paper's conclusion promises to "incorporate our findings into new
models of Internet routing".  This example does it: run a small study,
build the corrected :class:`ImprovedModel` (siblings merged, undersea
cables re-labeled, PSP folded in), and compare the improvement ladder —
plus full-path prediction accuracy and the violation-attribution
waterfall that shows where the remaining error lives.

Run with:  python examples/model_improvement.py
"""

from repro.core import (
    Explanation,
    GaoRexfordEngine,
    ImprovedModel,
    PathPredictor,
    Study,
    StudyConfig,
    ViolationExplainer,
    evaluate_predictions,
)
from repro.core.classification import DecisionLabel
from repro.core.geography import GeographyAnalysis
from repro.topogen.config import small_config


def main() -> None:
    config = StudyConfig(
        topology=small_config(),
        seed=21,
        num_probes=400,
        probes_per_continent=25,
    )
    results = Study(config).run()

    # The improvement ladder.
    simple = results.figure1["Simple"].percent(DecisionLabel.BEST_SHORT)
    all2 = results.figure1["All-2"].percent(DecisionLabel.BEST_SHORT)
    improved = ImprovedModel.build(
        results.inferred,
        siblings=results.siblings,
        cables=results.internet.cables,
        first_hops=results.first_hops_2,
    )
    improved_pct = improved.classify(results.decisions).percent(
        DecisionLabel.BEST_SHORT
    )
    print("Model improvement ladder (Best/Short):")
    print(f"  plain Gao-Rexford:  {simple:.1f}%")
    print(f"  paper All-2 stack:  {all2:.1f}%")
    print(f"  improved model:     {improved_pct:.1f}%")

    # Where does the remaining error live?
    geography = GeographyAnalysis(
        results.geo, results.internet.whois, results.internet.cables, results.engine
    )
    explainer = ViolationExplainer(
        engine_simple=results.engine,
        siblings=results.siblings,
        first_hops_1=results.first_hops_1,
        first_hops_2=results.first_hops_2,
        cables=results.internet.cables,
        geography=geography,
    )
    attribution = explainer.attribute(results.traces)
    print("\nViolation attribution:")
    for explanation in Explanation:
        if explanation is Explanation.CONSISTENT:
            continue
        share = attribution.percent_of_violations(explanation)
        if share:
            print(f"  {explanation.value:<38} {share:5.1f}%")

    # Full-path prediction with the corrected model.
    plain = PathPredictor(engine=GaoRexfordEngine(results.inferred))
    corrected = PathPredictor(engine=improved.engine, first_hops=improved.first_hops)
    paths = []
    prefixes = []
    for trace in results.traces:
        decision, _label = trace.decisions[0]
        paths.append(decision.path)
        prefixes.append(decision.prefix)
    plain_score = evaluate_predictions(plain, paths)
    improved_score = evaluate_predictions(corrected, paths, prefixes=prefixes)
    print("\nFull-path prediction (exact match):")
    print(f"  plain model:    {100 * plain_score.exact_match_rate:.1f}%")
    print(f"  improved model: {100 * improved_score.exact_match_rate:.1f}%")


if __name__ == "__main__":
    main()
