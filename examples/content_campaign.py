"""Passive measurement campaign toward popular content (Section 3.1).

Reproduces the paper's passive pipeline at small scale: select probes
continent-balanced, traceroute to every content DNS name, convert the
traceroutes to AS paths, classify every routing decision against the
Gao-Rexford model, and print the Figure-1 breakdown plus the
destination skew of Figure 2.

Run with:  python examples/content_campaign.py
"""

from repro.core.classification import DecisionLabel
from repro.core.pipeline import FIGURE1_LAYERS, Study, StudyConfig
from repro.topogen.config import small_config


def main() -> None:
    config = StudyConfig(
        topology=small_config(),
        seed=11,
        num_probes=400,
        probes_per_continent=25,
        active_experiments=False,  # passive campaign only
    )
    results = Study(config).run()

    print(f"probes selected: {len(results.selected_probes)}")
    print(f"traceroutes:     {len(results.dataset.measurements)}")
    print(f"destination ASes: {len(results.dataset.destination_asns)}")
    print(f"routing decisions observed: {len(results.decisions)}")
    print()
    print("Figure 1 — decision breakdown per refinement layer")
    header = f"{'layer':<8}" + "".join(f"{label.value:>15}" for label in DecisionLabel)
    print(header)
    for layer in FIGURE1_LAYERS:
        counts = results.figure1[layer]
        row = f"{layer:<8}" + "".join(
            f"{counts.percent(label):>14.1f}%" for label in DecisionLabel
        )
        print(row)

    print()
    print("Figure 2 — top violation destinations")
    names = {asys.asn: asys.name for asys in results.internet.graph.ases()}
    for asn, count in results.skew.by_destination.ranked[:5]:
        share = 100.0 * results.skew.by_destination.share_of(asn)
        print(f"  AS{asn:<6} {names.get(asn, '?'):<16} {count:>5} violations ({share:.1f}%)")


if __name__ == "__main__":
    main()
