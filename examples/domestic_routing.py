"""Geography study: continents, domestic paths, undersea cables (Sec 6).

Runs a small passive campaign and asks the paper's three geographic
questions: are continental traceroutes more model-consistent, how many
deviations come from ASes keeping traffic in-country, and how guilty
are undersea-cable ASes?

Run with:  python examples/domestic_routing.py
"""

from repro.core.classification import DecisionLabel
from repro.core.pipeline import Study, StudyConfig
from repro.topogen.config import small_config


def main() -> None:
    config = StudyConfig(
        topology=small_config(),
        seed=5,
        num_probes=500,
        probes_per_continent=30,
        active_experiments=False,
    )
    results = Study(config).run()

    breakdown = results.continental
    print("Figure 3 — model fit by geography")
    print(f"  continental traces:      "
          f"{100 * breakdown.continental_trace_fraction():.1f}% of decisions")
    print(f"  continental Best/Short:  "
          f"{breakdown.continental.percent(DecisionLabel.BEST_SHORT):.1f}%")
    print(f"  intercontinental:        "
          f"{breakdown.intercontinental.percent(DecisionLabel.BEST_SHORT):.1f}%")

    print("\nTable 3 — deviations explained by domestic preference")
    for row in results.domestic_rows:
        if row.violations == 0:
            continue
        print(f"  {row.continent}: {row.explained}/{row.violations} "
              f"({row.percent_explained:.1f}%) explained")

    summary = results.cable_summary
    print("\nTable 4 — undersea cable involvement")
    print(f"  paths crossing cable ASes: {100 * summary.path_fraction:.2f}%")
    print(f"  cable decisions deviating: {100 * summary.deviating_fraction:.1f}%")
    for row in summary.rows:
        print(f"  {row.label.value:<16} {row.percent:.2f}% involve cables")


if __name__ == "__main__":
    main()
