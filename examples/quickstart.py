"""Quickstart: build a tiny Internet, route it, and grade a decision.

Walks the core objects end to end in under a second:

1. generate a synthetic Internet (ground truth),
2. derive the inferred (CAIDA-like) topology the analysis is allowed
   to see,
3. converge BGP for one content prefix,
4. compare one AS's actual next-hop choice against the Gao-Rexford
   model's prediction.

Run with:  python examples/quickstart.py
"""

from repro.bgp import BGPSimulator
from repro.core.classification import Decision, classify_decision
from repro.core.gao_rexford import GaoRexfordEngine
from repro.topogen import generate_internet, infer_topology
from repro.topogen.config import small_config


def main() -> None:
    # 1. Ground truth: ~130 ASes with realistic relationships/policies.
    internet = generate_internet(small_config(), seed=7)
    print(f"generated {len(internet.graph)} ASes, {internet.graph.num_links()} links")

    # 2. What relationship inference sees of it (with its usual errors).
    inferred, _complex_dataset = infer_topology(internet, seed=7)
    print(f"inferred topology has {inferred.num_links()} links")

    # 3. Converge BGP for one content provider's serving prefix.
    provider = internet.content[0]
    origin = provider.asns[0]
    prefix = internet.prefixes[origin][-1]
    simulator = BGPSimulator(
        internet.graph, policies=internet.policies, country_of=internet.country_of
    )
    simulator.originate(origin, prefix)
    print(f"{provider.name} (AS{origin}) announced {prefix}")

    # 4. Grade the routing decisions along one eyeball's path.
    source = internet.eyeball_asns[0]
    path = simulator.forwarding_path(source, prefix)
    print(f"data-plane path from AS{source}: {' -> '.join(f'AS{a}' for a in path)}")

    engine = GaoRexfordEngine(inferred)
    for index in range(len(path) - 1):
        decision = Decision(
            asn=path[index],
            next_hop=path[index + 1],
            destination=origin,
            prefix=prefix,
            measured_len=len(path) - 1 - index,
            source_asn=source,
            path=tuple(path),
        )
        label = classify_decision(decision, engine)
        print(f"  AS{decision.asn} -> AS{decision.next_hop}: {label.value}")


if __name__ == "__main__":
    main()
