"""Tests for serial-format I/O and multi-snapshot aggregation."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import ASGraph, Relationship, aggregate_snapshots
from repro.topology.serial import (
    diff_topologies,
    dump_relationships,
    link_set,
    load_relationships,
    parse_relationship_lines,
)


class TestSerialFormat:
    def test_parse_basic(self):
        graph = parse_relationship_lines(
            ["# header", "1|2|-1", "2|3|0", "4|5|2", ""]
        )
        assert graph.relationship(1, 2) is Relationship.CUSTOMER
        assert graph.relationship(2, 3) is Relationship.PEER
        assert graph.relationship(4, 5) is Relationship.SIBLING

    def test_parse_rejects_bad_code(self):
        with pytest.raises(ValueError):
            parse_relationship_lines(["1|2|7"])

    def test_parse_rejects_short_line(self):
        with pytest.raises(ValueError):
            parse_relationship_lines(["1|2"])

    def test_parse_rejects_non_integer(self):
        with pytest.raises(ValueError):
            parse_relationship_lines(["a|2|0"])

    def test_roundtrip_through_stream(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.CUSTOMER)
        graph.add_link(2, 3, Relationship.PEER)
        graph.add_link(3, 4, Relationship.SIBLING)
        text = dump_relationships(graph)
        reloaded = load_relationships(io.StringIO(text))
        assert link_set(reloaded) == link_set(graph)

    def test_roundtrip_through_file(self, tmp_path):
        graph = ASGraph()
        graph.add_link(10, 20, Relationship.CUSTOMER)
        path = tmp_path / "rels.txt"
        dump_relationships(graph, path)
        reloaded = load_relationships(path)
        assert reloaded.relationship(10, 20) is Relationship.CUSTOMER

    def test_diff(self):
        old = ASGraph()
        old.add_link(1, 2, Relationship.PEER)
        new = ASGraph()
        new.add_link(1, 2, Relationship.PEER)
        new.add_link(1, 3, Relationship.CUSTOMER)
        added, removed = diff_topologies(old, new)
        assert added == {(1, 3, -1)}
        assert removed == frozenset()


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


class TestAggregation:
    def test_union_of_disjoint_snapshots(self):
        s1 = _graph((1, 2, Relationship.PEER))
        s2 = _graph((3, 4, Relationship.CUSTOMER))
        merged = aggregate_snapshots([s1, s2])
        assert merged.relationship(1, 2) is Relationship.PEER
        assert merged.relationship(3, 4) is Relationship.CUSTOMER

    def test_latest_two_override_majority(self):
        """Three old snapshots say peer; the last two agree on c2p -> c2p."""
        old = [_graph((1, 2, Relationship.PEER)) for _ in range(3)]
        new = [_graph((1, 2, Relationship.CUSTOMER)) for _ in range(2)]
        merged = aggregate_snapshots(old + new)
        assert merged.relationship(1, 2) is Relationship.CUSTOMER

    def test_weighted_majority_when_latest_disagree(self):
        """Recency weighting decides when the last two snapshots differ."""
        snapshots = [
            _graph((1, 2, Relationship.CUSTOMER)),  # weight 1
            _graph((1, 2, Relationship.CUSTOMER)),  # weight 2
            _graph((1, 2, Relationship.CUSTOMER)),  # weight 3
            _graph((1, 2, Relationship.PEER)),      # weight 4
            _graph((1, 2, Relationship.CUSTOMER)),  # weight 5
        ]
        merged = aggregate_snapshots(snapshots)
        # customer weight 1+2+3+5=11 vs peer 4.
        assert merged.relationship(1, 2) is Relationship.CUSTOMER

    def test_direction_of_c2p_is_preserved(self):
        snapshots = [_graph((7, 3, Relationship.CUSTOMER))] * 2
        merged = aggregate_snapshots(snapshots)
        # AS3 is the customer of AS7 regardless of ASN ordering.
        assert merged.relationship(7, 3) is Relationship.CUSTOMER
        assert merged.relationship(3, 7) is Relationship.PROVIDER

    def test_min_appearances_filters_transients(self):
        s1 = _graph((1, 2, Relationship.PEER), (3, 4, Relationship.PEER))
        s2 = _graph((1, 2, Relationship.PEER))
        s3 = _graph((1, 2, Relationship.PEER))
        merged = aggregate_snapshots([s1, s2, s3], min_appearances=2)
        assert merged.has_link(1, 2)
        assert not merged.has_link(3, 4)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            aggregate_snapshots([])

    def test_single_snapshot_is_identity(self):
        s1 = _graph((1, 2, Relationship.PEER), (2, 3, Relationship.CUSTOMER))
        merged = aggregate_snapshots([s1])
        assert link_set(merged) == link_set(s1)

    rel_strategy = st.sampled_from(
        [Relationship.CUSTOMER, Relationship.PEER, Relationship.SIBLING]
    )

    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=1, max_value=8),
                    st.integers(min_value=9, max_value=16),
                    rel_strategy,
                ),
                max_size=10,
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_aggregate_links_subset_of_union(self, snapshot_links):
        """Aggregation never invents links absent from all snapshots."""
        snapshots = []
        union_pairs = set()
        for links in snapshot_links:
            graph = ASGraph()
            for a, b, rel in links:
                graph.add_link(a, b, rel)
                union_pairs.add((min(a, b), max(a, b)))
            snapshots.append(graph)
        merged = aggregate_snapshots(snapshots)
        merged_pairs = {(min(a, b), max(a, b)) for a, b, _ in merged.links()}
        assert merged_pairs == union_pairs
