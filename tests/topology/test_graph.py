"""Unit tests for the AS graph and relationship types."""

import pytest

from repro.topology import AS, ASGraph, Relationship
from repro.topology.asys import ASPath
from repro.topology.relationships import can_export


class TestRelationship:
    def test_flipped_inverts_customer_provider(self):
        assert Relationship.CUSTOMER.flipped() is Relationship.PROVIDER
        assert Relationship.PROVIDER.flipped() is Relationship.CUSTOMER

    def test_flipped_preserves_symmetric(self):
        assert Relationship.PEER.flipped() is Relationship.PEER
        assert Relationship.SIBLING.flipped() is Relationship.SIBLING

    def test_rank_order(self):
        assert (
            Relationship.CUSTOMER.rank()
            < Relationship.PEER.rank()
            < Relationship.PROVIDER.rank()
        )

    def test_sibling_ranks_with_customer(self):
        assert Relationship.SIBLING.rank() == Relationship.CUSTOMER.rank()

    def test_gao_rexford_export_matrix(self):
        c, p, pr = Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER
        # Customer routes go everywhere.
        assert can_export(c, c) and can_export(c, p) and can_export(c, pr)
        # Peer/provider routes only to customers (and siblings).
        assert can_export(p, c) and can_export(pr, c)
        assert not can_export(p, p)
        assert not can_export(p, pr)
        assert not can_export(pr, p)
        assert not can_export(pr, pr)
        assert can_export(pr, Relationship.SIBLING)


class TestASGraph:
    def test_add_link_stores_both_perspectives(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.CUSTOMER)
        assert graph.relationship(1, 2) is Relationship.CUSTOMER
        assert graph.relationship(2, 1) is Relationship.PROVIDER

    def test_self_link_rejected(self):
        graph = ASGraph()
        with pytest.raises(ValueError):
            graph.add_link(1, 1, Relationship.PEER)

    def test_neighbor_class_queries(self):
        graph = ASGraph()
        graph.add_link(10, 1, Relationship.CUSTOMER)
        graph.add_link(10, 2, Relationship.PEER)
        graph.add_link(10, 3, Relationship.PROVIDER)
        graph.add_link(10, 4, Relationship.SIBLING)
        assert graph.customers(10) == [1]
        assert graph.peers(10) == [2]
        assert graph.providers(10) == [3]
        assert graph.siblings(10) == [4]
        assert graph.degree(10) == 4

    def test_relationship_none_when_not_adjacent(self):
        graph = ASGraph()
        graph.ensure_asn(1)
        graph.ensure_asn(2)
        assert graph.relationship(1, 2) is None
        assert not graph.has_link(1, 2)

    def test_remove_link(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PEER)
        assert graph.remove_link(1, 2)
        assert graph.relationship(2, 1) is None
        assert not graph.remove_link(1, 2)

    def test_links_yields_each_edge_once(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.CUSTOMER)
        graph.add_link(2, 3, Relationship.PEER)
        graph.add_link(4, 3, Relationship.SIBLING)
        links = list(graph.links())
        assert (1, 2, Relationship.CUSTOMER) in links
        assert (2, 3, Relationship.PEER) in links
        assert (3, 4, Relationship.SIBLING) in links
        assert len(links) == 3
        assert graph.num_links() == 3

    def test_relink_overwrites(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PEER)
        graph.add_link(1, 2, Relationship.CUSTOMER)
        assert graph.relationship(2, 1) is Relationship.PROVIDER
        assert graph.num_links() == 1

    def test_customer_cone(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.CUSTOMER)
        graph.add_link(2, 3, Relationship.CUSTOMER)
        graph.add_link(2, 4, Relationship.PEER)
        assert graph.customer_cone(1) == frozenset({1, 2, 3})
        assert graph.customer_cone(3) == frozenset({3})

    def test_copy_is_independent(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PEER)
        clone = graph.copy()
        clone.add_link(2, 3, Relationship.CUSTOMER)
        assert not graph.has_link(2, 3)
        assert clone.has_link(2, 3)

    def test_subgraph(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.CUSTOMER)
        graph.add_link(2, 3, Relationship.CUSTOMER)
        sub = graph.subgraph({1, 2})
        assert sub.has_link(1, 2)
        assert 3 not in sub

    def test_as_metadata_preserved(self):
        graph = ASGraph()
        graph.add_as(AS(asn=65000, name="ExampleNet", country="US"))
        assert graph.get_as(65000).name == "ExampleNet"
        assert graph.get_as(65000).presence == frozenset({"US"})


class TestASPath:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ASPath(())

    def test_endpoints(self):
        path = ASPath((1, 2, 3))
        assert path.source == 1
        assert path.destination == 3
        assert len(path) == 3

    def test_suffix_from(self):
        path = ASPath((1, 2, 3, 4))
        assert path.suffix_from(3) == ASPath((3, 4))
        assert path.suffix_from(1) == path
        assert path.suffix_from(9) is None

    def test_adjacencies(self):
        assert ASPath((1, 2, 3)).adjacencies() == ((1, 2), (2, 3))

    def test_str(self):
        assert str(ASPath((10, 20))) == "10 20"
