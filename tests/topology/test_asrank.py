"""Tests for customer cones and AS ranking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import ASGraph, Relationship
from repro.topology.asrank import as_rank, cone_sizes, customer_cones, transit_degree


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


class TestCustomerCones:
    def test_basic_hierarchy(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 3, Relationship.CUSTOMER),
            (2, 4, Relationship.CUSTOMER),
        )
        cones = customer_cones(graph)
        assert cones[1] == frozenset({1, 2, 3, 4})
        assert cones[2] == frozenset({2, 3, 4})
        assert cones[3] == frozenset({3})

    def test_peers_not_in_cone(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 3, Relationship.PEER),
        )
        cones = customer_cones(graph)
        assert 3 not in cones[1]

    def test_shared_customers_counted_once(self):
        graph = _graph(
            (1, 3, Relationship.CUSTOMER),
            (2, 3, Relationship.CUSTOMER),
        )
        cones = customer_cones(graph)
        assert cones[1] == frozenset({1, 3})
        assert cones[2] == frozenset({2, 3})

    def test_cycle_terminates(self):
        """A corrupted c2p cycle must not loop forever."""
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.CUSTOMER)
        graph.add_link(2, 3, Relationship.CUSTOMER)
        graph.add_link(3, 1, Relationship.CUSTOMER)
        cones = customer_cones(graph)
        assert set(cones) == {1, 2, 3}
        for asn in (1, 2, 3):
            assert asn in cones[asn]

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=12),
                st.integers(min_value=1, max_value=12),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_per_as_walk(self, pairs):
        """The one-pass computation equals the per-AS BFS on DAGs."""
        graph = ASGraph()
        for a, b in pairs:
            if a == b:
                continue
            graph.add_link(min(a, b), max(a, b), Relationship.CUSTOMER)
        if not len(graph):
            return
        cones = customer_cones(graph)
        for asn in graph.asns():
            assert cones[asn] == graph.customer_cone(asn)


class TestRanking:
    def test_rank_order(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 3, Relationship.CUSTOMER),
        )
        rows = as_rank(graph)
        assert rows[0] == (1, 1, 3)
        assert rows[1] == (2, 2, 2)
        assert rows[2] == (3, 3, 1)

    def test_tie_broken_by_asn(self):
        graph = _graph(
            (5, 6, Relationship.CUSTOMER),
            (7, 8, Relationship.CUSTOMER),
        )
        rows = as_rank(graph)
        assert [row[1] for row in rows[:2]] == [5, 7]

    def test_cone_sizes(self):
        graph = _graph((1, 2, Relationship.CUSTOMER))
        assert cone_sizes(graph) == {1: 2, 2: 1}

    def test_transit_degree(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 3, Relationship.CUSTOMER),
            (2, 4, Relationship.PEER),
        )
        assert transit_degree(graph, 2) == 2  # provider 1 + customer 3
        assert transit_degree(graph, 4) == 0
