"""Tests for topology-completeness analysis."""

import pytest

from repro.topogen import generate_internet, infer_topology
from repro.topogen.config import small_config
from repro.topogen.inference import InferenceConfig
from repro.topology import ASGraph, Relationship
from repro.topology.completeness import completeness


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


class TestCompletenessBasics:
    def test_perfect_inference(self):
        truth = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 3, Relationship.PEER),
        )
        report = completeness(truth, truth)
        assert report.recall == 1.0
        assert report.precision == 1.0
        assert report.label_accuracy == 1.0
        assert report.spurious_links == 0

    def test_missing_link_lowers_recall(self):
        truth = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 3, Relationship.PEER),
        )
        inferred = _graph((1, 2, Relationship.CUSTOMER))
        report = completeness(truth, inferred)
        assert report.recall == pytest.approx(0.5)
        assert report.precision == 1.0

    def test_mislabeled_link_lowers_label_accuracy(self):
        truth = _graph((1, 2, Relationship.CUSTOMER))
        inferred = _graph((1, 2, Relationship.PEER))
        report = completeness(truth, inferred)
        assert report.recall == 1.0
        assert report.label_accuracy == 0.0

    def test_reversed_c2p_is_mislabel(self):
        truth = _graph((1, 2, Relationship.CUSTOMER))
        inferred = _graph((2, 1, Relationship.CUSTOMER))
        report = completeness(truth, inferred)
        assert report.label_accuracy == 0.0

    def test_spurious_link_lowers_precision(self):
        truth = _graph((1, 2, Relationship.CUSTOMER))
        inferred = _graph(
            (1, 2, Relationship.CUSTOMER),
            (1, 3, Relationship.PEER),
        )
        report = completeness(truth, inferred)
        assert report.spurious_links == 1
        assert report.precision == pytest.approx(0.5)

    def test_empty_graphs(self):
        report = completeness(ASGraph(), ASGraph())
        assert report.recall == 0.0
        assert report.precision == 0.0


class TestCompletenessOnGeneratedInternet:
    def test_edge_peering_recall_below_core(self):
        """The generated inference must reproduce the paper's premise:
        edge peering is far less visible than the core."""
        internet = generate_internet(small_config(), seed=8)
        inferred, _complex = infer_topology(internet, seed=8)
        report = completeness(internet.graph, inferred)
        assert 0.0 < report.recall < 1.0
        assert report.edge_peering_recall < report.core_recall
        # Stale links make the inference imprecise too.
        assert report.spurious_links > 0

    def test_error_free_inference_scores_high(self):
        internet = generate_internet(small_config(), seed=8)
        config = InferenceConfig(
            miss_peer_edge_rate=0.0,
            miss_peer_core_rate=0.0,
            mislabel_c2p_rate=0.0,
            reverse_c2p_rate=0.0,
            mislabel_p2p_rate=0.0,
            cable_mislabel_rate=0.0,
            hybrid_wrong_label_rate=0.0,
            stale_link_count=0,
        )
        inferred, _complex = infer_topology(internet, config, seed=8)
        report = completeness(internet.graph, inferred)
        assert report.recall == 1.0
        assert report.precision == 1.0
        # Sibling links can never be labeled correctly by inference.
        assert report.label_accuracy < 1.0
