"""Tests for AS-type classification, complex relationships and cables."""

import pytest

from repro.topology import (
    ASGraph,
    ASType,
    Cable,
    CableRegistry,
    ComplexRelationships,
    HybridEntry,
    PartialTransitEntry,
    Relationship,
    classify_as_type,
)
from repro.topology.cables import paths_with_cable_asns
from repro.topology.classify_as import classify_all


def _chain_graph():
    """Tier-1 (1) -> large ISP (2) -> small ISPs -> stubs."""
    graph = ASGraph()
    graph.add_link(1, 2, Relationship.CUSTOMER)
    next_asn = 3
    small_isps = []
    for _ in range(6):
        graph.add_link(2, next_asn, Relationship.CUSTOMER)
        small_isps.append(next_asn)
        next_asn += 1
    for isp in small_isps:
        for _ in range(10):
            graph.add_link(isp, next_asn, Relationship.CUSTOMER)
            next_asn += 1
    return graph


class TestClassifyAS:
    def test_stub(self):
        graph = _chain_graph()
        # Leaf ASes have no customers.
        leaf = max(graph.asns())
        assert classify_as_type(graph, leaf, large_isp_cone=5) is ASType.STUB
        assert classify_as_type(graph, 9, large_isp_cone=5) is ASType.STUB

    def test_tier1_requires_no_providers(self):
        graph = _chain_graph()
        assert classify_as_type(graph, 1, large_isp_cone=5) is ASType.TIER1
        assert classify_as_type(graph, 2, large_isp_cone=5) is ASType.LARGE_ISP

    def test_small_isp_has_customers_but_small_cone(self):
        graph = _chain_graph()
        assert classify_as_type(graph, 3, large_isp_cone=50) is ASType.SMALL_ISP

    def test_classify_all_covers_every_asn(self):
        graph = _chain_graph()
        types = classify_all(graph, large_isp_cone=5)
        assert set(types) == set(graph.asns())
        assert types[1] is ASType.TIER1

    def test_isolated_as_is_stub(self):
        graph = ASGraph()
        graph.ensure_asn(99)
        assert classify_as_type(graph, 99) is ASType.STUB


class TestComplexRelationships:
    def test_hybrid_lookup_by_city(self):
        dataset = ComplexRelationships(
            hybrid=[HybridEntry(1, 2, "Frankfurt", Relationship.PEER)]
        )
        assert dataset.hybrid_relationship(1, 2, "Frankfurt") is Relationship.PEER
        assert dataset.hybrid_relationship(1, 2, "Singapore") is None
        assert dataset.hybrid_relationship(1, 2, None) is None

    def test_hybrid_is_symmetric(self):
        dataset = ComplexRelationships(
            hybrid=[HybridEntry(1, 2, "Paris", Relationship.CUSTOMER)]
        )
        # AS2 is AS1's customer in Paris, so AS1 is AS2's provider there.
        assert dataset.hybrid_relationship(2, 1, "Paris") is Relationship.PROVIDER

    def test_has_hybrid(self):
        dataset = ComplexRelationships(
            hybrid=[HybridEntry(5, 6, "Tokyo", Relationship.PEER)]
        )
        assert dataset.has_hybrid(5, 6)
        assert dataset.has_hybrid(6, 5)
        assert not dataset.has_hybrid(5, 7)

    def test_partial_transit_entry(self):
        dataset = ComplexRelationships(
            partial_transit=[PartialTransitEntry(provider=10, customer=20)]
        )
        entry = dataset.partial_transit(10, 20)
        assert entry is not None
        assert entry.scope == "peers-and-customers"
        assert dataset.partial_transit(20, 10) is None

    def test_explicit_partial_transit_requires_destinations(self):
        with pytest.raises(ValueError):
            PartialTransitEntry(provider=1, customer=2, scope="explicit")
            ComplexRelationships(
                partial_transit=[
                    PartialTransitEntry(provider=1, customer=2, scope="explicit")
                ]
            )

    def test_len_counts_pairs_once(self):
        dataset = ComplexRelationships(
            hybrid=[HybridEntry(1, 2, "Paris", Relationship.PEER)],
            partial_transit=[PartialTransitEntry(provider=3, customer=4)],
        )
        assert len(dataset) == 2


class TestCableRegistry:
    def test_independent_cable_asns(self):
        registry = CableRegistry(
            [
                Cable("EAC-C2C", frozenset({"JP", "SG"}), operator_asn=64600),
                Cable("Americas-II", frozenset({"US", "BR"}), owners=frozenset({"ATT"})),
            ]
        )
        assert registry.cable_asns() == {64600}
        assert registry.is_cable_asn(64600)
        assert not registry.is_cable_asn(1)
        assert registry.cable_for_asn(64600).name == "EAC-C2C"

    def test_duplicate_operator_rejected(self):
        registry = CableRegistry()
        registry.add(Cable("A", frozenset({"US", "JP"}), operator_asn=100))
        with pytest.raises(ValueError):
            registry.add(Cable("B", frozenset({"US", "BR"}), operator_asn=100))

    def test_cables_between(self):
        registry = CableRegistry(
            [
                Cable("A", frozenset({"US", "JP"}), operator_asn=100),
                Cable("B", frozenset({"US", "BR"}), operator_asn=101),
            ]
        )
        names = [c.name for c in registry.cables_between("US", "JP")]
        assert names == ["A"]

    def test_paths_with_cable_asns(self):
        registry = CableRegistry(
            [Cable("A", frozenset({"US", "JP"}), operator_asn=100)]
        )
        paths = [(1, 2, 3), (1, 100, 3), (100,)]
        assert paths_with_cable_asns(registry, paths) == [(1, 100, 3), (100,)]
