"""Tests for whois records, SOA canonicalization and sibling inference."""

import pytest

from repro.whois import (
    SOADatabase,
    SiblingGroups,
    WhoisRecord,
    WhoisRegistry,
    infer_siblings,
)


def _registry(*records):
    registry = WhoisRegistry()
    for record in records:
        registry.add(record)
    return registry


class TestWhoisRecord:
    def test_email_domain(self):
        record = WhoisRecord(asn=1, email="noc@Example.COM")
        assert record.email_domain() == "example.com"

    def test_email_domain_missing(self):
        assert WhoisRecord(asn=1, email="").email_domain() is None
        assert WhoisRecord(asn=1, email="no-at-sign").email_domain() is None

    def test_registry_country_of(self):
        registry = _registry(WhoisRecord(asn=1, country="US"))
        assert registry.country_of(1) == "US"
        assert registry.country_of(2) is None
        registry.add(WhoisRecord(asn=3, country=""))
        assert registry.country_of(3) is None


class TestSOADatabase:
    def test_canonicalize_follows_chain(self):
        soa = SOADatabase([("dish.com", "dishnetwork.com"), ("dishaccess.tv", "dishnetwork.com")])
        assert soa.canonicalize("dish.com") == "dishnetwork.com"
        assert soa.canonicalize("DISHACCESS.TV") == "dishnetwork.com"

    def test_canonicalize_unknown_is_identity(self):
        soa = SOADatabase()
        assert soa.canonicalize("example.com") == "example.com"

    def test_canonicalize_breaks_loops(self):
        soa = SOADatabase([("a.com", "b.com"), ("b.com", "a.com")])
        # Must terminate; either element of the loop is acceptable.
        assert soa.canonicalize("a.com") in {"a.com", "b.com"}


class TestSiblingGroups:
    def test_membership(self):
        groups = SiblingGroups([frozenset({1, 2, 3})])
        assert groups.are_siblings(1, 2)
        assert groups.are_siblings(3, 1)
        assert not groups.are_siblings(1, 1)
        assert not groups.are_siblings(1, 4)
        assert groups.group_of(2) == frozenset({1, 2, 3})
        assert groups.group_of(9) is None
        assert 1 in groups and 9 not in groups

    def test_rejects_singleton_group(self):
        with pytest.raises(ValueError):
            SiblingGroups([frozenset({1})])

    def test_rejects_overlapping_groups(self):
        with pytest.raises(ValueError):
            SiblingGroups([frozenset({1, 2}), frozenset({2, 3})])


class TestInferSiblings:
    def test_groups_by_email_domain(self):
        registry = _registry(
            WhoisRecord(asn=701, email="noc@verizon.com"),
            WhoisRecord(asn=702, email="peering@verizon.com"),
            WhoisRecord(asn=703, email="ops@verizon.com"),
            WhoisRecord(asn=100, email="noc@other.net"),
        )
        groups = infer_siblings(registry)
        assert groups.are_siblings(701, 702)
        assert groups.are_siblings(701, 703)
        assert not groups.are_siblings(701, 100)
        assert 100 not in groups  # singleton domain dropped

    def test_soa_merges_vanity_domains(self):
        registry = _registry(
            WhoisRecord(asn=1, email="noc@dish.com"),
            WhoisRecord(asn=2, email="noc@dishaccess.tv"),
        )
        soa = SOADatabase(
            [("dish.com", "dishnetwork.com"), ("dishaccess.tv", "dishnetwork.com")]
        )
        assert infer_siblings(registry, soa).are_siblings(1, 2)
        # Without SOA data the two domains stay separate.
        assert not infer_siblings(registry).are_siblings(1, 2)

    def test_public_hosters_filtered(self):
        registry = _registry(
            WhoisRecord(asn=1, email="a@hotmail.com"),
            WhoisRecord(asn=2, email="b@hotmail.com"),
            WhoisRecord(asn=3, email="c@ripe.net"),
            WhoisRecord(asn=4, email="d@ripe.net"),
        )
        groups = infer_siblings(registry)
        assert len(groups) == 0

    def test_records_without_email_ignored(self):
        registry = _registry(
            WhoisRecord(asn=1, email=""),
            WhoisRecord(asn=2, email="x@org.com"),
            WhoisRecord(asn=3, email="y@org.com"),
        )
        groups = infer_siblings(registry)
        assert groups.are_siblings(2, 3)
        assert 1 not in groups
