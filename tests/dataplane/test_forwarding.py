"""Tests for per-AS FIBs and address-level data paths."""

import pytest

from repro.bgp import BGPSimulator
from repro.dataplane.forwarding import (
    DataPath,
    ForwardingTable,
    build_fibs,
    data_path,
)
from repro.net.ip import IPAddress, Prefix
from repro.topology import ASGraph, Relationship

PFX = Prefix.parse("198.51.100.0/24")


def _converged_chain():
    graph = ASGraph()
    graph.add_link(1, 2, Relationship.CUSTOMER)
    graph.add_link(2, 3, Relationship.CUSTOMER)
    sim = BGPSimulator(graph)
    sim.originate(3, PFX)
    return sim


class TestForwardingTable:
    def test_from_simulator(self):
        sim = _converged_chain()
        fib = ForwardingTable.from_simulator(sim, 1)
        assert len(fib) == 1
        assert fib.lookup(PFX.address_at(5)) == 2
        assert fib.lookup(IPAddress.parse("203.0.113.1")) is None

    def test_origin_fib_points_to_self(self):
        sim = _converged_chain()
        fib = ForwardingTable.from_simulator(sim, 3)
        assert fib.lookup(PFX.address_at(5)) == 3

    def test_longest_prefix_match(self):
        fib = ForwardingTable(asn=1)
        fib.install(Prefix.parse("10.0.0.0/8"), 2)
        fib.install(Prefix.parse("10.1.0.0/16"), 3)
        assert fib.lookup(IPAddress.parse("10.1.2.3")) == 3
        assert fib.lookup(IPAddress.parse("10.2.0.1")) == 2

    def test_entries(self):
        fib = ForwardingTable(asn=1)
        fib.install(PFX, 2)
        entries = fib.entries()
        assert len(entries) == 1
        assert entries[0].prefix == PFX
        assert entries[0].next_hop_asn == 2


class TestDataPath:
    def test_delivery_across_chain(self):
        sim = _converged_chain()
        fibs = build_fibs(sim)
        path = data_path(fibs, 1, PFX.address_at(9))
        assert path.delivered
        assert path.hops == (1, 2, 3)
        assert not path.looped
        assert not path.blackholed

    def test_blackhole_without_route(self):
        sim = _converged_chain()
        fibs = build_fibs(sim)
        path = data_path(fibs, 1, IPAddress.parse("203.0.113.1"))
        assert path.blackholed
        assert path.hops == (1,)

    def test_loop_detection(self):
        fib1 = ForwardingTable(asn=1)
        fib1.install(PFX, 2)
        fib2 = ForwardingTable(asn=2)
        fib2.install(PFX, 1)
        path = data_path({1: fib1, 2: fib2}, 1, PFX.address_at(1))
        assert path.looped
        assert not path.delivered
        assert path.hops == (1, 2)

    def test_missing_fib_is_blackhole(self):
        fib1 = ForwardingTable(asn=1)
        fib1.install(PFX, 2)
        path = data_path({1: fib1}, 1, PFX.address_at(1))
        assert path.blackholed

    def test_fib_paths_match_control_plane(self):
        """Address-level forwarding agrees with the simulator's own
        AS-level path reconstruction on a converged network."""
        from repro.topogen import generate_internet
        from repro.topogen.config import small_config

        internet = generate_internet(small_config(), seed=17)
        sim = BGPSimulator(
            internet.graph, policies=internet.policies, country_of=internet.country_of
        )
        origin = internet.content[0].asns[0]
        prefix = internet.prefixes[origin][-1]
        sim.originate(origin, prefix)
        fibs = build_fibs(sim)
        checked = 0
        for asn in list(internet.eyeball_asns)[:30]:
            control = sim.forwarding_path(asn, prefix)
            data = data_path(fibs, asn, prefix.address_at(1))
            if control is None:
                assert not data.delivered
                continue
            assert data.delivered
            assert data.hops == control
            checked += 1
        assert checked > 10
