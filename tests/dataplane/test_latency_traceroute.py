"""Tests for the latency model and traceroute engine."""

import pytest

from repro.bgp import BGPSimulator
from repro.dataplane import TracerouteEngine, rtt_ms, propagation_delay_ms
from repro.net.ip import IPAddress
from repro.net.trie import PrefixTrie
from repro.topogen import generate_internet
from repro.topogen.config import small_config
from repro.topogen.geography import City

NYC = City("New York", "US", "NA", 40.7, -74.0)
LON = City("London", "GB", "EU", 51.5, -0.1)


class TestLatency:
    def test_zero_distance_small_rtt(self):
        assert rtt_ms(NYC, NYC, hop_count=1) < 1.0

    def test_transatlantic_rtt_plausible(self):
        rtt = rtt_ms(NYC, LON, hop_count=8)
        # Real NY-London RTTs sit around 70-90 ms.
        assert 50 < rtt < 120

    def test_rtt_grows_with_hops_and_jitter(self):
        base = rtt_ms(NYC, LON, hop_count=1)
        assert rtt_ms(NYC, LON, hop_count=10) > base
        assert rtt_ms(NYC, LON, hop_count=1, jitter=5.0) == pytest.approx(base + 5.0)

    def test_negative_hop_count_rejected(self):
        with pytest.raises(ValueError):
            rtt_ms(NYC, LON, hop_count=-1)

    def test_propagation_delay_symmetric(self):
        assert propagation_delay_ms(NYC, LON) == pytest.approx(
            propagation_delay_ms(LON, NYC)
        )


@pytest.fixture(scope="module")
def world():
    internet = generate_internet(small_config(), seed=77)
    simulator = BGPSimulator(
        internet.graph, policies=internet.policies, country_of=internet.country_of
    )
    provider = internet.content[0]
    origin = provider.asns[0]
    prefix = internet.prefixes[origin][-1]
    simulator.originate(origin, prefix)
    announced = PrefixTrie()
    announced.insert(prefix, origin)
    return internet, simulator, announced, origin, prefix


class TestTracerouteEngine:
    def _engine(self, world, missing_hop_rate=0.0, seed=0):
        internet, simulator, announced, _origin, _prefix = world
        return TracerouteEngine(
            internet, simulator, announced, seed=seed, missing_hop_rate=missing_hop_rate
        )

    def _probe(self, world):
        internet = world[0]
        asn = internet.eyeball_asns[0]
        ip = internet.prefixes[asn][-1].address_at(400)
        return asn, ip, internet.home_city[asn]

    def test_trace_reaches_destination(self, world):
        internet, simulator, _announced, origin, prefix = world
        engine = self._engine(world)
        asn, ip, city = self._probe(world)
        destination = prefix.address_at(10)
        result = engine.trace(asn, ip, city, destination)
        assert result.reached
        assert result.hops[-1].ip == destination
        assert result.truth_as_path[0] == asn
        assert result.truth_as_path[-1] == origin

    def test_all_hops_respond_without_loss(self, world):
        engine = self._engine(world, missing_hop_rate=0.0)
        asn, ip, city = self._probe(world)
        destination = world[4].address_at(10)
        result = engine.trace(asn, ip, city, destination)
        assert all(hop.responded() for hop in result.hops)
        assert result.responding_ips() == [hop.ip for hop in result.hops]

    def test_missing_hops_appear_with_loss(self, world):
        engine = self._engine(world, missing_hop_rate=1.0)
        asn, ip, city = self._probe(world)
        destination = world[4].address_at(10)
        result = engine.trace(asn, ip, city, destination)
        # Everything but the destination must be '*'.
        assert all(not hop.responded() for hop in result.hops[:-1])
        assert result.hops[-1].responded()

    def test_rtts_monotone_in_expectation(self, world):
        engine = self._engine(world)
        asn, ip, city = self._probe(world)
        destination = world[4].address_at(10)
        result = engine.trace(asn, ip, city, destination)
        rtts = [hop.rtt for hop in result.hops if hop.rtt is not None]
        assert all(rtt >= 0 for rtt in rtts)

    def test_unreachable_destination(self, world):
        engine = self._engine(world)
        asn, ip, city = self._probe(world)
        stranger = IPAddress.parse("203.0.113.1")  # not announced
        result = engine.trace(asn, ip, city, stranger)
        assert not result.reached
        assert result.hops == []

    def test_deterministic_per_seed(self, world):
        asn, ip, city = self._probe(world)
        destination = world[4].address_at(10)
        first = self._engine(world, missing_hop_rate=0.3, seed=5).trace(
            asn, ip, city, destination
        )
        second = self._engine(world, missing_hop_rate=0.3, seed=5).trace(
            asn, ip, city, destination
        )
        assert first.hops == second.hops

    def test_destination_prefix_lookup(self, world):
        engine = self._engine(world)
        prefix = world[4]
        assert engine.destination_prefix(prefix.address_at(10)) == prefix
        assert engine.destination_prefix(IPAddress.parse("203.0.113.1")) is None
