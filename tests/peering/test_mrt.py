"""Tests for the MRT-style feed dump format."""

import io

import pytest

from repro.bgp import BGPSimulator
from repro.net.ip import Prefix
from repro.peering import FeedArchive, RouteCollector
from repro.peering.mrt import dump_feed, dump_feed_lines, load_feed, parse_feed_lines
from repro.topology import ASGraph, Relationship

P1 = Prefix.parse("198.51.100.0/24")
P2 = Prefix.parse("203.0.113.0/24")


@pytest.fixture
def feeds():
    graph = ASGraph()
    graph.add_link(1, 2, Relationship.CUSTOMER)
    graph.add_link(2, 3, Relationship.CUSTOMER)
    sim = BGPSimulator(graph)
    sim.originate(3, P1)
    sim.originate(3, P2)
    archive = FeedArchive([RouteCollector(name="rv", peer_asns=(1, 2))])
    archive.record(sim, [P1, P2])
    return archive


class TestDump:
    def test_line_format(self, feeds):
        lines = dump_feed_lines(feeds, timestamp=1234)
        assert lines
        for line in lines:
            fields = line.split("|")
            assert fields[0] == "TABLE_DUMP2"
            assert fields[1] == "1234"
            assert fields[6].split()[0] == fields[4]

    def test_roundtrip_via_stream(self, feeds):
        text = dump_feed(feeds)
        reloaded = load_feed(io.StringIO(text))
        assert reloaded.prefixes() == feeds.prefixes()
        for prefix in feeds.prefixes():
            assert reloaded.paths_for(prefix) == feeds.paths_for(prefix)

    def test_roundtrip_via_file(self, feeds, tmp_path):
        path = tmp_path / "rib.txt"
        dump_feed(feeds, path)
        reloaded = load_feed(path)
        assert reloaded.paths_for(P1) == feeds.paths_for(P1)

    def test_reloaded_archive_answers_psp_queries(self, feeds):
        reloaded = load_feed(io.StringIO(dump_feed(feeds)))
        assert reloaded.origin_edge_observed(P1, 2, 3)
        assert reloaded.any_prefix_via_edge(2, 3)

    def test_empty_archive(self):
        assert dump_feed(FeedArchive([])) == ""


class TestParse:
    def test_rejects_wrong_record_type(self):
        with pytest.raises(ValueError):
            parse_feed_lines(["TABLE_DUMP|0|B|0.0.0.0|1|10.0.0.0/8|1 2|IGP"])

    def test_rejects_bad_as_path(self):
        with pytest.raises(ValueError):
            parse_feed_lines(["TABLE_DUMP2|0|B|0.0.0.0|1|10.0.0.0/8|one two|IGP"])

    def test_rejects_peer_mismatch(self):
        with pytest.raises(ValueError):
            parse_feed_lines(["TABLE_DUMP2|0|B|0.0.0.0|9|10.0.0.0/8|1 2|IGP"])

    def test_skips_comments_and_blanks(self):
        records = parse_feed_lines(
            ["# header", "", "TABLE_DUMP2|0|B|0.0.0.0|1|10.0.0.0/8|1 2|IGP"]
        )
        assert records == [(Prefix.parse("10.0.0.0/8"), (1, 2))]
