"""Tests for route collectors and the PEERING testbed."""

import pytest

from repro.bgp import BGPSimulator
from repro.net.ip import Prefix
from repro.peering import FeedArchive, PeeringTestbed, RouteCollector, default_collectors
from repro.topogen import generate_internet
from repro.topogen.config import small_config
from repro.topology import ASGraph, Relationship

P1 = Prefix.parse("198.51.100.0/24")


def _world():
    graph = ASGraph()
    graph.add_link(1, 2, Relationship.CUSTOMER)
    graph.add_link(2, 3, Relationship.CUSTOMER)
    sim = BGPSimulator(graph)
    sim.originate(3, P1)
    return graph, sim


class TestRouteCollector:
    def test_collect_paths_start_with_peer(self):
        _graph, sim = _world()
        collector = RouteCollector(name="rv", peer_asns=(1, 2))
        paths = collector.collect(sim, P1)
        assert paths[1] == (1, 2, 3)
        assert paths[2] == (2, 3)

    def test_peers_without_route_skipped(self):
        _graph, sim = _world()
        collector = RouteCollector(name="rv", peer_asns=(1,))
        other = Prefix.parse("203.0.113.0/24")
        assert collector.collect(sim, other) == {}

    def test_feed_archive_links_and_edges(self):
        _graph, sim = _world()
        feeds = FeedArchive([RouteCollector(name="rv", peer_asns=(1,))])
        feeds.record(sim, [P1])
        assert feeds.paths_for(P1) == {(1, 2, 3)}
        assert feeds.observed_links() == {(1, 2), (2, 3)}
        assert feeds.origin_edge_observed(P1, 2, 3)
        assert not feeds.origin_edge_observed(P1, 1, 3)
        assert feeds.any_prefix_via_edge(2, 3)
        assert feeds.prefixes() == [P1]

    def test_default_collectors_peer_with_core(self):
        internet = generate_internet(small_config(), seed=2)
        collectors = default_collectors(internet, seed=2)
        assert len(collectors) == 2
        for collector in collectors:
            assert collector.peer_asns
            for peer in collector.peer_asns:
                # Feed peers are transit networks, not stubs.
                assert internet.graph.customers(peer)


@pytest.fixture(scope="module")
def testbed_world():
    internet = generate_internet(small_config(), seed=13)
    testbed = PeeringTestbed(internet, num_muxes=5, seed=13)
    simulator = BGPSimulator(
        internet.graph, policies=internet.policies, country_of=internet.country_of
    )
    return internet, testbed, simulator


class TestPeeringTestbed:
    def test_installation(self, testbed_world):
        internet, testbed, _sim = testbed_world
        assert testbed.asn in internet.graph
        assert len(testbed.muxes) == 5
        for mux in testbed.muxes:
            assert internet.graph.relationship(mux.host_asn, testbed.asn) is (
                Relationship.CUSTOMER
            )
            assert internet.interconnect(mux.host_asn, testbed.asn) is not None
        assert internet.whois.get(testbed.asn) is not None
        assert internet.prefixes[testbed.asn] == testbed.prefixes

    def test_anycast_announcement_reaches_network(self, testbed_world):
        internet, testbed, sim = testbed_world
        prefix = testbed.prefixes[0]
        testbed.announce(sim, prefix)
        reachable = sim.reachable_ases(prefix)
        assert len(reachable) > len(internet.graph) * 0.8

    def test_single_mux_announcement(self, testbed_world):
        internet, testbed, sim = testbed_world
        prefix = testbed.prefixes[1]
        magnet = testbed.muxes[0].host_asn
        testbed.announce(sim, prefix, muxes=[magnet])
        other_mux = testbed.muxes[1].host_asn
        # The other mux can still have a route, but not directly from
        # PEERING: its next hop must not be the testbed.
        route = sim.best_route(other_mux, prefix)
        if route is not None:
            assert route.learned_from != testbed.asn
        direct = sim.best_route(magnet, prefix)
        assert direct is not None and direct.learned_from == testbed.asn
        testbed.withdraw(sim, prefix)

    def test_announce_rejects_unknown_mux(self, testbed_world):
        _internet, testbed, sim = testbed_world
        with pytest.raises(ValueError):
            testbed.announce(sim, testbed.prefixes[0], muxes=[424242])

    def test_withdraw_clears_routes(self, testbed_world):
        internet, testbed, sim = testbed_world
        prefix = testbed.prefixes[2]
        testbed.announce(sim, prefix)
        testbed.withdraw(sim, prefix)
        assert sim.reachable_ases(prefix) == frozenset()

    def test_poisoned_announcement_excludes_target(self, testbed_world):
        internet, testbed, sim = testbed_world
        prefix = testbed.prefixes[0]
        testbed.announce(sim, prefix)
        mux_host = testbed.muxes[0].host_asn
        victim_route = None
        for asn in internet.graph.providers(mux_host):
            if sim.best_route(asn, prefix) is not None:
                victim_route = asn
                break
        if victim_route is None:
            pytest.skip("no upstream with a route in this topology")
        policy = internet.policies[victim_route]
        if policy.loop_prevention_disabled or policy.filters_poisoned:
            pytest.skip("upstream has nonstandard poisoning behaviour")
        testbed.announce(sim, prefix, poisoned={victim_route})
        assert sim.best_route(victim_route, prefix) is None
        testbed.announce(sim, prefix)  # restore
