"""Tests for the active experiment drivers (discovery and magnet)."""

import pytest

from repro.bgp import BGPSimulator
from repro.peering import (
    FeedArchive,
    PeeringTestbed,
    RouteCollector,
    discover_alternate_routes,
    run_magnet_experiments,
)
from repro.topogen import generate_internet
from repro.topogen.config import small_config


@pytest.fixture(scope="module")
def world():
    internet = generate_internet(small_config(), seed=31)
    testbed = PeeringTestbed(internet, num_muxes=4, seed=31)
    simulator = BGPSimulator(
        internet.graph, policies=internet.policies, country_of=internet.country_of
    )
    return internet, testbed, simulator


class TestDiscovery:
    def test_discovers_multiple_routes_for_transit(self, world):
        internet, testbed, sim = world
        # Transit ASes with several neighbors have alternate routes.
        targets = [
            asn for asn in internet.graph.asns() if internet.graph.degree(asn) >= 5
        ][:5]
        result = discover_alternate_routes(testbed, sim, targets)
        assert len(result.observations) == len(targets)
        multi = [o for o in result.observations if len(o.routes) >= 2]
        assert multi, "no target revealed alternate routes"
        for observation in multi:
            # Next hops are distinct across rounds (each got poisoned).
            next_hops = [route.next_hop for route in observation.routes]
            assert len(next_hops) == len(set(next_hops))

    def test_discovery_order_is_preference_order(self, world):
        internet, testbed, sim = world
        targets = [
            asn for asn in internet.graph.asns() if internet.graph.degree(asn) >= 5
        ][:3]
        result = discover_alternate_routes(testbed, sim, targets)
        for observation in result.observations:
            # First discovered route must match the unpoisoned best.
            testbed.announce(sim, testbed.prefixes[0])
            route = sim.best_route(observation.target, testbed.prefixes[0])
            if route is not None and observation.routes:
                assert observation.routes[0].next_hop == route.learned_from

    def test_announcement_accounting(self, world):
        internet, testbed, sim = world
        targets = [
            asn for asn in internet.graph.asns() if internet.graph.degree(asn) >= 5
        ][:4]
        result = discover_alternate_routes(testbed, sim, targets)
        rounds = sum(len(o.poison_rounds) for o in result.observations)
        # Distinct announcements <= rounds + 1 (the shared anycast).
        assert result.distinct_announcements <= rounds + 1
        assert result.distinct_announcements >= 1

    def test_observed_links_present(self, world):
        internet, testbed, sim = world
        vps = internet.eyeball_asns[:10]
        targets = [
            asn for asn in internet.graph.asns() if internet.graph.degree(asn) >= 5
        ][:3]
        result = discover_alternate_routes(
            testbed, sim, targets, monitor_asns=vps
        )
        assert result.observed_links
        assert result.poisoned_only_links <= result.observed_links


class TestMagnet:
    def test_rounds_per_mux(self, world):
        internet, testbed, sim = world
        feeds = FeedArchive([RouteCollector(name="rv", peer_asns=tuple(internet.graph.asns())[:20])])
        observations = run_magnet_experiments(
            testbed, sim, feeds, vp_asns=internet.eyeball_asns[:10]
        )
        assert len(observations) == len(testbed.muxes)
        for observation in observations:
            assert observation.magnet_mux in testbed.mux_asns()
            assert observation.anycast_routes
            # Anycast reaches at least as many ASes as the magnet phase.
            assert len(observation.anycast_routes) >= len(observation.magnet_routes)

    def test_magnet_phase_restricted_to_one_mux(self, world):
        internet, testbed, sim = world
        feeds = FeedArchive([])
        observations = run_magnet_experiments(testbed, sim, feeds)
        for observation in observations:
            # During the magnet phase, every routed path ends at the
            # magnet mux host before PEERING.
            for asn, view in observation.magnet_routes.items():
                path = view.path
                assert path[-1] == testbed.asn
                if len(path) >= 2:
                    assert path[-2] == observation.magnet_mux

    def test_truth_steps_recorded(self, world):
        internet, testbed, sim = world
        feeds = FeedArchive([])
        observations = run_magnet_experiments(testbed, sim, feeds)
        assert any(observation.truth_decision_steps for observation in observations)
