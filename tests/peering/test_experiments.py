"""Tests for the active experiment drivers (discovery and magnet)."""

import pytest

from repro.bgp import BGPSimulator
from repro.faults import CampaignInterrupted, FaultPlan, FaultSite
from repro.peering import (
    ActiveRunConfig,
    ActiveSupervisor,
    FeedArchive,
    PeeringTestbed,
    RouteCollector,
    discover_alternate_routes,
    run_magnet_experiments,
)
from repro.topogen import generate_internet
from repro.topogen.config import small_config


@pytest.fixture(scope="module")
def world():
    internet = generate_internet(small_config(), seed=31)
    testbed = PeeringTestbed(internet, num_muxes=4, seed=31)
    simulator = BGPSimulator(
        internet.graph, policies=internet.policies, country_of=internet.country_of
    )
    return internet, testbed, simulator


class TestDiscovery:
    def test_discovers_multiple_routes_for_transit(self, world):
        internet, testbed, sim = world
        # Transit ASes with several neighbors have alternate routes.
        targets = [
            asn for asn in internet.graph.asns() if internet.graph.degree(asn) >= 5
        ][:5]
        result = discover_alternate_routes(testbed, sim, targets)
        assert len(result.observations) == len(targets)
        multi = [o for o in result.observations if len(o.routes) >= 2]
        assert multi, "no target revealed alternate routes"
        for observation in multi:
            # Next hops are distinct across rounds (each got poisoned).
            next_hops = [route.next_hop for route in observation.routes]
            assert len(next_hops) == len(set(next_hops))

    def test_discovery_order_is_preference_order(self, world):
        internet, testbed, sim = world
        targets = [
            asn for asn in internet.graph.asns() if internet.graph.degree(asn) >= 5
        ][:3]
        result = discover_alternate_routes(testbed, sim, targets)
        for observation in result.observations:
            # First discovered route must match the unpoisoned best.
            testbed.announce(sim, testbed.prefixes[0])
            route = sim.best_route(observation.target, testbed.prefixes[0])
            if route is not None and observation.routes:
                assert observation.routes[0].next_hop == route.learned_from

    def test_announcement_accounting(self, world):
        internet, testbed, sim = world
        targets = [
            asn for asn in internet.graph.asns() if internet.graph.degree(asn) >= 5
        ][:4]
        result = discover_alternate_routes(testbed, sim, targets)
        rounds = sum(len(o.poison_rounds) for o in result.observations)
        # Distinct announcements <= rounds + 1 (the shared anycast).
        assert result.distinct_announcements <= rounds + 1
        assert result.distinct_announcements >= 1

    def test_observed_links_present(self, world):
        internet, testbed, sim = world
        vps = internet.eyeball_asns[:10]
        targets = [
            asn for asn in internet.graph.asns() if internet.graph.degree(asn) >= 5
        ][:3]
        result = discover_alternate_routes(
            testbed, sim, targets, monitor_asns=vps
        )
        assert result.observed_links
        assert result.poisoned_only_links <= result.observed_links


class TestMagnet:
    def test_rounds_per_mux(self, world):
        internet, testbed, sim = world
        feeds = FeedArchive([RouteCollector(name="rv", peer_asns=tuple(internet.graph.asns())[:20])])
        observations = run_magnet_experiments(
            testbed, sim, feeds, vp_asns=internet.eyeball_asns[:10]
        )
        assert len(observations) == len(testbed.muxes)
        for observation in observations:
            assert observation.magnet_mux in testbed.mux_asns()
            assert observation.anycast_routes
            # Anycast reaches at least as many ASes as the magnet phase.
            assert len(observation.anycast_routes) >= len(observation.magnet_routes)

    def test_magnet_phase_restricted_to_one_mux(self, world):
        internet, testbed, sim = world
        feeds = FeedArchive([])
        observations = run_magnet_experiments(testbed, sim, feeds)
        for observation in observations:
            # During the magnet phase, every routed path ends at the
            # magnet mux host before PEERING.
            for asn, view in observation.magnet_routes.items():
                path = view.path
                assert path[-1] == testbed.asn
                if len(path) >= 2:
                    assert path[-2] == observation.magnet_mux

    def test_truth_steps_recorded(self, world):
        internet, testbed, sim = world
        feeds = FeedArchive([])
        observations = run_magnet_experiments(testbed, sim, feeds)
        assert any(observation.truth_decision_steps for observation in observations)


def _transit_targets(internet, count):
    return [
        asn for asn in internet.graph.asns() if internet.graph.degree(asn) >= 5
    ][:count]


def _supervisor(**rates_and_opts):
    rates = rates_and_opts.pop("rates", {})
    return ActiveSupervisor(
        ActiveRunConfig(fault_plan=FaultPlan(seed=7, rates=rates), **rates_and_opts)
    )


class TestSupervisedDiscovery:
    def test_zero_fault_supervisor_matches_unsupervised(self, world):
        internet, testbed, sim = world
        targets = _transit_targets(internet, 4)
        plain = discover_alternate_routes(testbed, sim, targets)
        supervised = discover_alternate_routes(
            testbed, sim, targets, supervisor=ActiveSupervisor()
        )
        assert plain.observations == supervised.observations
        assert plain.distinct_announcements == supervised.distinct_announcements
        assert plain.observed_links == supervised.observed_links
        assert all(
            status == "completed" for status in supervised.dispositions.values()
        )

    def test_poison_filtering_censors_partial_orders(self, world):
        internet, testbed, sim = world
        targets = _transit_targets(internet, 5)
        supervisor = _supervisor(rates={FaultSite.POISON_FILTERED: 1.0})
        result = discover_alternate_routes(
            testbed, sim, targets, supervisor=supervisor
        )
        report = supervisor.report
        assert report.accounted()
        # Every poisoned announcement was filtered, so any target that
        # needed one ends censored with only its clean best route.
        censored = [o for o in result.observations if o.censored]
        assert censored
        for observation in censored:
            assert observation.censor_reason == "exhausted:poison-filtered"
            assert len(observation.routes) == 1
            assert result.dispositions[observation.target] == "censored"
        # Observations still cover every non-quarantined target.
        assert len(result.observations) == len(targets)

    def test_long_path_rejection_is_terminal(self, world):
        internet, testbed, sim = world
        targets = _transit_targets(internet, 4)
        supervisor = _supervisor(
            rates={FaultSite.LONG_PATH_REJECTED: 1.0}, long_path_limit=1
        )
        result = discover_alternate_routes(
            testbed, sim, targets, supervisor=supervisor
        )
        censored = [o for o in result.observations if o.censored]
        assert censored
        assert all(o.censor_reason == "long-path-rejected" for o in censored)
        # Non-retryable: the retry machinery never spun.
        assert supervisor.report.retry.retries == 0

    def test_breaker_quarantines_after_repeated_failures(self, world):
        internet, testbed, sim = world
        targets = _transit_targets(internet, 3)
        supervisor = _supervisor(
            rates={FaultSite.POISON_FILTERED: 1.0},
            breaker_threshold=1,
            breaker_cooldown=10,
        )
        result = discover_alternate_routes(
            testbed, sim, targets, supervisor=supervisor
        )
        report = supervisor.report
        assert report.accounted()
        assert report.quarantined.get("breaker-open", 0) >= 1
        quarantined = [
            target
            for target, status in result.dispositions.items()
            if status == "quarantined"
        ]
        observed = {o.target for o in result.observations}
        # Quarantined targets are excluded from the observations.
        assert observed.isdisjoint(quarantined)
        assert report.breaker.trips >= 1

    def test_watchdog_budget_censors_deep_targets(self, world):
        internet, testbed, sim = world
        targets = _transit_targets(internet, 4)
        supervisor = _supervisor(watchdog_budget=1)
        result = discover_alternate_routes(
            testbed, sim, targets, supervisor=supervisor
        )
        reasons = {o.censor_reason for o in result.observations if o.censored}
        assert reasons == {"watchdog-budget"}
        assert supervisor.report.accounted()

    def test_transient_damping_recovered_by_retry(self, world):
        internet, testbed, sim = world
        targets = _transit_targets(internet, 4)
        supervisor = _supervisor(rates={FaultSite.ROUTE_FLAP_DAMPING: 0.4})
        result = discover_alternate_routes(
            testbed, sim, targets, supervisor=supervisor
        )
        report = supervisor.report
        assert report.accounted()
        assert report.damping_events > 0
        # Transient faults are keyed per attempt: retries recover some.
        assert report.retry.succeeded_after_retry > 0
        # Recovered rounds look exactly like fault-free ones.
        reference = discover_alternate_routes(testbed, sim, targets)
        recovered = [
            o
            for o in result.observations
            if not o.censored
            and result.dispositions[o.target] == "completed"
        ]
        reference_by_target = {o.target: o for o in reference.observations}
        for observation in recovered:
            assert observation.routes == reference_by_target[observation.target].routes

    def test_escape_leaves_testbed_unpoisoned(self, world):
        """Satellite: any escape restores the clean announcement (finally)."""
        internet, testbed, sim = world
        targets = _transit_targets(internet, 3)
        prefix = testbed.prefixes[0]
        testbed.announce(sim, prefix)
        clean_reachable = sim.reachable_ases(prefix)
        supervisor = ActiveSupervisor(ActiveRunConfig(abort_after=1))
        with pytest.raises(CampaignInterrupted):
            discover_alternate_routes(
                testbed, sim, targets, prefix=prefix, supervisor=supervisor
            )
        # The kill fired right after the first target's poisoned rounds,
        # but the finally path re-announced the unpoisoned prefix.
        assert sim.reachable_ases(prefix) == clean_reachable

    def test_soft_limit_hook_restored_after_run(self, world):
        internet, testbed, sim = world
        sentinel = object()
        sim.on_soft_limit = sentinel
        discover_alternate_routes(testbed, sim, _transit_targets(internet, 2))
        assert sim.on_soft_limit is sentinel
        sim.on_soft_limit = None


class TestSupervisedMagnet:
    def test_feed_gap_censors_round_but_keeps_traceroutes(self, world):
        internet, testbed, sim = world
        feeds = FeedArchive(
            [RouteCollector(name="rv", peer_asns=tuple(internet.graph.asns())[:20])]
        )
        supervisor = _supervisor(rates={FaultSite.COLLECTOR_FEED_GAP: 1.0})
        observations = run_magnet_experiments(
            testbed,
            sim,
            feeds,
            vp_asns=internet.eyeball_asns[:10],
            supervisor=supervisor,
        )
        report = supervisor.report
        assert report.accounted()
        assert report.feed_gaps == len(testbed.muxes)
        assert len(observations) == len(testbed.muxes)
        for observation in observations:
            assert observation.censored
            assert observation.censor_reason == "feed-gap"
            assert observation.feed_visible == frozenset()
            # The traceroute channel survives the feed gap.
            assert observation.vp_visible
        # Nothing was recorded into the gapped archive.
        assert not feeds._paths

    def test_magnet_accounting_balances_fault_free(self, world):
        internet, testbed, sim = world
        supervisor = ActiveSupervisor()
        run_magnet_experiments(
            testbed, sim, FeedArchive([]), supervisor=supervisor
        )
        report = supervisor.report
        assert report.accounted()
        assert report.magnet_completed == len(testbed.muxes)
