"""Property-based validation of the BGP simulator on random topologies.

Under pure Gao-Rexford policies over random acyclic-hierarchy graphs:
the simulator must converge, its data-plane paths must be valley-free,
and its route lengths must match the analytical engine — for *every*
generated topology, not just the crafted ones.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp import BGPSimulator
from repro.core.gao_rexford import GaoRexfordEngine
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship

PFX = Prefix.parse("198.51.100.0/24")

rel_strategy = st.sampled_from(
    [Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER]
)


@st.composite
def hierarchy_graphs(draw):
    """Random graphs whose customer-provider hierarchy is acyclic."""
    num_ases = draw(st.integers(min_value=2, max_value=14))
    asns = list(range(1, num_ases + 1))
    graph = ASGraph()
    for asn in asns:
        graph.ensure_asn(asn)
    num_links = draw(st.integers(min_value=1, max_value=28))
    for _ in range(num_links):
        a = draw(st.sampled_from(asns))
        b = draw(st.sampled_from(asns))
        if a == b:
            continue
        rel = draw(rel_strategy)
        if rel is Relationship.PEER:
            graph.add_link(a, b, Relationship.PEER)
        else:
            # Lower ASN is always the provider: acyclic hierarchy.
            graph.add_link(min(a, b), max(a, b), Relationship.CUSTOMER)
    return graph


class TestSimulatorProperties:
    @given(hierarchy_graphs(), st.integers(min_value=1, max_value=14))
    @settings(max_examples=120, deadline=None)
    def test_sim_matches_engine_on_random_graphs(self, graph, destination):
        if destination not in graph:
            return
        simulator = BGPSimulator(graph)
        simulator.originate(destination, PFX)  # must converge
        info = GaoRexfordEngine(graph).routing_info(destination)
        dump = simulator.rib_dump(PFX)
        assert set(dump) == {
            asn for asn in graph.asns() if info.has_route(asn)
        } | {destination}
        for asn, route in dump.items():
            if asn == destination:
                continue
            assert route.path_length() == info.gr_route_length(asn)

    @given(hierarchy_graphs(), st.integers(min_value=1, max_value=14))
    @settings(max_examples=120, deadline=None)
    def test_forwarding_paths_valley_free(self, graph, destination):
        if destination not in graph:
            return
        simulator = BGPSimulator(graph)
        simulator.originate(destination, PFX)
        for asn in graph.asns():
            path = simulator.forwarding_path(asn, PFX)
            if path is None:
                continue
            assert path[-1] == destination
            went_down = False
            peer_edges = 0
            for left, right in zip(path[:-1], path[1:]):
                rel = graph.relationship(left, right)
                assert rel is not None
                if rel is Relationship.PEER:
                    peer_edges += 1
                    went_down = True
                elif rel is Relationship.CUSTOMER:
                    went_down = True
                else:
                    assert not went_down, f"valley in {path}"
            assert peer_edges <= 1

    @given(hierarchy_graphs(), st.integers(min_value=1, max_value=14))
    @settings(max_examples=60, deadline=None)
    def test_withdraw_restores_empty_state(self, graph, destination):
        if destination not in graph:
            return
        simulator = BGPSimulator(graph)
        simulator.originate(destination, PFX)
        simulator.withdraw(destination, PFX)
        assert simulator.rib_dump(PFX) == {}
