"""Integration tests: the durable run ledger under filesystem chaos.

The acceptance property for the storage layer: a ``repro study
--run-dir`` killed by injected filesystem faults (torn appends, ENOSPC,
crash-before-rename, stale locks) and resumed — as many times as it
takes — produces byte-identical outputs to an uninterrupted run of the
same configuration, and leaves a completed, unlocked run directory
behind.
"""

import json
import os

import pytest

from repro.atlas import dump_measurements
from repro.core.pipeline import Study, StudyConfig
from repro.faults import CampaignInterrupted, FaultPlan, FaultSite, RunLedger
from repro.faults.storage import LockHeldError
from repro.topogen.config import small_config

pytestmark = pytest.mark.faults

#: Storage-only chaos: crashes the run but never alters its outputs,
#: so the chaos run is byte-comparable to a fresh reference.
PLAN = FaultPlan(
    seed=5,
    rates={
        FaultSite.STORAGE_TORN_APPEND: 0.004,
        FaultSite.STORAGE_ENOSPC: 0.002,
        FaultSite.STORAGE_RENAME_CRASH: 0.05,
        FaultSite.STORAGE_STALE_LOCK: 0.3,
    },
)

MAX_ATTEMPTS = 25


def _config(run_dir=None, resume=False, seed=21):
    return StudyConfig(
        seed=seed,
        topology=small_config(),
        num_probes=100,
        probes_per_continent=8,
        active_vp_budget=24,
        max_discovery_targets=8,
        fault_plan=PLAN,
        pool_workers=2,
        pool_min_parallel_trees=1,
        durability="flush",
        run_dir=run_dir,
        resume=resume,
    )


@pytest.fixture(scope="module")
def chaos_outcome(tmp_path_factory):
    """One fresh reference run plus one chaos run resumed to completion."""
    run_dir = str(tmp_path_factory.mktemp("ledger") / "run")
    # The reference carries the same (storage-only) fault plan so both
    # runs take the resilient-campaign code path; without a run
    # directory there are no journals, so no storage fault ever fires.
    fresh = Study(_config()).run()
    crashes = 0
    results = None
    for attempt in range(MAX_ATTEMPTS):
        config = _config(run_dir=run_dir, resume=attempt > 0)
        try:
            results = Study(config).run()
            break
        except (CampaignInterrupted, OSError):
            crashes += 1
    return fresh, results, crashes, run_dir


class TestChaosResume:
    def test_completes_after_injected_crashes(self, chaos_outcome):
        _fresh, results, crashes, _run_dir = chaos_outcome
        assert results is not None, f"never completed in {MAX_ATTEMPTS} attempts"
        # The drill is vacuous unless at least one injected crash fired.
        assert crashes >= 1

    def test_outputs_byte_identical_to_fresh_run(self, chaos_outcome):
        fresh, results, _crashes, _run_dir = chaos_outcome
        assert dump_measurements(results.dataset.measurements) == dump_measurements(
            fresh.dataset.measurements
        )
        assert results.figure1_counts() == fresh.figure1_counts()
        assert len(results.decisions) == len(fresh.decisions)
        assert len(results.psp_cases_1) == len(fresh.psp_cases_1)
        assert len(results.psp_cases_2) == len(fresh.psp_cases_2)

    def test_run_directory_layout(self, chaos_outcome):
        _fresh, _results, crashes, run_dir = chaos_outcome
        document = RunLedger.read(run_dir)
        assert document["status"] == "completed"
        assert document["schema"] == 1
        assert document["runs"] == crashes + 1
        assert document["generation"] == crashes + 1
        assert set(document["fingerprints"]) == {"config", "fault_plan", "graph"}
        for journal in ("campaign.jsonl", "active.jsonl", "shards.jsonl"):
            assert os.path.exists(os.path.join(run_dir, journal)), journal
        assert not os.path.exists(os.path.join(run_dir, ".lock"))

    def test_reopening_completed_dir_without_resume_refused(self, chaos_outcome):
        _fresh, _results, _crashes, run_dir = chaos_outcome
        with pytest.raises(ValueError, match="--resume"):
            Study(_config(run_dir=run_dir)).run()
        assert not os.path.exists(os.path.join(run_dir, ".lock"))

    def test_resume_with_different_config_refused(self, chaos_outcome):
        _fresh, _results, _crashes, run_dir = chaos_outcome
        with pytest.raises(ValueError, match="different study configuration"):
            Study(_config(run_dir=run_dir, resume=True, seed=22)).run()

    def test_resume_under_live_foreign_lock_refused(self, chaos_outcome):
        _fresh, _results, _crashes, run_dir = chaos_outcome
        lock_path = os.path.join(run_dir, ".lock")
        with open(lock_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"pid": 1}))  # init: alive, not us
        try:
            with pytest.raises(LockHeldError):
                Study(_config(run_dir=run_dir, resume=True)).run()
        finally:
            os.unlink(lock_path)
