"""End-to-end integration tests over a complete (small) study."""

import pytest

from repro.core.classification import DecisionLabel
from repro.core.pipeline import FIGURE1_LAYERS, Study, StudyConfig
from repro.ipmap import IPToASMapper, convert_traceroute
from repro.topogen.config import small_config


class TestStudyOutputs:
    def test_all_layers_classify_every_decision(self, study):
        total = len(study.decisions)
        assert total > 500
        for layer in FIGURE1_LAYERS:
            assert study.figure1[layer].total() == total

    def test_majority_follows_model_but_many_deviate(self, study):
        simple = study.figure1["Simple"]
        best_short = simple.fraction(DecisionLabel.BEST_SHORT)
        assert 0.5 < best_short < 0.95

    def test_refinements_never_reduce_best_short(self, study):
        simple = study.figure1["Simple"].fraction(DecisionLabel.BEST_SHORT)
        for layer in ("PSP-1", "PSP-2", "All-1", "All-2"):
            assert (
                study.figure1[layer].fraction(DecisionLabel.BEST_SHORT)
                >= simple - 0.02
            )

    def test_all1_combines_at_least_psp1(self, study):
        assert (
            study.figure1["All-1"].fraction(DecisionLabel.BEST_SHORT)
            >= study.figure1["PSP-1"].fraction(DecisionLabel.BEST_SHORT) - 0.01
        )

    def test_decisions_reference_destination_prefixes(self, study):
        origins = study.origins
        for decision in study.decisions[:500]:
            assert decision.prefix in origins
            assert origins[decision.prefix] == decision.destination

    def test_traces_cover_measurements(self, study):
        assert study.traces
        for trace in study.traces[:100]:
            assert trace.decisions
            assert trace.source_continent

    def test_skew_totals_match_violations(self, study):
        violations = sum(
            1 for _d, label in study.labeled_simple if label.is_violation
        )
        assert study.skew.by_destination.total() == violations
        assert study.skew.by_source.total() == violations

    def test_probe_table_accounts_every_selected_probe(self, study):
        assert sum(row.probes for row in study.probe_table) == len(
            study.selected_probes
        )

    def test_active_results_present(self, study):
        assert study.discovery is not None
        assert study.preference_summary is not None
        assert study.magnet_table is not None
        assert study.magnet_observations

    def test_psp_cases_criterion2_subset_sensible(self, study):
        # Criterion 2 is strictly more conservative than criterion 1.
        assert len(study.psp_cases_2) <= len(study.psp_cases_1)

    def test_conversion_recovers_truth_paths(self, study):
        """AS-path conversion must match ground truth on >90% of clean
        traceroutes."""
        mapper = IPToASMapper.from_prefix_map(study.internet.prefixes)
        matched = 0
        total = 0
        for measurement in study.dataset.successful()[:800]:
            path = convert_traceroute(measurement.traceroute, mapper)
            if path is None or not path.complete:
                continue
            total += 1
            if path.hops == measurement.traceroute.truth_as_path:
                matched += 1
        assert total > 100
        assert matched / total > 0.9

    def test_study_results_cached(self, study):
        # Study.run() memoizes; re-running must return the same object.
        # (quick_study is lru_cached at module level; the fixture pins
        # the seed explicitly, so pass the same one.)
        from repro.experiments.scenario import quick_study
        from tests.conftest import STUDY_SEED

        assert quick_study(STUDY_SEED) is study


class TestStudyDeterminism:
    def test_same_config_same_figures(self):
        config = StudyConfig(
            topology=small_config(),
            seed=99,
            num_probes=150,
            probes_per_continent=8,
            active_experiments=False,
        )
        first = Study(config).run()
        second = Study(
            StudyConfig(
                topology=small_config(),
                seed=99,
                num_probes=150,
                probes_per_continent=8,
                active_experiments=False,
            )
        ).run()
        for layer in FIGURE1_LAYERS:
            assert first.figure1[layer].counts == second.figure1[layer].counts
        assert len(first.decisions) == len(second.decisions)
