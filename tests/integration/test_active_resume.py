"""Integration tests for the supervised, resumable active experiments.

Acceptance criteria for the control-plane resilience layer: a discovery
run killed mid-flight and resumed from its journal must reproduce the
uninterrupted run's :class:`DiscoveryResult` and preference summaries
byte-for-byte; and a full ``Study.run`` under an active fault plan
(poison filtering, damping, convergence stalls, feed gaps, withdrawal
loss) must complete without raising, with every target and magnet round
accounted in the :class:`ActiveRobustnessReport`.
"""

import os

import pytest

from repro.bgp import BGPSimulator
from repro.core.active_analysis import classify_preference_orders
from repro.core.pipeline import Study, StudyConfig
from repro.experiments import alternate_routes
from repro.faults import CampaignInterrupted, FaultPlan, FaultSite
from repro.peering import (
    ActiveRunConfig,
    ActiveSupervisor,
    FeedArchive,
    PeeringTestbed,
    default_collectors,
    discover_alternate_routes,
    run_magnet_experiments,
)
from repro.topogen import generate_internet
from repro.topogen.config import small_config

pytestmark = pytest.mark.faults

ACTIVE_PLAN = FaultPlan(
    seed=17,
    rates={
        FaultSite.POISON_FILTERED: 0.15,
        FaultSite.LONG_PATH_REJECTED: 0.1,
        FaultSite.ROUTE_FLAP_DAMPING: 0.2,
        FaultSite.CONVERGENCE_STALL: 0.15,
        FaultSite.COLLECTOR_FEED_GAP: 0.25,
        FaultSite.MUX_WITHDRAWAL_LOSS: 0.15,
        FaultSite.MUX_RESET: 0.08,
    },
)

STUDY_PLAN = FaultPlan(
    seed=17,
    rates=dict(
        ACTIVE_PLAN.rates,
        **{
            FaultSite.PROBE_DROPOUT: 0.04,
            FaultSite.DNS_TIMEOUT: 0.06,
            FaultSite.TRACEROUTE_TRUNCATE: 0.04,
        },
    ),
)


def _build_world():
    internet = generate_internet(small_config(), seed=3)
    testbed = PeeringTestbed(internet, num_muxes=4, seed=5, fault_plan=ACTIVE_PLAN)
    simulator = BGPSimulator(
        internet.graph, policies=internet.policies, country_of=internet.country_of
    )
    prefix = testbed.prefixes[0]
    testbed.announce(simulator, prefix)
    targets = sorted(simulator.reachable_ases(prefix))[:10]
    return internet, testbed, simulator, prefix, targets


def _run_active_phase(world, checkpoint=None, resume=False, abort_after=None):
    internet, testbed, simulator, prefix, targets = world
    supervisor = ActiveSupervisor(
        ActiveRunConfig(
            fault_plan=ACTIVE_PLAN,
            checkpoint_path=checkpoint,
            resume=resume,
            abort_after=abort_after,
        )
    )
    try:
        discovery = discover_alternate_routes(
            testbed, simulator, targets, prefix=prefix, supervisor=supervisor
        )
        feeds = FeedArchive(default_collectors(internet, seed=9))
        magnets = run_magnet_experiments(
            testbed, simulator, feeds, vp_asns=targets[:4], supervisor=supervisor
        )
    finally:
        supervisor.close()
    return discovery, magnets, supervisor.report


class TestActiveKillAndResume:
    def test_resume_matches_uninterrupted(self, tmp_path):
        journal_path = str(tmp_path / "active.jsonl")

        # Reference: uninterrupted, unjournaled run.
        reference_world = _build_world()
        ref_discovery, ref_magnets, ref_report = _run_active_phase(reference_world)
        assert ref_report.accounted()

        # Kill drill: a fresh world, killed after 4 finalized units.
        killed_world = _build_world()
        with pytest.raises(CampaignInterrupted) as excinfo:
            _run_active_phase(killed_world, checkpoint=journal_path, abort_after=4)
        assert excinfo.value.completed_pairs == 4

        # Simulate a torn write at the kill point.
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "pair", "probe": 1, "na')

        # Resume on yet another fresh world (a real restart).
        resumed_world = _build_world()
        discovery, magnets, report = _run_active_phase(
            resumed_world, checkpoint=journal_path, resume=True
        )

        # Byte-identical results and accounting.
        assert discovery.observations == ref_discovery.observations
        assert discovery.distinct_announcements == ref_discovery.distinct_announcements
        assert discovery.observed_links == ref_discovery.observed_links
        assert discovery.poisoned_only_links == ref_discovery.poisoned_only_links
        assert discovery.dispositions == ref_discovery.dispositions
        assert magnets == ref_magnets
        assert report.accounted()
        assert report.resumed_targets == 4
        assert ref_report.resumed_targets == 0

        # The graded preference orders are identical too.
        graph = resumed_world[0].graph
        resumed_summary = classify_preference_orders(discovery.observations, graph)
        reference_summary = classify_preference_orders(
            ref_discovery.observations, graph
        )
        assert resumed_summary == reference_summary

        # Disposition accounting matches the uninterrupted run exactly;
        # only effort counters (announcements, retries, damping) differ,
        # since replayed units spend no new testbed announcements.
        for field in (
            "total_targets",
            "completed",
            "censored",
            "quarantined",
            "magnet_rounds",
            "magnet_completed",
            "magnet_censored",
            "magnet_quarantined",
        ):
            assert getattr(report, field) == getattr(ref_report, field), field
        assert report.announcements < ref_report.announcements

    def test_resume_with_wrong_plan_rejected(self, tmp_path):
        journal_path = str(tmp_path / "active.jsonl")
        world = _build_world()
        with pytest.raises(CampaignInterrupted):
            _run_active_phase(world, checkpoint=journal_path, abort_after=2)
        other_plan = FaultPlan(seed=99, rates={FaultSite.POISON_FILTERED: 0.5})
        with pytest.raises(ValueError, match="refusing to resume"):
            ActiveSupervisor(
                ActiveRunConfig(
                    fault_plan=other_plan,
                    checkpoint_path=journal_path,
                    resume=True,
                )
            )


@pytest.fixture(scope="module")
def faulted_study(tmp_path_factory):
    checkpoint = str(tmp_path_factory.mktemp("study") / "ckpt.jsonl")
    config = StudyConfig(
        seed=13,
        topology=small_config(),
        num_probes=300,
        probes_per_continent=20,
        active_vp_budget=40,
        max_discovery_targets=16,
        fault_plan=STUDY_PLAN,
        checkpoint_path=checkpoint,
    )
    results = Study(config).run()  # must not raise
    return config, checkpoint, results


class TestStudyWithActiveFaults:
    def test_study_completes_with_accounted_active_report(self, faulted_study):
        _config, _checkpoint, results = faulted_study
        report = results.active_robustness
        assert report is not None
        assert report.accounted()
        assert report.total_targets > 0
        assert report.magnet_rounds > 0
        # The headline analyses still exist on partial active data.
        assert results.preference_summary is not None
        assert results.discovery is not None
        assert results.magnet_table is not None

    def test_section_44_report_accounts_for_censoring(self, faulted_study):
        _config, _checkpoint, results = faulted_study
        report = alternate_routes.run(results)
        rendered = report.render()
        summary = results.preference_summary
        if summary.censored or summary.censored_uninformative:
            assert "censored partial orders graded" in rendered

    def test_study_resume_restores_active_phase(self, faulted_study):
        config, checkpoint, first = faulted_study
        assert os.path.exists(checkpoint + ".active")
        resumed_config = StudyConfig(**{**vars(config), "resume": True})
        resumed = Study(resumed_config).run()
        report = resumed.active_robustness
        assert report.accounted()
        # Every unit came back from the journal, none were re-announced.
        assert report.resumed_targets == report.total_targets
        assert report.resumed_magnet_rounds == report.magnet_rounds
        assert report.announcements == 0
        assert (
            resumed.discovery.observations == first.discovery.observations
        )
        assert resumed.preference_summary == first.preference_summary
        assert [
            obs.anycast_routes for obs in resumed.magnet_observations
        ] == [obs.anycast_routes for obs in first.magnet_observations]
