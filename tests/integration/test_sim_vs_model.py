"""Cross-validation: BGP simulator vs the analytical GR engine.

With no policy deviations and error-free inference, the event-driven
BGP simulator and the three-stage routing-tree engine implement the
same model, so every simulated decision must classify as Best/Short
and predicted route lengths must match simulated path lengths exactly.
This is the strongest internal-consistency check the library has: the
two implementations share no code beyond the topology.
"""

import pytest

from repro.bgp import BGPSimulator, Policy
from repro.core.classification import Decision, DecisionLabel, classify_decision
from repro.core.gao_rexford import GaoRexfordEngine
from repro.net.ip import Prefix
from repro.topogen import generate_internet
from repro.topogen.config import TopologyConfig
from repro.topogen.generator import _Builder
from repro.topology.relationships import Relationship

PFX = Prefix.parse("198.51.100.0/24")


def _pure_gr_internet(seed):
    """A generated topology with every behaviour deviation disabled."""
    config = TopologyConfig(
        num_tier1=4,
        num_large_isps=10,
        num_small_isps=24,
        num_stubs=60,
        num_content_providers=3,
        num_cable_ases=0,
        sibling_org_rate=0.0,
        selective_export_rate=0.0,
        prefix_local_pref_rate=0.0,
        backup_link_rate=0.0,
        domestic_preference_rate=0.0,
        hybrid_rate=0.0,
        partial_transit_rate=0.0,
        poison_filter_rate=0.0,
        loop_prevention_disabled_rate=0.0,
        nongr_local_pref_rate=0.0,
        prepend_rate=0.0,
    )
    internet = generate_internet(config, seed=seed)
    # Strip local-pref overrides the generator may add outside the
    # rate-gated injectors (there are none today; belt and braces).
    for policy in internet.policies.values():
        policy.neighbor_local_pref.clear()
        policy.prefix_local_pref.clear()
        policy.selective_export.clear()
        policy.export_prepend.clear()
        policy.partial_transit_to.clear()
        policy.prefers_domestic = False
    return internet


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_simulator_agrees_with_engine_under_pure_gr(seed):
    internet = _pure_gr_internet(seed)
    engine = GaoRexfordEngine(internet.graph)  # perfect inference
    simulator = BGPSimulator(internet.graph, policies=internet.policies)

    destinations = [provider.asns[0] for provider in internet.content]
    for destination in destinations:
        prefix = internet.prefixes[destination][-1]
        simulator.originate(destination, prefix)
        info = engine.routing_info(destination)
        dump = simulator.rib_dump(prefix)

        # Reachability agrees (modulo the destination itself).
        model_reachable = {
            asn for asn in internet.graph.asns() if info.has_route(asn)
        }
        assert set(dump) == model_reachable | {destination}

        checked = 0
        for asn, route in dump.items():
            if asn == destination:
                continue
            # Predicted route length equals the simulated one.
            assert info.gr_route_length(asn) == route.path_length(), (
                f"AS{asn} toward AS{destination}"
            )
            # Every simulated decision grades Best/Short.
            path = simulator.forwarding_path(asn, prefix)
            assert path is not None
            decision = Decision(
                asn=asn,
                next_hop=route.learned_from,
                destination=destination,
                prefix=prefix,
                measured_len=len(path) - 1,
                source_asn=asn,
            )
            label = classify_decision(decision, engine)
            assert label is DecisionLabel.BEST_SHORT, f"AS{asn}: {label}"
            checked += 1
        assert checked > 50
