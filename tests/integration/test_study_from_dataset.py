"""Running a study over a serialized, reloaded dataset."""

from repro.core.classification import DecisionLabel
from repro.core.pipeline import FIGURE1_LAYERS, Study, StudyConfig
from repro.topogen import generate_internet, load_internet, save_internet
from repro.topogen.config import small_config


def _study_config():
    return StudyConfig(
        topology=small_config(),
        seed=33,
        num_probes=200,
        probes_per_continent=10,
        active_experiments=False,
    )


def test_study_over_reloaded_internet_matches_generated(tmp_path):
    """The same study over a saved-and-reloaded dataset reproduces the
    exact decision breakdown of the freshly generated one."""
    internet = generate_internet(small_config(), seed=33)
    path = tmp_path / "dataset.json"
    save_internet(internet, path)

    fresh = Study(_study_config(), internet=generate_internet(small_config(), seed=33)).run()
    reloaded = Study(_study_config(), internet=load_internet(path)).run()

    assert len(fresh.decisions) == len(reloaded.decisions)
    for layer in FIGURE1_LAYERS:
        assert fresh.figure1[layer].counts == reloaded.figure1[layer].counts
    assert fresh.figure1["Simple"].percent(DecisionLabel.BEST_SHORT) > 0
