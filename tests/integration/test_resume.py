"""Integration tests: kill-mid-run + resume, and Study.run under faults.

These are the acceptance tests for the resilience work: a campaign
killed mid-run and resumed from its checkpoint must produce the same
final measurement set as an uninterrupted run with the same seed,
without double-spending ledger credits; and a full ``Study.run`` under
a non-trivial fault plan must complete without raising, with a
``RobustnessReport`` whose accounting balances.
"""

import pytest

from repro.atlas import (
    CampaignConfig,
    CreditLedger,
    dump_measurements,
    generate_probes,
    run_resilient_campaign,
)
from repro.core.pipeline import Study, StudyConfig
from repro.faults import (
    CampaignInterrupted,
    CheckpointJournal,
    FaultPlan,
    FaultSite,
)
from repro.topogen import generate_internet
from repro.topogen.config import small_config

pytestmark = pytest.mark.faults

PLAN = FaultPlan(
    seed=11,
    rates={
        FaultSite.PROBE_DROPOUT: 0.05,
        FaultSite.PROBE_FLAP: 0.08,
        FaultSite.DNS_SERVFAIL: 0.04,
        FaultSite.DNS_TIMEOUT: 0.08,
        FaultSite.TRACEROUTE_TRUNCATE: 0.04,
        FaultSite.TRACEROUTE_LOOP: 0.03,
        FaultSite.TRACEROUTE_GARBLE: 0.04,
        FaultSite.API_RATE_LIMIT: 0.08,
        FaultSite.API_SERVER_ERROR: 0.04,
    },
)


@pytest.fixture(scope="module")
def world():
    internet = generate_internet(small_config(), seed=31)
    probes = generate_probes(internet, count=20, seed=31)
    return internet, probes


class TestKillAndResume:
    def test_resume_matches_uninterrupted_without_double_spend(
        self, world, tmp_path
    ):
        internet, probes = world
        journal_path = str(tmp_path / "campaign.jsonl")

        # Reference: uninterrupted run, no checkpointing.
        reference_ledger = CreditLedger(daily_budget=10**9)
        reference = run_resilient_campaign(
            internet,
            probes,
            CampaignConfig(seed=6, fault_plan=PLAN, ledger=reference_ledger),
        )
        assert len(reference.measurements) > 40

        # First attempt: killed after 25 finalized pairs.
        first_ledger = CreditLedger(daily_budget=10**9)
        with pytest.raises(CampaignInterrupted) as excinfo:
            run_resilient_campaign(
                internet,
                probes,
                CampaignConfig(
                    seed=6,
                    fault_plan=PLAN,
                    ledger=first_ledger,
                    checkpoint_path=journal_path,
                    abort_after=25,
                ),
            )
        assert excinfo.value.completed_pairs == 25

        # Simulate a torn write at the kill point.
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "pair", "probe": 1, "na')

        # Resume: skips journaled pairs, finishes the rest.
        resume_ledger = CreditLedger(daily_budget=10**9)
        resumed = run_resilient_campaign(
            internet,
            probes,
            CampaignConfig(
                seed=6,
                fault_plan=PLAN,
                ledger=resume_ledger,
                checkpoint_path=journal_path,
                resume=True,
            ),
        )

        assert dump_measurements(resumed.measurements) == dump_measurements(
            reference.measurements
        )
        # Disposition accounting is identical; only the retry effort and
        # replay counters differ (the resumed run skipped 25 pairs' work).
        skip = {"retry", "resumed_pairs"}
        resumed_view = {
            k: v for k, v in resumed.robustness.as_dict().items() if k not in skip
        }
        reference_view = {
            k: v for k, v in reference.robustness.as_dict().items() if k not in skip
        }
        assert resumed_view == reference_view
        # Replay count proves resumption actually skipped journaled work
        # (the reference run replayed nothing).
        assert resumed.robustness.resumed_pairs == 25
        assert reference.robustness.resumed_pairs == 0
        # No double-spend: the resumed ledger charges journal replays as
        # already-spent, landing on exactly the uninterrupted total.
        assert resume_ledger.spent == reference_ledger.spent

    def test_resume_with_wrong_plan_rejected(self, world, tmp_path):
        internet, probes = world
        journal_path = str(tmp_path / "campaign.jsonl")
        with pytest.raises(CampaignInterrupted):
            run_resilient_campaign(
                internet,
                probes,
                CampaignConfig(
                    seed=6,
                    fault_plan=PLAN,
                    checkpoint_path=journal_path,
                    abort_after=5,
                ),
            )
        other_plan = FaultPlan(seed=99, rates={FaultSite.DNS_TIMEOUT: 0.5})
        with pytest.raises(ValueError, match="refusing to resume"):
            run_resilient_campaign(
                internet,
                probes,
                CampaignConfig(
                    seed=6,
                    fault_plan=other_plan,
                    checkpoint_path=journal_path,
                    resume=True,
                ),
            )

    def test_journal_records_every_disposition(self, world, tmp_path):
        internet, probes = world
        journal_path = str(tmp_path / "campaign.jsonl")
        dataset = run_resilient_campaign(
            internet,
            probes,
            CampaignConfig(
                seed=6, fault_plan=PLAN, checkpoint_path=journal_path
            ),
        )
        report = dataset.robustness
        _header, records = CheckpointJournal(journal_path).load()
        statuses = [r["status"] for r in records]
        # Every accounted pair was finalized exactly once into the journal.
        assert len(records) == report.total_pairs
        assert statuses.count("completed") == report.completed
        assert statuses.count("degraded") == report.degraded_total()
        assert statuses.count("quarantined") == report.quarantined_total()
        assert statuses.count("lost") == report.lost_total()


class TestStudyUnderFaults:
    def test_study_completes_with_accounted_report(self):
        config = StudyConfig(
            seed=13,
            topology=small_config(),
            num_probes=300,
            probes_per_continent=20,
            active_vp_budget=40,
            max_discovery_targets=20,
            fault_plan=PLAN,
        )
        results = Study(config).run()  # must not raise
        report = results.robustness
        assert report is not None
        assert report.accounted()
        assert report.completed > 0
        assert 0.0 < report.coverage() <= 1.0
        # The study still produces its headline artifacts on partial data.
        assert results.figure1
        assert results.decisions

    def test_study_fault_free_total_matches_clean_run(self):
        small = dict(
            topology=small_config(),
            num_probes=300,
            probes_per_continent=20,
            active_vp_budget=40,
            max_discovery_targets=20,
        )
        faulted = Study(StudyConfig(seed=13, fault_plan=PLAN, **small)).run()
        clean = Study(
            StudyConfig(seed=13, fault_plan=FaultPlan.none(13), **small)
        ).run()
        assert (
            faulted.robustness.total_pairs
            == clean.robustness.total_pairs
            == clean.robustness.completed
        )
