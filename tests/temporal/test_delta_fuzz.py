"""Seeded fuzz battery for the snapshot delta codec.

Two properties over 50+ independently-seeded churn series derived
through the real :func:`~repro.topogen.inference.inferred_snapshots`
pipeline:

* **patch equivalence** — for every consecutive snapshot pair,
  ``apply_delta(old, diff_graphs(old, new))`` matches ``new``
  link-for-link (normalized triples) and AS-for-AS;
* **codec round-trip** — every delta survives
  ``GraphDelta.from_dict(json.loads(json.dumps(delta.to_dict())))``
  unchanged, the property the temporal journal relies on.
"""

import json
import random

import pytest

from repro.temporal.delta import GraphDelta, apply_delta, diff_graphs
from repro.topogen import generate_internet, inferred_snapshots
from repro.topogen.config import small_config
from repro.topogen.inference import InferenceConfig, perturb_snapshot

pytestmark = pytest.mark.temporal

#: Fuzz floor from the PR checklist: 50+ seeded churn series.
FUZZ_SEEDS = range(50)

#: A couple of higher-churn configurations ride along so removals,
#: relabels, and node churn all appear (2% churn alone is too gentle to
#: exercise every delta field in a 4-snapshot series).
CHURNS = (0.02, 0.15, 0.5)


@pytest.fixture(scope="module")
def internet():
    return generate_internet(small_config(), seed=321)


def _normalized(graph):
    return sorted(graph.links())


class TestPatchEquivalence:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_delta_applied_matches_fresh_snapshot(self, internet, seed):
        churn = CHURNS[seed % len(CHURNS)]
        config = InferenceConfig(num_snapshots=4, snapshot_churn=churn)
        snapshots, _known = inferred_snapshots(internet, config, seed=seed)
        assert len(snapshots) == 4
        for old, new in zip(snapshots, snapshots[1:]):
            before = _normalized(old)
            delta = diff_graphs(old, new)
            patched = apply_delta(old, delta)
            assert _normalized(patched) == _normalized(new)
            assert set(patched.asns()) == set(new.asns())
            # The source graph must be untouched by the copy path.
            assert _normalized(old) == before

    def test_in_place_patch_matches_copy_patch(self, internet):
        config = InferenceConfig(num_snapshots=3, snapshot_churn=0.2)
        snapshots, _known = inferred_snapshots(internet, config, seed=7)
        old, new = snapshots[0], snapshots[1]
        delta = diff_graphs(old, new)
        copied = apply_delta(old, delta)
        working = old.copy()
        returned = apply_delta(working, delta, in_place=True)
        assert returned is working
        assert _normalized(working) == _normalized(copied) == _normalized(new)

    def test_total_churn_diffs_cleanly(self, internet):
        """100% churn (every link dropped or flipped) still round-trips."""
        config = InferenceConfig(num_snapshots=2, snapshot_churn=1.0)
        snapshots, _known = inferred_snapshots(internet, config, seed=3)
        old, new = snapshots
        delta = diff_graphs(old, new)
        assert not delta.empty
        assert _normalized(apply_delta(old, delta)) == _normalized(new)

    def test_zero_churn_is_empty_delta(self, internet):
        base, _known = inferred_snapshots(
            internet, InferenceConfig(num_snapshots=1), seed=5
        )
        snapshot = base[0]
        delta = diff_graphs(snapshot, snapshot.copy())
        assert delta.empty
        assert delta.touched_pairs() == frozenset()


class TestCodecRoundTrip:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_json_round_trip_is_identity(self, internet, seed):
        churn = CHURNS[seed % len(CHURNS)]
        config = InferenceConfig(num_snapshots=3, snapshot_churn=churn)
        snapshots, _known = inferred_snapshots(internet, config, seed=seed)
        for old, new in zip(snapshots, snapshots[1:]):
            delta = diff_graphs(old, new)
            payload = json.loads(json.dumps(delta.to_dict()))
            assert GraphDelta.from_dict(payload) == delta

    def test_round_trip_covers_every_field(self, internet):
        """At least one fuzzed delta must exercise each delta field, or
        the codec assertions above are vacuous for that field."""
        seen = set()
        base, _known = inferred_snapshots(
            internet, InferenceConfig(num_snapshots=1), seed=11
        )
        rng = random.Random(11)
        previous = base[0]
        for _ in range(30):
            current = perturb_snapshot(previous, 0.4, rng)
            # Both directions: a link dropped by the perturbation is a
            # removal forward and an addition backward.
            for delta in (
                diff_graphs(previous, current),
                diff_graphs(current, previous),
            ):
                for name, count in delta.summary().items():
                    if count:
                        seen.add(name)
            previous = current
        assert {"links_added", "links_removed", "links_relabeled"} <= seen
