"""Incremental ≡ from-scratch over the study's own snapshot series.

The metamorphic core of the temporal pipeline: on both engine backends
the delta-driven incremental runner must reproduce the cold
per-snapshot reference byte-for-byte per epoch, the zero-diff epoch
must be a pure cache hit, total churn must degrade gracefully to a
cold recompute, and a journal-backed resume must continue into the
identical series.
"""

import json
import os

import pytest

from repro.temporal.study import (
    TemporalInputs,
    TemporalJournal,
    epoch_snapshot,
    run_incremental,
    run_scratch,
    serialize_epoch,
    series_fingerprint,
)
from repro.topogen.inference import InferenceConfig, inferred_snapshots

pytestmark = pytest.mark.temporal

BACKENDS = ("dict", "array")


@pytest.fixture(scope="module")
def series(study):
    return study.snapshots


def _inputs(study, backend):
    return TemporalInputs.from_study(study, backend=backend)


def _epoch_bytes(series):
    return [
        serialize_epoch(epoch_snapshot(index, figure1))
        for index, figure1 in enumerate(series)
    ]


class TestIncrementalEqualsScratch:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_study_series_byte_identical(self, study, series, backend):
        inputs = _inputs(study, backend)
        incremental = run_incremental(series, inputs)
        scratch = run_scratch(series, inputs)
        assert _epoch_bytes(incremental.figure1_series()) == _epoch_bytes(scratch)

    def test_backends_agree_with_each_other(self, study, series):
        legs = [
            run_incremental(series, _inputs(study, backend)).figure1_series()
            for backend in BACKENDS
        ]
        assert legs[0] == legs[1]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_higher_churn_series(self, study, backend):
        """A fresh, churnier series (not the study default) agrees too."""
        inference = InferenceConfig(num_snapshots=4, snapshot_churn=0.25)
        snapshots, _known = inferred_snapshots(
            study.internet, inference, seed=study.config.seed + 1
        )
        inputs = _inputs(study, backend)
        incremental = run_incremental(snapshots, inputs)
        scratch = run_scratch(snapshots, inputs)
        assert incremental.figure1_series() == scratch


class TestEdgeCases:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_diff_epoch_is_pure_cache_hit(self, study, series, backend):
        """An identical consecutive snapshot must cost nothing: no
        cache misses, no re-grading, every group's tally carried."""
        doubled = [series[0], series[0].copy(), series[1]]
        inputs = _inputs(study, backend)
        results = run_incremental(doubled, inputs)
        zero = results.epochs[1]
        assert zero.cache_misses == 0
        assert zero.regraded_groups == 0
        assert zero.invalidated_trees == 0
        assert zero.reused_groups > 0
        assert zero.figure1 == results.epochs[0].figure1
        assert results.figure1_series() == run_scratch(doubled, inputs)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_total_churn_matches_cold_recompute(self, study, backend):
        """100% churn leaves nothing reusable; the incremental leg must
        degrade to (and agree with) the from-scratch recompute."""
        inference = InferenceConfig(num_snapshots=3, snapshot_churn=1.0)
        snapshots, _known = inferred_snapshots(
            study.internet, inference, seed=study.config.seed + 1
        )
        inputs = _inputs(study, backend)
        incremental = run_incremental(snapshots, inputs)
        assert incremental.figure1_series() == run_scratch(snapshots, inputs)
        for epoch in incremental.epochs[1:]:
            assert sum(epoch.delta.values()) > 0


class TestJournalResume:
    def test_resume_replays_prefix_and_matches_uninterrupted(
        self, study, series, tmp_path
    ):
        inputs = _inputs(study, "dict")
        journal_path = os.fspath(tmp_path / "temporal.jsonl")
        full = run_incremental(series, inputs, journal_path=journal_path)
        assert full.resumed_epochs == 0

        # Truncate the journal to its first three epochs, as a crash
        # between epochs would leave it.
        journal = TemporalJournal(journal_path)
        header, records = journal.load()
        assert header["fingerprint"] == series_fingerprint(series, inputs)
        assert len(records) == len(series)
        truncated = TemporalJournal(journal_path)
        os.remove(journal_path)
        truncated.open_append()
        truncated.write_header(header)
        for record in records[:3]:
            truncated.append(record)
        truncated.close()

        resumed = run_incremental(
            series, inputs, journal_path=journal_path, resume=True
        )
        assert resumed.resumed_epochs == 3
        assert [epoch.resumed for epoch in resumed.epochs] == [
            True,
            True,
            True,
            False,
            False,
        ]
        assert _epoch_bytes(resumed.figure1_series()) == _epoch_bytes(
            full.figure1_series()
        )
        # The journal is whole again after the resumed run.
        _header, completed = TemporalJournal(journal_path).load()
        assert len(completed) == len(series)

    def test_resume_refuses_foreign_series(self, study, series, tmp_path):
        inputs = _inputs(study, "dict")
        journal_path = os.fspath(tmp_path / "temporal.jsonl")
        run_incremental(series, inputs, journal_path=journal_path)
        inference = InferenceConfig(num_snapshots=len(series), snapshot_churn=0.3)
        other, _known = inferred_snapshots(study.internet, inference, seed=99)
        with pytest.raises(ValueError, match="different snapshot series"):
            run_incremental(
                other, inputs, journal_path=journal_path, resume=True
            )

    def test_journal_records_are_json_lines(self, study, series, tmp_path):
        inputs = _inputs(study, "dict")
        journal_path = os.fspath(tmp_path / "temporal.jsonl")
        results = run_incremental(series, inputs, journal_path=journal_path)
        _header, records = TemporalJournal(journal_path).load()
        for record, epoch in zip(records, results.epochs):
            assert record["epoch"] == epoch.index
            assert record["figure1"] == epoch.figure1
            json.dumps(record)  # every record is JSON-serializable
