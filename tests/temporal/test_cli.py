"""End-to-end tests for the ``repro temporal`` / ``repro study
--temporal`` CLI surfaces.

The expensive study build is patched to reuse the session study
fixture (itself the small scenario), so these exercise the whole
temporal command path — snapshot series, journal, ledger, rendering —
without rebuilding a study per invocation.
"""

import json
import os

import pytest

from repro import cli

pytestmark = pytest.mark.temporal


@pytest.fixture
def patched_study(monkeypatch, study):
    def fake_run_study(seed, small, **kwargs):
        return study

    monkeypatch.setattr(cli, "_run_study", fake_run_study)
    return study


class TestTemporalCommand:
    def test_json_output_parses(self, patched_study, capsys):
        assert cli.main(["temporal", "--small", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "dict"
        assert payload["resumed_epochs"] == 0
        assert len(payload["epochs"]) == len(patched_study.snapshots)
        for epoch in payload["epochs"]:
            assert set(epoch["figure1"])  # every epoch carries counts

    def test_renders_epoch_table(self, patched_study, capsys):
        assert cli.main(["temporal", "--small"]) == 0
        out = capsys.readouterr().out
        assert "longitudinal study:" in out
        assert f"{len(patched_study.snapshots)} epoch(s)" in out
        assert "backend dict" in out

    def test_array_backend(self, patched_study, capsys):
        assert cli.main(["temporal", "--small", "--backend", "array"]) == 0
        assert "backend array" in capsys.readouterr().out

    def test_series_override_flags(self, patched_study, capsys):
        code = cli.main(
            ["temporal", "--small", "--snapshots", "3", "--churn", "0.1", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["epochs"]) == 3

    def test_run_dir_writes_ledger_and_journal(
        self, patched_study, tmp_path, capsys
    ):
        run_dir = str(tmp_path / "run")
        assert cli.main(["temporal", "--small", "--run-dir", run_dir]) == 0
        assert os.path.exists(os.path.join(run_dir, "ledger.json"))
        assert os.path.exists(os.path.join(run_dir, "temporal.jsonl"))

    def test_resume_replays_journaled_epochs(
        self, patched_study, tmp_path, capsys
    ):
        run_dir = str(tmp_path / "run")
        assert cli.main(["temporal", "--small", "--run-dir", run_dir]) == 0
        first = capsys.readouterr().out
        assert "replayed" not in first

        code = cli.main(
            ["temporal", "--small", "--run-dir", run_dir, "--resume"]
        )
        assert code == 0
        out = capsys.readouterr().out
        epochs = len(patched_study.snapshots)
        assert f"{epochs} replayed from journal" in out
        assert out.count("[replayed]") == epochs

    def test_resume_without_run_dir_exits_two(self, patched_study, capsys):
        assert cli.main(["temporal", "--small", "--resume"]) == 2
        assert "--resume requires --run-dir" in capsys.readouterr().err


class TestStudyTemporalFlag:
    def test_attaches_series_to_study_output(self, patched_study, capsys):
        assert cli.main(["study", "--small", "--temporal"]) == 0
        out = capsys.readouterr().out
        assert "longitudinal study:" in out
        assert f"{len(patched_study.snapshots)} epoch(s)" in out
        # The study's own reports still render after the series.
        assert patched_study.temporal is not None
