"""Engine cache-staleness guard: no silently stale routing trees.

Regression battery for the version-stamped routing cache.  A graph
mutation the engine was not told about must flush the cache (counted
in ``stale_flushes``), never serve a tree of a topology that no longer
exists; a caller that certifies the dirty set via ``invalidate_keys``
keeps the untouched remainder warm.  Exercised on both backends.
"""

import pytest

from repro.core.gao_rexford import GaoRexfordEngine
from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship

pytestmark = pytest.mark.temporal

BACKENDS = ("dict", "array")


def _chain_graph():
    """10 --provider-of--> 20 --provider-of--> 30, with 20 -- 40 peers.

    Destination 30 is reached by 10 over the customer chain (length 2)
    and by 40 over its peer 20 (length 2, peer-learned).
    """
    graph = ASGraph()
    graph.add_link(10, 20, Relationship.CUSTOMER)
    graph.add_link(20, 30, Relationship.CUSTOMER)
    graph.add_link(20, 40, Relationship.PEER)
    return graph


@pytest.mark.parametrize("backend", BACKENDS)
class TestStaleGuard:
    def test_unexplained_mutation_flushes_and_recomputes(self, backend):
        graph = _chain_graph()
        engine = GaoRexfordEngine(graph, backend=backend)
        before = engine.routing_info(30)
        assert before.best_class(40) is Relationship.PEER
        assert before.gr_route_length(40) == 2
        misses_before = engine.cache_stats().misses

        # A new direct customer edge 40 -> 30 changes 40's best route.
        graph.add_link(40, 30, Relationship.CUSTOMER)

        after = engine.routing_info(30)
        assert engine.stale_flushes == 1
        assert engine.cache_stats().misses == misses_before + 1
        assert after.best_class(40) is Relationship.CUSTOMER
        assert after.gr_route_length(40) == 1

    def test_link_removal_never_serves_stale_reachability(self, backend):
        graph = _chain_graph()
        engine = GaoRexfordEngine(graph, backend=backend)
        assert engine.routing_info(30).best_class(40) is Relationship.PEER

        graph.remove_link(20, 40)

        after = engine.routing_info(30)
        assert engine.stale_flushes == 1
        # 40 lost its only path to 30; a stale tree would still route it.
        assert after.best_class(40) is None
        assert after.gr_route_length(40) is None

    def test_flush_fires_on_any_cache_access(self, backend):
        """The guard lives on every cache entry point, not just
        ``routing_info`` — inspecting warm trees after a mutation must
        already see the flush."""
        graph = _chain_graph()
        engine = GaoRexfordEngine(graph, backend=backend)
        engine.routing_info(30)
        assert len(engine.cached_trees()) == 1

        graph.add_link(10, 40, Relationship.PEER)

        assert engine.cached_trees() == []
        assert engine.stale_flushes == 1

    def test_repeated_access_flushes_once_per_mutation(self, backend):
        graph = _chain_graph()
        engine = GaoRexfordEngine(graph, backend=backend)
        engine.routing_info(30)
        graph.add_link(10, 40, Relationship.PEER)
        engine.routing_info(30)
        engine.routing_info(30)
        engine.routing_info(10)
        assert engine.stale_flushes == 1

    def test_invalidate_keys_keeps_certified_remainder_warm(self, backend):
        graph = _chain_graph()
        engine = GaoRexfordEngine(graph, backend=backend)
        engine.routing_info(30)
        engine.routing_info(10)
        assert len(engine.cached_trees()) == 2

        # The new 40 -> 30 edge only affects destination 30's tree
        # (destination 10 announces over the same chain either way).
        graph.add_link(40, 30, Relationship.CUSTOMER)
        dropped = engine.invalidate_keys([engine.cache_key(30, None)])
        assert dropped == 1

        stats_before = engine.cache_stats()
        warm = engine.routing_info(10)
        assert engine.stale_flushes == 0
        assert engine.cache_stats().hits == stats_before.hits + 1
        assert engine.cache_stats().misses == stats_before.misses
        # 30 still reaches 10 through its provider 20 (length 2).
        assert warm.best_class(30) is Relationship.PROVIDER
        assert warm.gr_route_length(30) == 2

        fresh = engine.routing_info(30)
        assert engine.cache_stats().misses == stats_before.misses + 1
        assert fresh.best_class(40) is Relationship.CUSTOMER
        assert fresh.gr_route_length(40) == 1
