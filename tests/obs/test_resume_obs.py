"""Telemetry must not perturb kill/resume determinism.

The acceptance bar for the obs subsystem: with telemetry enabled, a
campaign killed mid-run and resumed from its checkpoint produces the
same byte-identical measurement dump as an uninterrupted run — and the
same bytes as the obs-disabled runs, since instrumentation consumes no
randomness and publishes no wall-clock state.
"""

import pytest

from repro.atlas import (
    CampaignConfig,
    dump_measurements,
    generate_probes,
    run_resilient_campaign,
)
from repro.faults import CampaignInterrupted, FaultPlan, FaultSite
from repro.obs import CATEGORY_FAULT, Observability, using
from repro.topogen import generate_internet
from repro.topogen.config import small_config

pytestmark = [pytest.mark.obs, pytest.mark.faults]

PLAN = FaultPlan(
    seed=11,
    rates={
        FaultSite.PROBE_DROPOUT: 0.05,
        FaultSite.DNS_SERVFAIL: 0.04,
        FaultSite.DNS_TIMEOUT: 0.08,
        FaultSite.TRACEROUTE_TRUNCATE: 0.04,
        FaultSite.API_RATE_LIMIT: 0.08,
    },
)


@pytest.fixture(scope="module")
def world():
    internet = generate_internet(small_config(), seed=31)
    probes = generate_probes(internet, count=20, seed=31)
    return internet, probes


def _config(**kwargs):
    return CampaignConfig(seed=6, fault_plan=PLAN, **kwargs)


class TestObsResumeDeterminism:
    def test_resume_byte_identical_with_obs_enabled(self, world, tmp_path):
        internet, probes = world

        # Baseline: uninterrupted, telemetry disabled (the reference bytes).
        reference = dump_measurements(
            run_resilient_campaign(internet, probes, _config()).measurements
        )

        # Uninterrupted with telemetry enabled: identical bytes.
        with using(Observability()) as obs:
            observed = run_resilient_campaign(internet, probes, _config())
        assert dump_measurements(observed.measurements) == reference
        # The telemetry actually recorded the run's faults.
        assert any(
            key.startswith(f"{CATEGORY_FAULT}:") for key in obs.events.counts
        )

        # Kill mid-run and resume, all under telemetry: same bytes again.
        journal = str(tmp_path / "campaign.jsonl")
        with using(Observability()):
            with pytest.raises(CampaignInterrupted):
                run_resilient_campaign(
                    internet,
                    probes,
                    _config(checkpoint_path=journal, abort_after=25),
                )
        with using(Observability()) as resumed_obs:
            resumed = run_resilient_campaign(
                internet,
                probes,
                _config(checkpoint_path=journal, resume=True),
            )
        assert dump_measurements(resumed.measurements) == reference
        assert resumed.robustness.resumed_pairs == 25
        # Replayed pairs skip their fault rolls, so the resumed run's
        # event log reflects only the work it actually performed.
        assert resumed_obs.events.counts

    def test_event_log_identical_across_reruns(self, world):
        internet, probes = world

        def run_events():
            with using(Observability()) as obs:
                run_resilient_campaign(internet, probes, _config())
            return [event.to_dict() for event in obs.events.events]

        assert run_events() == run_events()
