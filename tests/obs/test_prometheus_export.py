"""Prometheus exposition tests: escaping, content type, round-trip.

The exporter used to feed files read by humans; the serve daemon now
serves it over a network socket to real scrapers, where a raw newline
inside a label value would end a sample early and silently corrupt
every series after it.
"""

import pytest

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    metrics_to_prometheus,
)
from repro.obs.metrics import MetricsRegistry, escape_label_value, label_key

pytestmark = pytest.mark.obs


class TestLabelEscaping:
    def test_backslash_quote_and_newline(self):
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("line1\nline2") == "line1\\nline2"

    def test_escaping_order_does_not_double_escape(self):
        # The backslash introduced by quote/newline escaping must not
        # itself be re-escaped: \n -> \\n exactly, not \\\\n.
        assert escape_label_value("\n") == "\\n"
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_plain_values_unchanged(self):
        assert escape_label_value("study") == "study"
        assert escape_label_value(200) == "200"

    def test_label_key_uses_exposition_escaping(self):
        key = label_key({"tenant": 'evil"\n'})
        assert key == 'tenant="evil\\"\\n"'
        assert "\n" not in key


class TestExposition:
    def test_content_type_is_the_text_format_004(self):
        assert PROMETHEUS_CONTENT_TYPE == (
            "text/plain; version=0.0.4; charset=utf-8"
        )

    def test_hostile_label_values_stay_on_one_sample_line(self):
        registry = MetricsRegistry()
        counter = registry.counter("serve_requests_total", "Requests.")
        counter.labels(tenant='bad\n"guy\\', workload="study").inc()
        text = metrics_to_prometheus(registry.snapshot())
        sample_lines = [
            line
            for line in text.splitlines()
            if line.startswith("serve_requests_total{")
        ]
        assert len(sample_lines) == 1
        assert sample_lines[0].endswith(" 1")
        assert '\\n' in sample_lines[0]

    def test_help_text_escapes_newlines(self):
        registry = MetricsRegistry()
        registry.gauge("depth", "first line\nsecond line").set(3)
        text = metrics_to_prometheus(registry.snapshot())
        assert "# HELP depth first line\\nsecond line" in text
        assert "depth 3" in text

    def test_counter_gauge_histogram_render_types(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Hits.").inc(2)
        registry.gauge("depth", "Depth.").set(7)
        registry.histogram("latency_seconds", "Latency.").observe(0.2)
        text = metrics_to_prometheus(registry.snapshot())
        assert "# TYPE hits_total counter" in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text

    def test_round_trip_through_http_headers_preserves_content_type(self):
        """A scrape response's Content-Type must survive header parsing."""
        import email.parser

        raw = f"Content-Type: {PROMETHEUS_CONTENT_TYPE}\r\n\r\n"
        parsed = email.parser.Parser().parsestr(raw)
        assert parsed["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert parsed.get_content_type() == "text/plain"
        assert parsed.get_param("version") == "0.0.4"
        assert parsed.get_param("charset") == "utf-8"
