"""CLI surface of the telemetry subsystem: ``repro obs report``, the
``--obs-out`` study flag, and the declared console entry point."""

import pytest

from repro.cli import build_parser, main
from repro.obs import (
    Observability,
    RunManifest,
    Tracer,
    build_manifest,
    write_jsonl,
)

pytestmark = pytest.mark.obs


def _manifest_file(tmp_path, jsonl=False) -> str:
    obs = Observability()
    obs.metrics.counter("repro_decisions_total", "Decisions.").inc(5)
    obs.events.publish("fault", "atlas/dns:timeout", key="1/n")
    tracer = Tracer()
    with tracer.span("stage"):
        pass
    manifest = build_manifest(
        obs, tracer, kind="study", config={"seed": 1}, topology_seed=1
    )
    if jsonl:
        return write_jsonl(manifest, str(tmp_path / "run.jsonl"))
    return manifest.save(str(tmp_path / "run.json"))


class TestObsReport:
    def test_report_renders_summary(self, tmp_path, capsys):
        path = _manifest_file(tmp_path)
        assert main(["obs", "report", path]) == 0
        output = capsys.readouterr().out
        assert "== run manifest (study) ==" in output
        assert "repro_decisions_total" in output
        assert "faults fired:" in output

    def test_report_reads_jsonl_export(self, tmp_path, capsys):
        path = _manifest_file(tmp_path, jsonl=True)
        assert main(["obs", "report", path]) == 0
        assert "repro_decisions_total" in capsys.readouterr().out

    def test_report_writes_exports(self, tmp_path, capsys):
        path = _manifest_file(tmp_path)
        prom = tmp_path / "metrics.prom"
        jsonl = tmp_path / "run.jsonl"
        assert (
            main(
                [
                    "obs",
                    "report",
                    path,
                    "--prometheus",
                    str(prom),
                    "--jsonl",
                    str(jsonl),
                ]
            )
            == 0
        )
        assert "# TYPE repro_decisions_total counter" in prom.read_text()
        restored = RunManifest.load(str(jsonl))
        assert restored.to_dict() == RunManifest.load(path).to_dict()

    def test_report_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err.lower()

    def test_report_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])


class TestStudyObsFlags:
    def test_study_obs_out_writes_manifest(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        assert (
            main(
                [
                    "study",
                    "--small",
                    "--experiment",
                    "figure1",
                    "--obs-out",
                    str(out),
                ]
            )
            == 0
        )
        assert "wrote run manifest" in capsys.readouterr().out
        manifest = RunManifest.load(str(out))
        assert manifest.kind == "study"
        assert manifest.stage_timings()
        # The written manifest feeds straight back into the report command.
        assert main(["obs", "report", str(out)]) == 0


class TestConsoleEntryPoint:
    """The ``repro`` command is declared and resolves to the CLI main."""

    def _declared_entry_point(self):
        # Prefer installed metadata; fall back to pyproject.toml so the
        # test also passes in source checkouts that never ran pip.
        try:
            from importlib.metadata import entry_points

            try:
                scripts = entry_points(group="console_scripts")
            except TypeError:  # Python 3.9 API
                scripts = entry_points().get("console_scripts", [])
            for script in scripts:
                if script.name == "repro":
                    return script.value
        except Exception:
            pass
        import pathlib
        import re

        pyproject = (
            pathlib.Path(__file__).resolve().parents[2] / "pyproject.toml"
        )
        match = re.search(
            r'^repro\s*=\s*"([^"]+)"',
            pyproject.read_text(encoding="utf-8"),
            re.MULTILINE,
        )
        return match.group(1) if match else None

    def test_entry_point_resolves_and_runs(self, tmp_path, capsys):
        import importlib

        value = self._declared_entry_point()
        assert value == "repro.cli:main"
        module_name, _, attr = value.partition(":")
        entry_main = getattr(importlib.import_module(module_name), attr)
        # The resolved callable drives `repro obs report` end to end.
        path = _manifest_file(tmp_path)
        assert entry_main(["obs", "report", path]) == 0
        assert "== run manifest" in capsys.readouterr().out
