"""Unit tests for tracing spans, plus the stage double-count regression."""

import pytest

from repro.core.gao_rexford import GaoRexfordEngine
from repro.core.pipeline import figure1_layer_configs
from repro.obs import Span, Tracer, current_tracer, flatten, span
from repro.obs.trace import NullSpan

pytestmark = pytest.mark.obs


class TestTracer:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [child.name for child in tracer.roots[0].children] == ["inner"]

    def test_failed_flag_set_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.roots[0].failed
        assert tracer.roots[0].duration_s >= 0.0

    def test_stage_timings_counts_top_level_only(self):
        tracer = Tracer()
        with tracer.span("stage"):
            with tracer.span("child"):
                pass
        timings = tracer.stage_timings()
        assert set(timings) == {"stage"}
        # The child's time is inside the stage total, not added to it.
        root = tracer.roots[0]
        assert root.duration_s >= root.children[0].duration_s

    def test_reentered_stage_accumulates(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("loop"):
                pass
        assert tracer.stage_calls() == {"loop": 3}
        assert tracer.stage_timings()["loop"] == pytest.approx(
            tracer.total(), abs=1e-6
        )

    def test_attrs_and_round_trip(self):
        tracer = Tracer()
        with tracer.span("s", layer="Simple", trees=4):
            pass
        restored = Tracer.from_dicts(tracer.to_dicts())
        assert restored[0].attrs == {"layer": "Simple", "trees": 4}
        assert restored[0].name == "s"

    def test_self_seconds_never_negative(self):
        parent = Span(name="p", duration_s=1.0)
        parent.children = [Span(name="c", duration_s=2.0)]
        assert parent.self_seconds() == 0.0

    def test_flatten_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [node.name for node in flatten(tracer.roots)] == ["a", "b", "c"]


class TestAmbient:
    def test_span_without_tracer_is_null(self):
        assert current_tracer() is None
        assert isinstance(span("anything"), NullSpan)

    def test_span_targets_innermost_active_tracer(self):
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            with inner.activate():
                with span("x"):
                    pass
            with span("y"):
                pass
        assert [root.name for root in inner.roots] == ["x"]
        assert [root.name for root in outer.roots] == ["y"]

    def test_activate_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.activate():
                raise RuntimeError("x")
        assert current_tracer() is None


class TestSerialFallbackSingleCounting:
    """Regression: serial-fallback precompute work counted once.

    With two flat timers the in-process tree builds of the serial
    fallback were booked both inside the pipeline's ``figure1`` stage
    and by the classifier's own timing, double-counting the stage.  As
    spans, the classifier's work nests under the open stage span and
    ``stage_timings`` (top-level only) counts it exactly once.
    """

    def test_serial_precompute_nests_under_stage(self, study):
        from repro.perf.parallel import ParallelClassifier

        engine_simple = GaoRexfordEngine(study.inferred, canonical_keys=True)
        engine_complex = GaoRexfordEngine(
            study.inferred,
            partial_transit=study.engine_complex.partial_transit,
            canonical_keys=True,
        )
        layers = figure1_layer_configs(
            engine_simple,
            engine_complex,
            known_complex=study.known_complex,
            siblings=study.siblings,
            first_hops_1=study.first_hops_1,
            first_hops_2=study.first_hops_2,
        )
        classifier = ParallelClassifier(workers=1)  # forces serial fallback
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("figure1"):
                classifier.classify_layers(study.decisions[:50], layers)
        assert classifier.last_report.parallel is False

        # All classifier spans nested under the stage span ...
        assert [root.name for root in tracer.roots] == ["figure1"]
        nested = {node.name for node in flatten(tracer.roots[0].children)}
        assert "precompute_serial" in nested
        assert "classify_layer" in nested
        # ... so the flat view has one entry and no double-booked time.
        timings = tracer.stage_timings()
        assert set(timings) == {"figure1"}
        stage = tracer.roots[0]
        child_total = sum(child.duration_s for child in stage.children)
        assert child_total <= stage.duration_s + 1e-9
