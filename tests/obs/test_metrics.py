"""Unit tests for the metrics registry and snapshot merging."""

import random

import pytest

from repro.obs import MetricsRegistry, empty_snapshot, merge_snapshots
from repro.obs.metrics import NOOP_INSTRUMENT, label_key

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_counter_labeled_series_independent(self):
        counter = MetricsRegistry().counter("hits_total")
        counter.labels(layer="Simple").inc()
        counter.labels(layer="Complex").inc(3)
        assert counter.value(layer="Simple") == 1
        assert counter.value(layer="Complex") == 3
        assert counter.value(layer="Other") == 0

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        assert gauge.value() == 7.0

    def test_histogram_buckets_and_sum(self):
        hist = MetricsRegistry().histogram("lat", buckets=[0.1, 1.0])
        for value in (0.05, 0.5, 0.5, 10.0):
            hist.observe(value)
        row = hist.series()[""]
        # One obs <=0.1, two in (0.1, 1.0], one in +Inf.
        assert row["counts"] == [1, 2, 1]
        assert row["sum"] == pytest.approx(11.05)
        assert row["count"] == 4

    def test_reregistering_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_label_key_sorted_and_escaped(self):
        assert label_key({"b": 1, "a": 'v"q'}) == 'a="v\\"q",b="1"'


class TestDisabled:
    def test_disabled_registry_hands_out_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        assert counter is NOOP_INSTRUMENT
        counter.labels(layer="Simple").inc()
        counter.observe(1.0)
        counter.set(2.0)
        assert counter.value() == 0.0
        assert len(registry) == 0
        assert registry.snapshot() == empty_snapshot()

    def test_disabled_merge_is_noop(self):
        enabled = MetricsRegistry()
        enabled.counter("c").inc()
        disabled = MetricsRegistry(enabled=False)
        disabled.merge_snapshot(enabled.snapshot())
        assert disabled.snapshot() == empty_snapshot()


def _random_snapshot(rng):
    registry = MetricsRegistry()
    for name in ("a_total", "b_total"):
        counter = registry.counter(name)
        for layer in ("x", "y"):
            if rng.random() < 0.8:
                counter.labels(layer=layer).inc(rng.randint(1, 5))
    gauge = registry.gauge("depth")
    gauge.set(rng.randint(0, 10))
    hist = registry.histogram("lat", buckets=[0.25, 1.0])
    for _ in range(rng.randint(0, 6)):
        # Dyadic values keep float sums exact regardless of add order,
        # so snapshot equality is a fair associativity check.
        hist.observe(rng.choice([0.125, 0.5, 4.0]))
    return registry.snapshot()


class TestMerge:
    def test_empty_is_identity(self):
        rng = random.Random(7)
        snap = _random_snapshot(rng)
        assert merge_snapshots(snap, empty_snapshot()) == snap
        assert merge_snapshots(empty_snapshot(), snap) == snap

    def test_counters_sum_gauges_max(self):
        left = MetricsRegistry()
        left.counter("c").inc(2)
        left.gauge("g").set(5)
        right = MetricsRegistry()
        right.counter("c").inc(3)
        right.gauge("g").set(4)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert merged["counters"]["c"]["series"][""] == 5
        assert merged["gauges"]["g"]["series"][""] == 5

    def test_histogram_bucket_mismatch_rejected(self):
        left = MetricsRegistry()
        left.histogram("h", buckets=[1.0]).observe(0.5)
        right = MetricsRegistry()
        right.histogram("h", buckets=[2.0]).observe(0.5)
        with pytest.raises(ValueError, match="bucket mismatch"):
            merge_snapshots(left.snapshot(), right.snapshot())

    def test_merge_snapshot_folds_into_registry(self):
        worker = MetricsRegistry()
        worker.counter("trees_total").labels(engine="0").inc(4)
        parent = MetricsRegistry()
        parent.counter("trees_total").labels(engine="0").inc(1)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("trees_total").value(engine="0") == 5

    @pytest.mark.parametrize("seed", range(10))
    def test_fuzz_merge_associative_and_commutative(self, seed):
        """Worker snapshots can be folded in any completion order."""
        rng = random.Random(seed)
        snaps = [_random_snapshot(rng) for _ in range(rng.randint(2, 5))]

        def fold(order):
            merged = empty_snapshot()
            for index in order:
                merged = merge_snapshots(merged, snaps[index])
            return merged

        reference = fold(range(len(snaps)))
        for _ in range(5):
            order = list(range(len(snaps)))
            rng.shuffle(order)
            assert fold(order) == reference
        # Associativity: ((a+b)+c) == (a+(b+c)) on the first three.
        if len(snaps) >= 3:
            a, b, c = snaps[:3]
            left = merge_snapshots(merge_snapshots(a, b), c)
            right = merge_snapshots(a, merge_snapshots(b, c))
            assert left == right
