"""Unit tests for the event stream and the typed publishers wired into
the faults layer and the BGP simulator."""

import pytest

from repro.bgp import BGPSimulator
from repro.faults import (
    CircuitBreaker,
    DnsTimeout,
    FaultPlan,
    FaultSite,
    RetryExhausted,
    RetryPolicy,
    RetryStats,
    Watchdog,
    WatchdogExpired,
)
from repro.net.ip import Prefix
from repro.obs import (
    CATEGORY_BGP,
    CATEGORY_BREAKER,
    CATEGORY_FAULT,
    CATEGORY_RETRY,
    CATEGORY_WATCHDOG,
    Event,
    EventStream,
    Observability,
    using,
)
from repro.topology import ASGraph, Relationship

pytestmark = pytest.mark.obs


class TestEventStream:
    def test_publish_records_seq_and_attrs(self):
        stream = EventStream()
        event = stream.publish("retry", "attempt", site="atlas/dns", attempt=2)
        assert event.seq == 0
        assert event.attr("site") == "atlas/dns"
        assert stream.count("retry", "attempt") == 1

    def test_name_attr_does_not_collide(self):
        # attrs may themselves be called "name" (e.g. a DNS name).
        stream = EventStream()
        event = stream.publish("quarantine", "pair", name="r1.example.net")
        assert event.name == "pair"
        assert event.attr("name") == "r1.example.net"

    def test_disabled_stream_records_nothing(self):
        stream = EventStream(enabled=False)
        assert stream.publish("x", "y") is None
        assert len(stream) == 0
        assert stream.counts == {}

    def test_cap_drops_events_but_counts_stay_complete(self):
        stream = EventStream(max_events=3)
        for index in range(5):
            stream.publish("cat", "n", index=index)
        assert len(stream) == 3
        assert stream.dropped == 2
        assert stream.count("cat", "n") == 5

    def test_subscribe_sees_every_event(self):
        stream = EventStream(max_events=1)
        seen = []
        stream.subscribe(seen.append)
        stream.publish("a", "x")
        stream.publish("a", "y")  # over the cap, still delivered
        assert [event.name for event in seen] == ["x", "y"]

    def test_round_trip(self):
        stream = EventStream()
        stream.publish("fault", "atlas/dns:timeout", key="1/n")
        restored = EventStream.from_dicts(stream.to_dicts())
        assert restored == stream.events
        assert isinstance(restored[0], Event)


def _failing(error_factory=DnsTimeout):
    def fn(attempt):
        raise error_factory(f"attempt {attempt} failed")

    return fn


class TestTypedPublishers:
    def test_retry_attempts_and_exhaustion_published(self):
        with using(Observability()) as obs:
            policy = RetryPolicy(max_attempts=3)
            with pytest.raises(RetryExhausted):
                policy.execute(_failing(), key=("k",), stats=RetryStats())
        assert obs.events.count(CATEGORY_RETRY, "attempt") == 2
        assert obs.events.count(CATEGORY_RETRY, "exhausted") == 1
        exhausted = obs.events.of_category(CATEGORY_RETRY)[-1]
        assert exhausted.attr("attempts") == 3

    def test_breaker_transitions_published(self):
        with using(Observability()) as obs:
            breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
            breaker.record_failure()  # -> open
            breaker.allow()  # burn cooldown -> half-open
            breaker.allow()  # half-open probe admitted
            breaker.record_success()  # -> closed
        assert obs.events.count(CATEGORY_BREAKER, "open") == 1
        assert obs.events.count(CATEGORY_BREAKER, "half_open") == 1
        assert obs.events.count(CATEGORY_BREAKER, "closed") == 1

    def test_watchdog_expiry_published(self):
        with using(Observability()) as obs:
            watchdog = Watchdog(budget=2)
            watchdog.charge(2)
            with pytest.raises(WatchdogExpired):
                watchdog.charge()
        assert obs.events.count(CATEGORY_WATCHDOG, "expired") == 1

    def test_fault_plan_firings_published_under_site_value(self):
        plan = FaultPlan(seed=3, rates={FaultSite.DNS_TIMEOUT: 1.0})
        with using(Observability()) as obs:
            assert plan.fires(FaultSite.DNS_TIMEOUT, 7, "name")
            assert not plan.fires(FaultSite.DNS_SERVFAIL, 7, "name")
        key = f"fault:{FaultSite.DNS_TIMEOUT.value}"
        assert obs.events.counts == {key: 1}
        event = obs.events.of_category(CATEGORY_FAULT)[0]
        assert event.attr("key") == "7/name"

    def test_fault_plan_decision_unchanged_by_publishing(self):
        plan = FaultPlan(seed=3, rates={FaultSite.DNS_TIMEOUT: 0.5})
        keys = [(index, "n") for index in range(200)]
        silent = [plan.fires(FaultSite.DNS_TIMEOUT, *key) for key in keys]
        with using(Observability()) as obs:
            observed = [plan.fires(FaultSite.DNS_TIMEOUT, *key) for key in keys]
        assert observed == silent
        assert obs.events.count(
            CATEGORY_FAULT, FaultSite.DNS_TIMEOUT.value
        ) == sum(silent)

    def test_simulator_convergence_published(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.CUSTOMER)
        graph.add_link(2, 3, Relationship.CUSTOMER)
        with using(Observability()) as obs:
            simulator = BGPSimulator(graph)
            simulator.originate(3, Prefix.parse("198.51.100.0/24"))
        assert obs.events.count(CATEGORY_BGP, "converged") >= 1
        event = obs.events.of_category(CATEGORY_BGP)[0]
        assert event.attr("delivered") > 0
