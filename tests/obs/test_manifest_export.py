"""Round-trip tests for manifests and their exporters."""

import json
import re

import pytest

from repro.obs import (
    MANIFEST_SCHEMA,
    Observability,
    RunManifest,
    Tracer,
    build_manifest,
    config_digest,
    from_jsonl,
    render_summary,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)

pytestmark = pytest.mark.obs


def _sample_manifest() -> RunManifest:
    obs = Observability()
    obs.metrics.counter("repro_decisions_total", "Decisions.").inc(42)
    obs.metrics.counter("repro_hits_total").labels(layer="Simple").inc(7)
    obs.metrics.gauge("repro_cache_size").set(128)
    hist = obs.metrics.histogram("repro_stage_seconds", buckets=[0.1, 1.0])
    hist.observe(0.05)
    hist.observe(0.5)
    obs.events.publish("fault", "atlas/dns:timeout", key="1/n")
    obs.events.publish("retry", "attempt", site="atlas/dns", attempt=1)
    tracer = Tracer()
    with tracer.span("stage", layer="Simple"):
        with tracer.span("inner"):
            pass
    return build_manifest(
        obs,
        tracer,
        kind="test",
        config={"seed": 3, "scenario": "quick"},
        topology_seed=3,
        fault_plan_seed=11,
        fault_plan_fingerprint="abc123",
        meta={"decisions": 42},
    )


class TestManifest:
    def test_json_round_trip(self):
        manifest = _sample_manifest()
        restored = RunManifest.from_json(manifest.to_json())
        assert restored.to_dict() == manifest.to_dict()

    def test_save_load_json_and_jsonl(self, tmp_path):
        manifest = _sample_manifest()
        json_path = str(tmp_path / "run.json")
        jsonl_path = str(tmp_path / "run.jsonl")
        manifest.save(json_path)
        write_jsonl(manifest, jsonl_path)
        # load() detects the format from the content, not the extension.
        assert RunManifest.load(json_path).to_dict() == manifest.to_dict()
        assert RunManifest.load(jsonl_path).to_dict() == manifest.to_dict()

    def test_newer_schema_rejected(self):
        data = _sample_manifest().to_dict()
        data["schema"] = MANIFEST_SCHEMA + 1
        with pytest.raises(ValueError, match="newer than supported"):
            RunManifest.from_dict(data)

    def test_stage_timings_view(self):
        manifest = _sample_manifest()
        timings = manifest.stage_timings()
        assert set(timings) == {"stage"}
        assert manifest.total_seconds() == pytest.approx(
            timings["stage"], abs=1e-5
        )

    def test_fault_counts_view(self):
        manifest = _sample_manifest()
        assert manifest.fault_counts() == {"atlas/dns:timeout": 1}

    def test_config_digest_stable_and_order_independent(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})
        assert config_digest({"a": 1}) != config_digest({"a": 2})
        assert len(config_digest({"a": 1})) == 16


class TestJsonl:
    def test_round_trip_equality(self):
        manifest = _sample_manifest()
        restored = from_jsonl(to_jsonl(manifest))
        assert restored.to_dict() == manifest.to_dict()

    def test_every_line_is_json(self):
        text = to_jsonl(_sample_manifest())
        kinds = [json.loads(line)["kind"] for line in text.splitlines()]
        assert kinds[0] == "header"
        assert kinds.count("metrics") == 1
        assert kinds.count("span") == 1  # one root span
        assert kinds.count("event") == 2

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError, match="bad JSONL manifest line"):
            from_jsonl('{"kind": "header"}\nnot json\n')

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown JSONL manifest record"):
            from_jsonl('{"kind": "mystery"}\n')


#: One Prometheus sample line: name{optional labels} value
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-?[0-9.e+-]+)$"
)


class TestPrometheus:
    def test_text_format_valid(self):
        text = to_prometheus(_sample_manifest())
        assert text.endswith("\n")
        typed = set()
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split()
                assert kind in {"counter", "gauge", "histogram"}
                typed.add(name)
            elif not line.startswith("#"):
                assert _SAMPLE_RE.match(line), line
        assert "repro_decisions_total" in typed
        assert "repro_stage_seconds" in typed

    def test_histogram_buckets_cumulative_with_inf(self):
        text = to_prometheus(_sample_manifest())
        buckets = [
            line
            for line in text.splitlines()
            if line.startswith("repro_stage_seconds_bucket")
        ]
        assert [b.split()[-1] for b in buckets] == ["1", "2", "2"]
        assert 'le="+Inf"' in buckets[-1]
        assert "repro_stage_seconds_count 2" in text

    def test_labeled_series_rendered(self):
        text = to_prometheus(_sample_manifest())
        assert 'repro_hits_total{layer="Simple"} 7' in text


class TestSummary:
    def test_summary_mentions_all_sections(self):
        manifest = _sample_manifest()
        text = render_summary(manifest)
        assert "== run manifest (test) ==" in text
        assert "stage" in text and "inner" in text
        assert "repro_decisions_total" in text
        assert "fault:atlas/dns:timeout" in text
        assert "faults fired:" in text

    def test_summary_caps_metric_rows(self):
        obs = Observability()
        counter = obs.metrics.counter("many_total")
        for index in range(30):
            counter.labels(index=index).inc()
        manifest = build_manifest(obs, None, kind="test")
        text = render_summary(manifest, top_metrics=5)
        assert "... 25 more series" in text
