"""Study-level telemetry: manifests, per-layer cache stats, determinism."""

import pytest

from repro.core.pipeline import Study, StudyConfig
from repro.obs import Observability, using
from repro.topogen.config import small_config

pytestmark = pytest.mark.obs


def _quick_config(seed: int = 0) -> StudyConfig:
    # Mirrors repro.experiments.scenario.quick_study (the `study` fixture).
    return StudyConfig(
        topology=small_config(),
        seed=seed,
        num_probes=400,
        probes_per_continent=25,
        active_vp_budget=40,
        max_discovery_targets=20,
    )


@pytest.fixture(scope="module")
def obs_study():
    """The quick scenario run with full telemetry enabled."""
    with using(Observability()):
        return Study(_quick_config()).run()


class TestManifestProduction:
    def test_manifest_present_and_complete(self, obs_study):
        manifest = obs_study.manifest
        assert manifest is not None
        assert manifest.kind == "study"
        assert manifest.config_digest
        assert manifest.topology_seed == 0
        # The span tree reproduces the flat stage timings exactly.
        assert manifest.stage_timings() == obs_study.stage_timings
        # Core stages are present as top-level spans.
        for stage in ("topology", "campaign", "figure1", "label_decisions"):
            assert stage in manifest.stage_timings()
        # The classifier's nested spans landed under figure1.
        figure1 = next(s for s in manifest.spans if s["name"] == "figure1")
        child_names = {child["name"] for child in figure1.get("children", [])}
        assert child_names & {"precompute_serial", "precompute_pool"}
        assert "classify_layer" in child_names

    def test_manifest_metrics_recorded(self, obs_study):
        counters = obs_study.manifest.metrics["counters"]
        assert (
            counters["repro_decisions_extracted_total"]["series"][""]
            == len(obs_study.decisions)
        )
        assert "repro_routing_cache_hits_total" in counters
        assert "repro_campaign_measurements_total" in counters

    def test_manifest_meta_and_events(self, obs_study):
        manifest = obs_study.manifest
        assert manifest.meta["decisions"] == len(obs_study.decisions)
        assert manifest.meta["resumed"] is False
        # The active phase ran simulations, so BGP events were published.
        assert any(
            key.startswith("bgp:") for key in manifest.event_counts
        )

    def test_no_manifest_when_disabled(self, study):
        assert study.manifest is None
        # ... but stage timings are recorded regardless.
        assert study.stage_timings


class TestLayerCacheStats:
    def test_per_layer_deltas_and_cumulative(self, obs_study):
        stats = obs_study.layer_cache_stats
        assert set(stats) == set(obs_study.figure1)
        for name, layer_stats in stats.items():
            assert set(layer_stats) == {"delta", "cumulative"}
            delta, cumulative = layer_stats["delta"], layer_stats["cumulative"]
            for key in ("hits", "misses", "evictions"):
                assert 0 <= delta[key] <= cumulative[key], (name, key)
        # The regression guarded here: without reset/subtraction every
        # layer after the first reported its engine's lifetime counters.
        # With real deltas, later layers must differ from cumulative.
        assert any(
            s["delta"]["hits"] < s["cumulative"]["hits"]
            for s in stats.values()
        )
        # Work happened: the grading pass hits the routing cache.
        assert sum(s["delta"]["hits"] for s in stats.values()) > 0

    def test_recorded_without_obs_too(self, study):
        # The per-layer view is plain bookkeeping, not telemetry.
        assert set(study.layer_cache_stats) == set(study.figure1)


class TestDeterminism:
    def test_results_identical_with_and_without_obs(self, study, obs_study):
        """Enabling telemetry must not perturb any study output."""
        assert obs_study.figure1 == study.figure1
        assert obs_study.probe_table == study.probe_table
        assert obs_study.domestic_rows == study.domestic_rows
        assert len(obs_study.decisions) == len(study.decisions)
        assert len(obs_study.psp_cases_1) == len(study.psp_cases_1)
        assert len(obs_study.psp_cases_2) == len(study.psp_cases_2)
