"""Integration tests for BGP propagation over small topologies."""

import pytest

from repro.bgp import BGPSimulator, Policy
from repro.bgp.simulator import ConvergenceError
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship

PFX = Prefix.parse("198.51.100.0/24")


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


def _chain():
    """1 (tier-1) -> 2 -> 3 -> 4 (stub), provider to customer."""
    return _graph(
        (1, 2, Relationship.CUSTOMER),
        (2, 3, Relationship.CUSTOMER),
        (3, 4, Relationship.CUSTOMER),
    )


class TestPropagation:
    def test_customer_route_reaches_everyone(self):
        sim = BGPSimulator(_chain())
        sim.originate(4, PFX)
        for asn in (1, 2, 3):
            route = sim.best_route(asn, PFX)
            assert route is not None
            assert route.origin_asn == 4
        assert sim.forwarding_path(1, PFX) == (1, 2, 3, 4)

    def test_origin_best_is_local(self):
        sim = BGPSimulator(_chain())
        sim.originate(4, PFX)
        assert sim.best_route(4, PFX).learned_from == 4

    def test_withdraw_removes_routes(self):
        sim = BGPSimulator(_chain())
        sim.originate(4, PFX)
        sim.withdraw(4, PFX)
        for asn in (1, 2, 3, 4):
            assert sim.best_route(asn, PFX) is None

    def test_valley_free_export(self):
        """A peer route must not be re-exported to another peer."""
        graph = _graph(
            (1, 2, Relationship.PEER),
            (2, 3, Relationship.PEER),
        )
        sim = BGPSimulator(graph)
        sim.originate(1, PFX)
        assert sim.best_route(2, PFX) is not None
        assert sim.best_route(3, PFX) is None

    def test_provider_route_not_exported_to_peer(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),  # 1 provider of 2
            (2, 3, Relationship.PEER),
        )
        sim = BGPSimulator(graph)
        sim.originate(1, PFX)
        assert sim.best_route(2, PFX) is not None
        assert sim.best_route(3, PFX) is None

    def test_peer_route_exported_to_customer(self):
        graph = _graph(
            (1, 2, Relationship.PEER),
            (2, 3, Relationship.CUSTOMER),
        )
        sim = BGPSimulator(graph)
        sim.originate(1, PFX)
        assert sim.best_route(3, PFX) is not None
        assert sim.forwarding_path(3, PFX) == (3, 2, 1)


class TestPreference:
    def test_customer_route_preferred_over_shorter_peer(self):
        """Gao-Rexford: AS2 prefers the longer customer path."""
        graph = _graph(
            (2, 3, Relationship.CUSTOMER),
            (3, 4, Relationship.CUSTOMER),
            (2, 9, Relationship.PEER),
            (9, 4, Relationship.CUSTOMER),
        )
        sim = BGPSimulator(graph)
        sim.originate(4, PFX)
        route = sim.best_route(2, PFX)
        assert route.learned_from == 3
        assert route.relationship is Relationship.CUSTOMER

    def test_shorter_path_wins_within_class(self):
        graph = _graph(
            (2, 3, Relationship.CUSTOMER),
            (2, 5, Relationship.CUSTOMER),
            (3, 4, Relationship.CUSTOMER),
            (5, 6, Relationship.CUSTOMER),
            (6, 4, Relationship.CUSTOMER),
        )
        sim = BGPSimulator(graph)
        sim.originate(4, PFX)
        assert sim.best_route(2, PFX).learned_from == 3

    def test_neighbor_local_pref_override_flips_choice(self):
        graph = _graph(
            (2, 3, Relationship.CUSTOMER),
            (2, 9, Relationship.PEER),
            (3, 4, Relationship.CUSTOMER),
            (9, 4, Relationship.CUSTOMER),
        )
        policies = {2: Policy(asn=2, neighbor_local_pref={9: 400})}
        sim = BGPSimulator(graph, policies=policies)
        sim.originate(4, PFX)
        assert sim.best_route(2, PFX).learned_from == 9


class TestPoisoning:
    def test_poisoned_as_drops_route(self):
        sim = BGPSimulator(_chain())
        sim.originate(4, PFX, poisoned={2})
        assert sim.best_route(3, PFX) is not None
        assert sim.best_route(2, PFX) is None
        assert sim.best_route(1, PFX) is None

    def test_poisoning_forces_alternate_path(self):
        """Target AS1 reaches origin 4 via 2; poisoning 2 shifts to 3."""
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (1, 3, Relationship.CUSTOMER),
            (2, 4, Relationship.CUSTOMER),
            (3, 5, Relationship.CUSTOMER),
            (5, 4, Relationship.CUSTOMER),
        )
        sim = BGPSimulator(graph)
        sim.originate(4, PFX)
        assert sim.forwarding_path(1, PFX) == (1, 2, 4)
        sim.originate(4, PFX, poisoned={2})
        assert sim.forwarding_path(1, PFX) == (1, 3, 5, 4)

    def test_poison_filtering_as_ignores_poisoned_announcement(self):
        graph = _chain()
        policies = {2: Policy(asn=2, filters_poisoned=True)}
        sim = BGPSimulator(graph, policies=policies)
        sim.originate(4, PFX, poisoned={99})
        # AS2 filters announcements with AS-sets entirely.
        assert sim.best_route(3, PFX) is not None
        assert sim.best_route(2, PFX) is None

    def test_disabled_loop_prevention_keeps_route(self):
        graph = _chain()
        policies = {2: Policy(asn=2, loop_prevention_disabled=True)}
        sim = BGPSimulator(graph, policies=policies)
        sim.originate(4, PFX, poisoned={2})
        assert sim.best_route(2, PFX) is not None
        assert sim.best_route(1, PFX) is not None


class TestAnycastAndAge:
    def test_anycast_two_origins(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (1, 3, Relationship.CUSTOMER),
        )
        sim = BGPSimulator(graph)
        sim.originate(2, PFX)
        sim.originate(3, PFX)
        route = sim.best_route(1, PFX)
        assert route is not None
        assert route.origin_asn in (2, 3)

    def test_route_age_keeps_magnet_route(self):
        """With all else tied, the older (magnet) route is kept."""
        graph = _graph(
            (1, 2, Relationship.PROVIDER),
            (1, 3, Relationship.PROVIDER),
            (2, 8, Relationship.PROVIDER),
            (3, 9, Relationship.PROVIDER),
        )
        # Equalize igp costs (default zero) and rely on age: announce
        # via 8 first (magnet), then via 9.
        sim = BGPSimulator(graph)
        sim.originate(8, PFX)
        first = sim.best_route(1, PFX)
        assert first.as_path.sequence() == (2, 8)
        sim.originate(9, PFX)
        after = sim.best_route(1, PFX)
        # 2 < 3 on router id anyway; age decides first and keeps it.
        assert after.as_path.sequence() == (2, 8)
        from repro.bgp import DecisionStep

        assert sim.decision_step(1, PFX) in (
            DecisionStep.ROUTE_AGE,
            DecisionStep.ROUTER_ID,
        )

    def test_selective_export_blocks_neighbor(self):
        graph = _graph(
            (1, 4, Relationship.CUSTOMER),
            (2, 4, Relationship.CUSTOMER),
        )
        policies = {4: Policy(asn=4, selective_export={PFX: frozenset({1})})}
        sim = BGPSimulator(graph, policies=policies)
        sim.originate(4, PFX)
        assert sim.best_route(1, PFX) is not None
        assert sim.best_route(2, PFX) is None


class TestConvergenceFailure:
    """The event budget, its soft-limit warning, and recovery hooks."""

    def _contested_graph(self):
        """Origin 6 with two providers; enough traffic to hit a tiny budget."""
        return _graph(
            (1, 2, Relationship.PEER),
            (1, 3, Relationship.CUSTOMER),
            (1, 6, Relationship.CUSTOMER),
            (2, 6, Relationship.CUSTOMER),
        )

    def test_convergence_error_carries_context(self):
        sim = BGPSimulator(self._contested_graph(), max_events_per_link=1)
        with pytest.raises(ConvergenceError) as excinfo:
            sim.originate(6, PFX)
        error = excinfo.value
        assert error.prefix == PFX
        assert error.epoch == 1
        assert error.delivered == 4  # the whole budget was spent
        assert str(PFX) in str(error)

    def test_soft_limit_hook_fires_before_hard_limit(self):
        sim = BGPSimulator(self._contested_graph(), max_events_per_link=1)
        warnings = []
        sim.on_soft_limit = lambda prefix, epoch, delivered: warnings.append(
            (prefix, epoch, delivered)
        )
        with pytest.raises(ConvergenceError) as excinfo:
            sim.originate(6, PFX)
        assert len(warnings) == 1
        prefix, epoch, delivered = warnings[0]
        assert prefix == PFX
        assert epoch == 1
        # The warning preceded the hard limit: a supervisor acting on it
        # gets a head start on the breaker.
        assert delivered < excinfo.value.delivered

    def test_soft_limit_hook_can_fire_without_hard_failure(self):
        # The chain needs 3 deliveries against a budget of 3 (soft at 2):
        # the warning fires but convergence still completes.
        sim = BGPSimulator(_chain(), max_events_per_link=1)
        warnings = []
        sim.on_soft_limit = lambda *args: warnings.append(args)
        sim.originate(4, PFX)
        assert len(warnings) == 1
        assert sim.best_route(1, PFX) is not None

    def test_discard_pending_clears_the_unconverged_tail(self):
        sim = BGPSimulator(self._contested_graph(), max_events_per_link=1)
        with pytest.raises(ConvergenceError):
            sim.originate(6, PFX)
        assert sim.discard_pending() > 0
        assert sim.discard_pending() == 0

    def test_epoch_counts_origination_changes(self):
        sim = BGPSimulator(_chain())
        assert sim.epoch == 0
        sim.originate(4, PFX)
        assert sim.epoch == 1
        sim.withdraw(4, PFX)
        assert sim.epoch == 2


class TestFlapDamping:
    """Route-flap damping freezes oscillating state (see damped_ases)."""

    def _flappy_graph(self):
        """AS1 sees a peer route via 2 first, then a customer route via 6."""
        return _graph(
            (1, 2, Relationship.PEER),
            (2, 4, Relationship.CUSTOMER),
            (1, 6, Relationship.CUSTOMER),
            (6, 4, Relationship.CUSTOMER),
        )

    def test_damped_ases_after_repeated_best_changes(self):
        sim = BGPSimulator(self._flappy_graph(), flap_limit=1)
        sim.originate(4, PFX)
        damped = sim.damped_ases()
        assert 1 in damped
        assert PFX in damped[1]

    def test_damping_resets_each_epoch(self):
        sim = BGPSimulator(self._flappy_graph(), flap_limit=1)
        sim.originate(4, PFX)
        assert sim.damped_ases()
        # A new origination starts a new epoch: counters clear, and the
        # no-op re-announcement causes no best changes, so nothing damps.
        sim.originate(4, PFX)
        assert sim.damped_ases() == {}

    def test_no_damping_without_flap_limit(self):
        sim = BGPSimulator(self._flappy_graph())
        sim.originate(4, PFX)
        assert sim.damped_ases() == {}


class TestSimulatorMisc:
    def test_unknown_asn_raises(self):
        sim = BGPSimulator(_chain())
        with pytest.raises(KeyError):
            sim.originate(99, PFX)

    def test_rib_dump_and_reachable(self):
        sim = BGPSimulator(_chain())
        sim.originate(4, PFX)
        dump = sim.rib_dump(PFX)
        assert set(dump) == {1, 2, 3, 4}
        assert sim.reachable_ases(PFX) == frozenset({1, 2, 3, 4})

    def test_forwarding_path_none_without_route(self):
        sim = BGPSimulator(_chain())
        assert sim.forwarding_path(1, PFX) is None

    def test_deterministic_convergence(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (1, 3, Relationship.CUSTOMER),
            (2, 4, Relationship.CUSTOMER),
            (3, 4, Relationship.CUSTOMER),
            (2, 3, Relationship.PEER),
        )
        paths = set()
        for _ in range(3):
            sim = BGPSimulator(graph)
            sim.originate(4, PFX)
            paths.add(sim.forwarding_path(1, PFX))
        assert len(paths) == 1

    def test_reannouncing_same_prefix_is_stable(self):
        sim = BGPSimulator(_chain())
        sim.originate(4, PFX)
        before = sim.forwarding_path(1, PFX)
        sim.originate(4, PFX)  # no-op re-announcement
        assert sim.forwarding_path(1, PFX) == before
