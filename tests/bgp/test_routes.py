"""Unit tests for route objects and local origination."""

import pytest

from repro.bgp import ASPathAttribute, BGPSimulator, Route
from repro.bgp.routes import LocalRoute
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship

PFX = Prefix.parse("198.51.100.0/24")


class TestRoute:
    def test_effective_class_defaults_to_relationship(self):
        route = Route(
            prefix=PFX,
            as_path=ASPathAttribute.from_sequence([2, 9]),
            learned_from=2,
            relationship=Relationship.PEER,
            local_pref=200,
        )
        assert route.effective_class is Relationship.PEER
        assert route.next_hop_asn == 2
        assert route.origin_asn == 9
        assert route.path_length() == 2

    def test_explicit_export_class_wins(self):
        route = Route(
            prefix=PFX,
            as_path=ASPathAttribute.from_sequence([2, 9]),
            learned_from=2,
            relationship=Relationship.SIBLING,
            local_pref=100,
            export_class=Relationship.PROVIDER,
        )
        assert route.effective_class is Relationship.PROVIDER

    def test_aged_copy(self):
        route = Route(
            prefix=PFX,
            as_path=ASPathAttribute.origin(9),
            learned_from=9,
            relationship=Relationship.CUSTOMER,
            local_pref=300,
            age=1,
        )
        older = route.aged(7)
        assert older.age == 7
        assert route.age == 1

    def test_str_contains_key_facts(self):
        route = Route(
            prefix=PFX,
            as_path=ASPathAttribute.from_sequence([2, 9]),
            learned_from=2,
            relationship=Relationship.PEER,
            local_pref=200,
        )
        text = str(route)
        assert "AS2" in text and "peer" in text and str(PFX) in text


class TestLocalRoute:
    def test_self_route_beats_learned_routes(self):
        local = LocalRoute(prefix=PFX, origin_asn=9)
        route = local.to_route()
        assert route.learned_from == 9
        assert route.local_pref > 10 ** 6

    def test_exported_path_plain(self):
        local = LocalRoute(prefix=PFX, origin_asn=9)
        assert local.exported_path().sequence() == (9,)

    def test_exported_path_with_poison(self):
        local = LocalRoute(prefix=PFX, origin_asn=9, poisoned=frozenset({4, 5}))
        path = local.exported_path()
        assert path.contains(4) and path.contains(5)
        assert path.sequence() == (9, 9)
        assert path.length() == 3

    def test_speaker_rejects_foreign_origination(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PEER)
        sim = BGPSimulator(graph)
        with pytest.raises(ValueError):
            sim.speakers[1].originate(LocalRoute(prefix=PFX, origin_asn=2))

    def test_withdraw_unknown_prefix_is_noop(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PEER)
        sim = BGPSimulator(graph)
        assert not sim.speakers[1].withdraw_origin(PFX)

    def test_originates_flag(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PEER)
        sim = BGPSimulator(graph)
        sim.originate(1, PFX)
        assert sim.speakers[1].originates(PFX)
        assert not sim.speakers[2].originates(PFX)
