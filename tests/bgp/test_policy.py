"""Tests for per-AS routing policy."""

from repro.bgp import ASPathAttribute, Policy, Route
from repro.bgp.policy import DEFAULT_LOCAL_PREF, DOMESTIC_BONUS
from repro.net.ip import Prefix
from repro.topology.relationships import Relationship

PFX = Prefix.parse("198.51.100.0/24")


def _route(learned_from, rel, path):
    return Route(
        prefix=PFX,
        as_path=ASPathAttribute.from_sequence(path),
        learned_from=learned_from,
        relationship=rel,
        local_pref=DEFAULT_LOCAL_PREF[rel],
    )


class TestImportFilter:
    def test_loop_prevention(self):
        policy = Policy(asn=10)
        assert not policy.accepts(ASPathAttribute.from_sequence([5, 10, 7]))
        assert policy.accepts(ASPathAttribute.from_sequence([5, 7]))

    def test_loop_prevention_sees_inside_as_sets(self):
        policy = Policy(asn=10)
        poisoned = ASPathAttribute.origin(99).with_poison_set({10}, owner=99)
        assert not policy.accepts(poisoned)

    def test_disabled_loop_prevention(self):
        policy = Policy(asn=10, loop_prevention_disabled=True)
        assert policy.accepts(ASPathAttribute.from_sequence([5, 10, 7]))

    def test_poison_filtering(self):
        policy = Policy(asn=10, filters_poisoned=True)
        poisoned = ASPathAttribute.origin(99).with_poison_set({4}, owner=99)
        assert not policy.accepts(poisoned)
        assert policy.accepts(ASPathAttribute.origin(99))


class TestLocalPref:
    def test_relationship_bands(self):
        policy = Policy(asn=10)
        path = ASPathAttribute.origin(9)
        assert policy.local_pref_for(1, Relationship.CUSTOMER, PFX, path) == 300
        assert policy.local_pref_for(2, Relationship.PEER, PFX, path) == 200
        assert policy.local_pref_for(3, Relationship.PROVIDER, PFX, path) == 100
        assert policy.local_pref_for(4, Relationship.SIBLING, PFX, path) == 300

    def test_neighbor_override(self):
        policy = Policy(asn=10, neighbor_local_pref={2: 350})
        path = ASPathAttribute.origin(9)
        assert policy.local_pref_for(2, Relationship.PEER, PFX, path) == 350

    def test_prefix_override_beats_neighbor_override(self):
        policy = Policy(
            asn=10,
            neighbor_local_pref={2: 350},
            prefix_local_pref={(2, PFX): 50},
        )
        path = ASPathAttribute.origin(9)
        assert policy.local_pref_for(2, Relationship.PEER, PFX, path) == 50

    def test_domestic_bonus_applied(self):
        policy = Policy(asn=10, home_country="BR", prefers_domestic=True)
        countries = {9: "BR", 8: "BR", 7: "US"}
        path_domestic = ASPathAttribute.from_sequence([8, 9])
        path_foreign = ASPathAttribute.from_sequence([8, 7, 9])
        lp_dom = policy.local_pref_for(
            2, Relationship.PEER, PFX, path_domestic, countries.get
        )
        lp_for = policy.local_pref_for(
            2, Relationship.PEER, PFX, path_foreign, countries.get
        )
        assert lp_dom == 200 + DOMESTIC_BONUS
        assert lp_for == 200

    def test_domestic_bonus_needs_flag_and_lookup(self):
        policy = Policy(asn=10, home_country="BR", prefers_domestic=False)
        path = ASPathAttribute.from_sequence([8])
        assert policy.local_pref_for(2, Relationship.PEER, PFX, path, {8: "BR"}.get) == 200

    def test_igp_cost_default_zero(self):
        policy = Policy(asn=10, igp_cost={3: 12})
        assert policy.igp_cost_for(3) == 12
        assert policy.igp_cost_for(4) == 0


class TestExportPolicy:
    def test_gao_rexford_export(self):
        policy = Policy(asn=10)
        customer_route = _route(1, Relationship.CUSTOMER, [1, 9])
        peer_route = _route(2, Relationship.PEER, [2, 9])
        provider_route = _route(3, Relationship.PROVIDER, [3, 9])
        # Customer routes go to everyone.
        assert policy.should_export(customer_route, 5, Relationship.PEER)
        assert policy.should_export(customer_route, 6, Relationship.PROVIDER)
        assert policy.should_export(customer_route, 7, Relationship.CUSTOMER)
        # Peer/provider routes only to customers.
        assert policy.should_export(peer_route, 7, Relationship.CUSTOMER)
        assert not policy.should_export(peer_route, 5, Relationship.PEER)
        assert not policy.should_export(provider_route, 6, Relationship.PROVIDER)

    def test_never_export_back_to_source(self):
        policy = Policy(asn=10)
        route = _route(1, Relationship.CUSTOMER, [1, 9])
        assert not policy.should_export(route, 1, Relationship.CUSTOMER)

    def test_partial_transit_blocks_provider_routes(self):
        policy = Policy(asn=10, partial_transit_to={7})
        provider_route = _route(3, Relationship.PROVIDER, [3, 9])
        peer_route = _route(2, Relationship.PEER, [2, 9])
        assert not policy.should_export(provider_route, 7, Relationship.CUSTOMER)
        assert policy.should_export(peer_route, 7, Relationship.CUSTOMER)
        # Full-transit customers still get everything.
        assert policy.should_export(provider_route, 8, Relationship.CUSTOMER)

    def test_selective_origin_export(self):
        policy = Policy(asn=10, selective_export={PFX: frozenset({1, 2})})
        assert policy.exports_origin_prefix(PFX, 1)
        assert not policy.exports_origin_prefix(PFX, 3)
        other = Prefix.parse("203.0.113.0/24")
        assert policy.exports_origin_prefix(other, 3)
