"""Tests for BGP communities and in-band sibling entry-class tagging."""

import pytest

from repro.bgp import BGPSimulator
from repro.bgp.communities import (
    entry_class_community,
    read_entry_class,
    strip_entry_class,
)
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship

PFX = Prefix.parse("198.51.100.0/24")


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


class TestCommunityValues:
    def test_roundtrip_all_classes(self):
        for relationship in Relationship:
            tag = entry_class_community(65000, relationship)
            assert read_entry_class(frozenset({tag})) is relationship

    def test_read_ignores_foreign_communities(self):
        assert read_entry_class(frozenset({(65000, 100), (1, 2)})) is None

    def test_strip_preserves_foreign_communities(self):
        tag = entry_class_community(65000, Relationship.PEER)
        mixed = frozenset({tag, (65000, 100)})
        assert strip_entry_class(mixed) == frozenset({(65000, 100)})


class TestInBandSiblingClass:
    def test_entry_class_rides_communities_not_oracle(self):
        """Even without a relationship oracle, sibling members learn the
        entry class from the community tag."""
        graph = _graph(
            (1, 2, Relationship.SIBLING),
            (3, 2, Relationship.CUSTOMER),   # 3 is 2's provider
            (3, 9, Relationship.CUSTOMER),
            (1, 5, Relationship.PEER),
        )
        sim = BGPSimulator(graph)
        # Blind the oracle: communities must carry the class alone.
        for speaker in sim.speakers.values():
            speaker._resolve_relationship = None
        sim.originate(9, PFX)
        route_at_1 = sim.best_route(1, PFX)
        assert route_at_1.effective_class is Relationship.PROVIDER
        assert read_entry_class(route_at_1.communities) is Relationship.PROVIDER
        # Provider-class route must not leak to 1's peer.
        assert sim.best_route(5, PFX) is None

    def test_tag_stripped_outside_org(self):
        graph = _graph(
            (1, 2, Relationship.SIBLING),
            (2, 9, Relationship.CUSTOMER),   # 9 is 2's customer
            (1, 5, Relationship.PEER),
        )
        sim = BGPSimulator(graph)
        sim.originate(9, PFX)
        # 1 received the tag over the sibling link...
        assert read_entry_class(sim.best_route(1, PFX).communities) is not None
        # ...but 5, outside the org, must not see org-internal tags.
        route_at_5 = sim.best_route(5, PFX)
        assert route_at_5 is not None
        assert read_entry_class(route_at_5.communities) is None

    def test_tag_preserved_across_sibling_chain(self):
        graph = _graph(
            (1, 2, Relationship.SIBLING),
            (2, 3, Relationship.SIBLING),
            (4, 3, Relationship.CUSTOMER),   # 4 is 3's provider
            (4, 9, Relationship.CUSTOMER),
        )
        sim = BGPSimulator(graph)
        for speaker in sim.speakers.values():
            speaker._resolve_relationship = None
        sim.originate(9, PFX)
        route_at_1 = sim.best_route(1, PFX)
        assert route_at_1 is not None
        assert route_at_1.effective_class is Relationship.PROVIDER

    def test_org_origination_tagged_customer(self):
        graph = _graph((1, 2, Relationship.SIBLING))
        sim = BGPSimulator(graph)
        for speaker in sim.speakers.values():
            speaker._resolve_relationship = None
        sim.originate(2, PFX)
        route = sim.best_route(1, PFX)
        assert route.effective_class is Relationship.CUSTOMER
        assert read_entry_class(route.communities) is Relationship.CUSTOMER
