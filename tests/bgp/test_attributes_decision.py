"""Tests for AS-path attributes and the decision process."""

import pytest

from repro.bgp import ASPathAttribute, DecisionStep, Route, best_route, compare_routes
from repro.bgp.decision import rank_routes
from repro.net.ip import Prefix
from repro.topology.relationships import Relationship

PFX = Prefix.parse("198.51.100.0/24")


def _route(lp=100, path=(1, 2), igp=0, age=0, rid=1, rel=Relationship.PROVIDER):
    return Route(
        prefix=PFX,
        as_path=ASPathAttribute.from_sequence(path),
        learned_from=path[0],
        relationship=rel,
        local_pref=lp,
        igp_cost=igp,
        age=age,
        router_id=rid,
    )


class TestASPathAttribute:
    def test_origin_and_prepend(self):
        path = ASPathAttribute.origin(65001).prepend(65002).prepend(65003)
        assert path.sequence() == (65003, 65002, 65001)
        assert path.origin_asn == 65001
        assert path.first_asn == 65003
        assert path.length() == 3

    def test_as_set_counts_as_one_hop(self):
        path = ASPathAttribute.origin(100).with_poison_set({7, 8, 9}, owner=100)
        # owner {7,8,9} owner
        assert path.length() == 3
        assert path.contains(8)
        assert path.contains(100)
        assert not path.contains(11)

    def test_with_empty_poison_set_is_identity(self):
        path = ASPathAttribute.origin(100)
        assert path.with_poison_set([], owner=100) == path

    def test_sequence_skips_sets(self):
        path = ASPathAttribute.origin(100).with_poison_set({7}, owner=100).prepend(5)
        assert path.sequence() == (5, 100, 100)

    def test_all_asns(self):
        path = ASPathAttribute.origin(100).with_poison_set({7, 8}, owner=100)
        assert path.all_asns() == frozenset({100, 7, 8})

    def test_str_rendering(self):
        path = ASPathAttribute((1, frozenset({3, 2}), 1))
        assert str(path) == "1 {2,3} 1"

    def test_origin_of_set_only_path_raises(self):
        with pytest.raises(ValueError):
            ASPathAttribute((frozenset({1, 2}),)).origin_asn


class TestDecisionProcess:
    def test_empty_candidates(self):
        assert best_route([]) == (None, None)

    def test_single_route(self):
        route = _route()
        winner, step = best_route([route])
        assert winner == route
        assert step is DecisionStep.ONLY_ROUTE

    def test_local_pref_wins_over_shorter_path(self):
        cheap_long = _route(lp=300, path=(1, 2, 3, 4))
        expensive_short = _route(lp=100, path=(5, 4), rid=5)
        winner, step = best_route([expensive_short, cheap_long])
        assert winner == cheap_long
        assert step is DecisionStep.LOCAL_PREF

    def test_path_length_breaks_local_pref_tie(self):
        short = _route(lp=200, path=(1, 4), rid=1)
        long = _route(lp=200, path=(2, 3, 4), rid=2)
        winner, step = best_route([long, short])
        assert winner == short
        assert step is DecisionStep.PATH_LENGTH

    def test_igp_cost_breaks_length_tie(self):
        near = _route(igp=5, path=(1, 4), rid=1)
        far = _route(igp=9, path=(2, 4), rid=2)
        winner, step = best_route([far, near])
        assert winner == near
        assert step is DecisionStep.IGP_COST

    def test_route_age_breaks_igp_tie(self):
        old = _route(age=3, path=(1, 4), rid=1)
        new = _route(age=8, path=(2, 4), rid=2)
        winner, step = best_route([new, old])
        assert winner == old
        assert step is DecisionStep.ROUTE_AGE

    def test_router_id_is_final_tiebreak(self):
        low = _route(rid=1, path=(1, 4))
        high = _route(rid=2, path=(2, 4))
        winner, step = best_route([high, low])
        assert winner == low
        assert step is DecisionStep.ROUTER_ID

    def test_compare_routes_signs(self):
        better = _route(lp=300)
        worse = _route(lp=100)
        assert compare_routes(better, worse) < 0
        assert compare_routes(worse, better) > 0
        assert compare_routes(better, better) == 0

    def test_rank_routes_total_order(self):
        routes = [
            _route(lp=100, path=(1, 9), rid=1),
            _route(lp=300, path=(2, 9), rid=2),
            _route(lp=200, path=(3, 9), rid=3),
        ]
        ranked = rank_routes(routes)
        assert [r.local_pref for r in ranked] == [300, 200, 100]
