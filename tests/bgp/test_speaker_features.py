"""Tests for speaker-level features: prepending, sibling semantics,
and route-flap damping."""

import pytest

from repro.bgp import BGPSimulator, Policy
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship

PFX = Prefix.parse("198.51.100.0/24")


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


class TestPrepending:
    def test_prepending_inflates_announced_length(self):
        graph = _graph((1, 4, Relationship.CUSTOMER))
        policies = {4: Policy(asn=4, export_prepend={(PFX, 1): 2})}
        sim = BGPSimulator(graph, policies=policies)
        sim.originate(4, PFX)
        route = sim.best_route(1, PFX)
        assert route.path_length() == 3  # 4 4 4
        assert route.as_path.sequence() == (4, 4, 4)

    def test_prepending_deflects_traffic(self):
        """AS1 avoids the prepended provider path."""
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (1, 3, Relationship.CUSTOMER),
            (2, 4, Relationship.CUSTOMER),
            (3, 5, Relationship.CUSTOMER),
            (5, 4, Relationship.CUSTOMER),
        )
        # Without prepending, 1 -> 2 -> 4 wins on length.
        plain = BGPSimulator(graph)
        plain.originate(4, PFX)
        assert plain.forwarding_path(1, PFX) == (1, 2, 4)
        # Origin prepends 3 hops toward provider 2.
        policies = {4: Policy(asn=4, export_prepend={(PFX, 2): 3})}
        steered = BGPSimulator(graph, policies=policies)
        steered.originate(4, PFX)
        assert steered.forwarding_path(1, PFX) == (1, 3, 5, 4)

    def test_prepending_is_per_prefix(self):
        graph = _graph((1, 4, Relationship.CUSTOMER))
        other = Prefix.parse("203.0.113.0/24")
        policies = {4: Policy(asn=4, export_prepend={(PFX, 1): 2})}
        sim = BGPSimulator(graph, policies=policies)
        sim.originate(4, PFX)
        sim.originate(4, other)
        assert sim.best_route(1, PFX).path_length() == 3
        assert sim.best_route(1, other).path_length() == 1


class TestSiblingSemantics:
    def test_sibling_route_inherits_entry_class(self):
        """A provider route learned via a sibling stays a provider
        route: it is not re-exported to peers."""
        graph = _graph(
            (1, 2, Relationship.SIBLING),
            (3, 2, Relationship.CUSTOMER),   # 3 is 2's provider
            (3, 9, Relationship.CUSTOMER),   # destination 9 behind 3
            (1, 5, Relationship.PEER),
        )
        sim = BGPSimulator(graph)
        sim.originate(9, PFX)
        route_at_1 = sim.best_route(1, PFX)
        assert route_at_1 is not None
        assert route_at_1.relationship is Relationship.SIBLING
        assert route_at_1.effective_class is Relationship.PROVIDER
        # The org's provider route must not leak to 1's peer 5.
        assert sim.best_route(5, PFX) is None

    def test_sibling_customer_route_exported_to_peers(self):
        graph = _graph(
            (1, 2, Relationship.SIBLING),
            (2, 9, Relationship.CUSTOMER),   # 9 is 2's customer
            (1, 5, Relationship.PEER),
        )
        sim = BGPSimulator(graph)
        sim.originate(9, PFX)
        route_at_1 = sim.best_route(1, PFX)
        assert route_at_1.effective_class is Relationship.CUSTOMER
        # Customer routes of the org do go to peers.
        assert sim.best_route(5, PFX) is not None

    def test_two_siblings_with_provider_routes_converge(self):
        """The classic DISAGREE gadget must not oscillate."""
        graph = _graph(
            (1, 2, Relationship.SIBLING),
            (3, 1, Relationship.CUSTOMER),
            (4, 2, Relationship.CUSTOMER),
            (5, 3, Relationship.CUSTOMER),
            (5, 4, Relationship.CUSTOMER),
            (5, 9, Relationship.CUSTOMER),
        )
        sim = BGPSimulator(graph)
        sim.originate(9, PFX)  # raises ConvergenceError on oscillation
        assert sim.best_route(1, PFX) is not None
        assert sim.best_route(2, PFX) is not None

    def test_sibling_chain_resolution(self):
        graph = _graph(
            (1, 2, Relationship.SIBLING),
            (2, 3, Relationship.SIBLING),
            (3, 9, Relationship.CUSTOMER),
        )
        sim = BGPSimulator(graph)
        sim.originate(9, PFX)
        route = sim.best_route(1, PFX)
        assert route.effective_class is Relationship.CUSTOMER

    def test_org_internal_destination_is_customer_class(self):
        graph = _graph((1, 2, Relationship.SIBLING))
        sim = BGPSimulator(graph)
        sim.originate(2, PFX)
        route = sim.best_route(1, PFX)
        assert route.effective_class is Relationship.CUSTOMER


class TestFlapDamping:
    def test_dispute_wheel_is_damped_not_livelocked(self):
        """Three peers each preferring the next one over the origin
        route form a classic BAD GADGET; damping must freeze it."""
        graph = _graph(
            (1, 2, Relationship.PEER),
            (2, 3, Relationship.PEER),
            (3, 1, Relationship.PEER),
            (1, 9, Relationship.CUSTOMER),
            (2, 9, Relationship.CUSTOMER),
            (3, 9, Relationship.CUSTOMER),
        )
        policies = {
            1: Policy(asn=1, neighbor_local_pref={2: 400}),
            2: Policy(asn=2, neighbor_local_pref={3: 400}),
            3: Policy(asn=3, neighbor_local_pref={1: 400}),
        }
        sim = BGPSimulator(graph, policies=policies, flap_limit=20)
        sim.originate(9, PFX)  # must terminate
        assert sim.damped_ases()  # the gadget was frozen
        # Every gadget member still holds some route.
        for asn in (1, 2, 3):
            assert sim.best_route(asn, PFX) is not None

    def test_damping_resets_between_epochs(self):
        graph = _graph(
            (1, 2, Relationship.PEER),
            (2, 3, Relationship.PEER),
            (3, 1, Relationship.PEER),
            (1, 9, Relationship.CUSTOMER),
            (2, 9, Relationship.CUSTOMER),
            (3, 9, Relationship.CUSTOMER),
        )
        policies = {
            1: Policy(asn=1, neighbor_local_pref={2: 400}),
            2: Policy(asn=2, neighbor_local_pref={3: 400}),
            3: Policy(asn=3, neighbor_local_pref={1: 400}),
        }
        sim = BGPSimulator(graph, policies=policies, flap_limit=20)
        sim.originate(9, PFX)
        assert sim.damped_ases()
        other = Prefix.parse("203.0.113.0/24")
        sim.originate(9, other)
        # New epoch: old freeze state must not leak across epochs for
        # the new prefix.
        frozen_prefixes = {
            prefix for bucket in sim.damped_ases().values() for prefix in bucket
        }
        assert PFX not in frozen_prefixes or other not in frozen_prefixes

    def test_gr_policies_never_trip_damping(self):
        from repro.topogen import generate_internet
        from repro.topogen.config import small_config

        internet = generate_internet(small_config(), seed=44)
        sim = BGPSimulator(
            internet.graph, policies=internet.policies, country_of=internet.country_of
        )
        origin = internet.content[0].asns[0]
        for prefix in internet.prefixes[origin]:
            sim.originate(origin, prefix)
        assert sim.damped_ases() == {}
