"""Tests for the geography analyses (Figure 3, Tables 3-4)."""

import pytest

from repro.core.classification import Decision, DecisionLabel
from repro.core.gao_rexford import GaoRexfordEngine
from repro.core.geography import GeographyAnalysis, LabeledTrace
from repro.ipmap.geolocation import GeoDatabase
from repro.net.ip import IPAddress, Prefix
from repro.topogen.geography import City
from repro.topology import ASGraph, Relationship
from repro.topology.cables import Cable, CableRegistry
from repro.whois.registry import WhoisRecord, WhoisRegistry

PFX = Prefix.parse("198.51.100.0/24")

NYC = City("New York", "US", "NA", 40.7, -74.0)
CHI = City("Chicago", "US", "NA", 41.9, -87.6)
LON = City("London", "GB", "EU", 51.5, -0.1)
PAR = City("Paris", "FR", "EU", 48.9, 2.4)

IP_NYC = IPAddress.parse("10.0.0.1")
IP_CHI = IPAddress.parse("10.0.0.2")
IP_LON = IPAddress.parse("10.0.0.3")
IP_PAR = IPAddress.parse("10.0.0.4")


def _geo():
    geo = GeoDatabase()
    geo.add(IP_NYC, NYC)
    geo.add(IP_CHI, CHI)
    geo.add(IP_LON, LON)
    geo.add(IP_PAR, PAR)
    return geo


def _whois(countries):
    registry = WhoisRegistry()
    for asn, country in countries.items():
        registry.add(WhoisRecord(asn=asn, country=country))
    return registry


def _decision(asn, next_hop, destination=9, measured_len=2, source_asn=1):
    return Decision(
        asn=asn,
        next_hop=next_hop,
        destination=destination,
        prefix=PFX,
        measured_len=measured_len,
        source_asn=source_asn,
    )


def _analysis(graph=None, countries=None, cables=None):
    graph = graph or ASGraph()
    if 9 not in graph:
        graph.add_link(1, 9, Relationship.CUSTOMER)
    return GeographyAnalysis(
        _geo(),
        _whois(countries or {}),
        cables or CableRegistry(),
        GaoRexfordEngine(graph),
    )


class TestTraceGeography:
    def test_trace_continent_single(self):
        analysis = _analysis()
        trace = LabeledTrace(decisions=[], hop_ips=[IP_NYC, IP_CHI], source_continent="NA")
        assert analysis.trace_continent(trace) == "NA"

    def test_trace_continent_mixed_is_none(self):
        analysis = _analysis()
        trace = LabeledTrace(decisions=[], hop_ips=[IP_NYC, IP_LON], source_continent="NA")
        assert analysis.trace_continent(trace) is None

    def test_unknown_hops_ignored(self):
        analysis = _analysis()
        unknown = IPAddress.parse("172.16.0.1")
        trace = LabeledTrace(decisions=[], hop_ips=[IP_NYC, unknown], source_continent="NA")
        assert analysis.trace_continent(trace) == "NA"

    def test_trace_country(self):
        analysis = _analysis()
        domestic = LabeledTrace(decisions=[], hop_ips=[IP_NYC, IP_CHI], source_continent="NA")
        crossing = LabeledTrace(decisions=[], hop_ips=[IP_LON, IP_PAR], source_continent="EU")
        assert analysis.trace_country(domestic) == "US"
        assert analysis.trace_country(crossing) is None


class TestContinentalBreakdown:
    def test_buckets(self):
        analysis = _analysis()
        continental = LabeledTrace(
            decisions=[(_decision(1, 9), DecisionLabel.BEST_SHORT)],
            hop_ips=[IP_NYC, IP_CHI],
            source_continent="NA",
        )
        crossing = LabeledTrace(
            decisions=[(_decision(1, 9), DecisionLabel.BEST_LONG)],
            hop_ips=[IP_NYC, IP_LON],
            source_continent="NA",
        )
        breakdown = analysis.continental_breakdown([continental, crossing])
        assert breakdown.continental.total() == 1
        assert breakdown.intercontinental.total() == 1
        assert breakdown.per_continent["NA"].total() == 1
        assert breakdown.continental_trace_fraction() == pytest.approx(0.5)


class TestDomesticRows:
    def test_explained_when_model_goes_abroad(self):
        # Measured: 1 -> 2 -> 9 all US; model prefers 1 -> 5 -> 9 where
        # 5 is registered in GB.
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PROVIDER)   # 2 is 1's provider
        graph.add_link(2, 3, Relationship.PROVIDER)
        graph.add_link(3, 9, Relationship.CUSTOMER)
        graph.add_link(1, 5, Relationship.PROVIDER)
        graph.add_link(5, 9, Relationship.CUSTOMER)
        countries = {1: "US", 2: "US", 3: "US", 5: "GB", 9: "US"}
        analysis = _analysis(graph=graph, countries=countries)
        violation = _decision(1, 2, destination=9, measured_len=3)
        trace = LabeledTrace(
            decisions=[(violation, DecisionLabel.BEST_LONG)],
            hop_ips=[IP_NYC, IP_CHI],
            source_continent="NA",
        )
        rows = {row.continent: row for row in analysis.domestic_rows([trace])}
        assert rows["NA"].violations == 1
        assert rows["NA"].explained == 1
        assert analysis.domestic_explained_fraction([trace]) == pytest.approx(1.0)

    def test_not_explained_when_model_stays_domestic(self):
        graph = ASGraph()
        graph.add_link(1, 2, Relationship.PROVIDER)
        graph.add_link(2, 9, Relationship.CUSTOMER)
        countries = {1: "US", 2: "US", 9: "US"}
        analysis = _analysis(graph=graph, countries=countries)
        violation = _decision(1, 2, destination=9, measured_len=5)
        trace = LabeledTrace(
            decisions=[(violation, DecisionLabel.BEST_LONG)],
            hop_ips=[IP_NYC, IP_CHI],
            source_continent="NA",
        )
        rows = {row.continent: row for row in analysis.domestic_rows([trace])}
        assert rows["NA"].violations == 1
        assert rows["NA"].explained == 0

    def test_multicountry_traces_skipped(self):
        analysis = _analysis(countries={1: "US", 9: "US"})
        trace = LabeledTrace(
            decisions=[(_decision(1, 9), DecisionLabel.BEST_LONG)],
            hop_ips=[IP_NYC, IP_LON],
            source_continent="NA",
        )
        rows = analysis.domestic_rows([trace])
        assert all(row.violations == 0 for row in rows)


class TestCableSummary:
    def test_attribution(self):
        cables = CableRegistry(
            [Cable("C1", frozenset({"US", "GB"}), operator_asn=77)]
        )
        analysis = _analysis(cables=cables)
        via_cable = LabeledTrace(
            decisions=[
                (_decision(1, 77), DecisionLabel.NONBEST_LONG),
                (_decision(77, 9), DecisionLabel.BEST_SHORT),
            ],
            hop_ips=[IP_NYC, IP_LON],
            source_continent="NA",
        )
        clean = LabeledTrace(
            decisions=[(_decision(1, 9), DecisionLabel.BEST_SHORT)],
            hop_ips=[IP_NYC, IP_CHI],
            source_continent="NA",
        )
        summary = analysis.cable_summary([via_cable, clean])
        assert summary.paths_total == 2
        assert summary.paths_with_cables == 1
        assert summary.cable_decisions == 2
        assert summary.cable_decisions_deviating == 1
        assert summary.deviating_fraction == pytest.approx(0.5)
        rows = {row.label: row for row in summary.rows}
        assert rows[DecisionLabel.NONBEST_LONG].involving_cables == 1
        assert rows[DecisionLabel.NONBEST_LONG].percent == pytest.approx(100.0)

    def test_empty_traces(self):
        analysis = _analysis()
        summary = analysis.cable_summary([])
        assert summary.paths_total == 0
        assert summary.path_fraction == 0.0
        assert summary.deviating_fraction == 0.0
