"""Tests for the path-prediction API."""

import pytest

from repro.core.prediction import PathPredictor, evaluate_predictions
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship

P1 = Prefix.parse("198.51.100.0/24")


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


@pytest.fixture
def predictor():
    graph = _graph(
        (1, 2, Relationship.CUSTOMER),
        (2, 9, Relationship.CUSTOMER),
        (1, 3, Relationship.PEER),
        (3, 9, Relationship.CUSTOMER),
    )
    return PathPredictor.from_graph(graph)


class TestPathPredictor:
    def test_predicts_customer_path(self, predictor):
        assert predictor.predict(1, 9) == (1, 2, 9)
        assert predictor.predict_length(1, 9) == 2

    def test_unreachable_returns_none(self, predictor):
        predictor.engine.graph.ensure_asn(42)
        assert predictor.predict(42, 9) is None
        assert predictor.predict_length(42, 9) is None

    def test_psp_restriction_changes_prediction(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 9, Relationship.CUSTOMER),
            (1, 3, Relationship.CUSTOMER),
            (3, 4, Relationship.CUSTOMER),
            (4, 9, Relationship.CUSTOMER),
        )
        predictor = PathPredictor(
            engine=__import__("repro.core.gao_rexford", fromlist=["GaoRexfordEngine"]).GaoRexfordEngine(graph),
            first_hops={P1: frozenset({4})},
        )
        assert predictor.predict(1, 9) == (1, 2, 9)
        assert predictor.predict(1, 9, prefix=P1) == (1, 3, 4, 9)


class TestEvaluation:
    def test_exact_match_scores(self, predictor):
        measured = [(1, 2, 9)]
        score = evaluate_predictions(predictor, measured)
        assert score.pairs == 1
        assert score.coverage == 1.0
        assert score.exact_match_rate == 1.0
        assert score.first_hop_accuracy == 1.0
        assert score.mean_length_error == 0.0

    def test_mismatch_scores(self, predictor):
        # Measured uses the peer detour; predictor says customer path.
        measured = [(1, 3, 9)]
        score = evaluate_predictions(predictor, measured)
        assert score.exact_match_rate == 0.0
        assert score.first_hop_accuracy == 0.0
        assert score.mean_length_error == 0.0  # same length

    def test_length_error(self, predictor):
        measured = [(1, 3, 5, 6, 9)]
        score = evaluate_predictions(predictor, measured)
        assert score.mean_length_error == 2.0

    def test_uncovered_pairs(self, predictor):
        predictor.engine.graph.ensure_asn(42)
        score = evaluate_predictions(predictor, [(42, 9)])
        assert score.pairs == 1
        assert score.coverage == 0.0
        assert score.exact_match_rate == 0.0

    def test_trivial_paths_skipped(self, predictor):
        score = evaluate_predictions(predictor, [(9,)])
        assert score.pairs == 0

    def test_empty(self, predictor):
        score = evaluate_predictions(predictor, [])
        assert score.pairs == 0
        assert score.coverage == 0.0
