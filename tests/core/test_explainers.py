"""Tests for per-decision violation attribution."""

import pytest

from repro.core.classification import Decision, DecisionLabel
from repro.core.explainers import (
    AttributionReport,
    Explanation,
    ViolationExplainer,
)
from repro.core.gao_rexford import GaoRexfordEngine
from repro.core.geography import GeographyAnalysis, LabeledTrace
from repro.ipmap.geolocation import GeoDatabase
from repro.net.ip import IPAddress, Prefix
from repro.topogen.geography import City
from repro.topology import ASGraph, Relationship
from repro.topology.cables import Cable, CableRegistry
from repro.topology.complex_rel import ComplexRelationships, HybridEntry
from repro.whois.registry import WhoisRecord, WhoisRegistry
from repro.whois.siblings import SiblingGroups

PFX = Prefix.parse("198.51.100.0/24")


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


def _decision(asn, next_hop, destination=9, measured_len=2, **kw):
    return Decision(
        asn=asn,
        next_hop=next_hop,
        destination=destination,
        prefix=PFX,
        measured_len=measured_len,
        source_asn=kw.pop("source_asn", asn),
        **kw,
    )


@pytest.fixture
def diamond():
    """AS1: customer route via 2, peer route via 3 (same length)."""
    return _graph(
        (1, 2, Relationship.CUSTOMER),
        (2, 9, Relationship.CUSTOMER),
        (1, 3, Relationship.PEER),
        (3, 9, Relationship.CUSTOMER),
    )


class TestExplanations:
    def test_consistent_decision(self, diamond):
        explainer = ViolationExplainer(engine_simple=GaoRexfordEngine(diamond))
        assert explainer.explain(_decision(1, 2)) is Explanation.CONSISTENT

    def test_unexplained_without_factors(self, diamond):
        explainer = ViolationExplainer(engine_simple=GaoRexfordEngine(diamond))
        assert explainer.explain(_decision(1, 3)) is Explanation.UNEXPLAINED

    def test_sibling_explanation(self, diamond):
        explainer = ViolationExplainer(
            engine_simple=GaoRexfordEngine(diamond),
            siblings=SiblingGroups([frozenset({1, 3})]),
        )
        assert explainer.explain(_decision(1, 3)) is Explanation.SIBLING

    def test_complex_explanation_wins_over_sibling(self, diamond):
        dataset = ComplexRelationships(
            hybrid=[HybridEntry(1, 3, "Paris", Relationship.CUSTOMER)]
        )
        explainer = ViolationExplainer(
            engine_simple=GaoRexfordEngine(diamond),
            engine_complex=GaoRexfordEngine(diamond),
            complex_rel=dataset,
            siblings=SiblingGroups([frozenset({1, 3})]),
        )
        decision = _decision(1, 3, border_city="Paris")
        assert explainer.explain(decision) is Explanation.COMPLEX

    def test_psp_explanation(self, diamond):
        explainer = ViolationExplainer(
            engine_simple=GaoRexfordEngine(diamond),
            first_hops_1={PFX: frozenset({3})},
        )
        # Customer 2 never receives the prefix, so the peer route via 3
        # is the best the model can offer.
        assert explainer.explain(_decision(1, 3)) is Explanation.PSP_1

    def test_psp2_only_checked_when_different(self, diamond):
        explainer = ViolationExplainer(
            engine_simple=GaoRexfordEngine(diamond),
            first_hops_1={PFX: frozenset({2, 3})},  # does not fix it
            first_hops_2={PFX: frozenset({3})},     # does
        )
        assert explainer.explain(_decision(1, 3)) is Explanation.PSP_2

    def test_cable_explanation(self):
        graph = _graph(
            (1, 9, Relationship.PEER),        # mislabel makes this NonBest
            (1, 77, Relationship.PEER),
            (77, 9, Relationship.CUSTOMER),
        )
        cables = CableRegistry(
            [Cable("C", frozenset({"US", "JP"}), operator_asn=77)]
        )
        explainer = ViolationExplainer(
            engine_simple=GaoRexfordEngine(graph), cables=cables
        )
        # Decision via the cable AS that grades as a violation.
        decision = _decision(1, 77, destination=9, measured_len=3)
        assert explainer.explain(decision) is Explanation.CABLE

    def test_domestic_explanation(self):
        graph = _graph(
            (1, 2, Relationship.PROVIDER),
            (2, 3, Relationship.PROVIDER),
            (3, 9, Relationship.CUSTOMER),
            (1, 5, Relationship.PROVIDER),
            (5, 9, Relationship.CUSTOMER),
        )
        whois = WhoisRegistry()
        for asn, country in {1: "US", 2: "US", 3: "US", 5: "GB", 9: "US"}.items():
            whois.add(WhoisRecord(asn=asn, country=country))
        geo = GeoDatabase()
        nyc = City("New York", "US", "NA", 40.7, -74.0)
        ip = IPAddress.parse("10.0.0.1")
        geo.add(ip, nyc)
        engine = GaoRexfordEngine(graph)
        geography = GeographyAnalysis(geo, whois, CableRegistry(), engine)
        explainer = ViolationExplainer(engine_simple=engine, geography=geography)
        decision = _decision(1, 2, destination=9, measured_len=3)
        trace = LabeledTrace(
            decisions=[(decision, DecisionLabel.BEST_LONG)],
            hop_ips=[ip],
            source_continent="NA",
        )
        assert explainer.explain(decision, trace) is Explanation.DOMESTIC


class TestAttributionReport:
    def test_counters(self):
        report = AttributionReport()
        report.add(Explanation.CONSISTENT)
        report.add(Explanation.SIBLING)
        report.add(Explanation.UNEXPLAINED)
        assert report.total() == 3
        assert report.violations() == 2
        assert report.explained() == 1
        assert report.explained_fraction() == pytest.approx(0.5)
        assert report.percent_of_violations(Explanation.SIBLING) == pytest.approx(50.0)
        assert report.percent_of_violations(Explanation.CONSISTENT) == 0.0

    def test_attribute_traces(self, diamond):
        explainer = ViolationExplainer(
            engine_simple=GaoRexfordEngine(diamond),
            siblings=SiblingGroups([frozenset({1, 3})]),
        )
        trace = LabeledTrace(
            decisions=[
                (_decision(1, 2), DecisionLabel.BEST_SHORT),
                (_decision(1, 3), DecisionLabel.NONBEST_SHORT),
            ],
            hop_ips=[],
            source_continent="NA",
        )
        report = explainer.attribute([trace])
        assert report.counts[Explanation.CONSISTENT] == 1
        assert report.counts[Explanation.SIBLING] == 1
