"""The array backend must be indistinguishable from the dict reference.

The hot path (CSR compilation, batched tree kernel, lazy RoutingInfo
wrappers, vectorized arena grading) is a pure optimization: for every
graph, restriction, partial-transit set, and decision batch it must
produce exactly the distances, labels, counts, and cache-statistics of
the dict backend — which these tests drive side by side.
"""

import os
import pickle
import random

import numpy as np
import pytest

from repro.core.classification import (
    Decision,
    LayerConfig,
    classify_decisions,
    label_decisions,
)
from repro.core.gao_rexford import (
    BACKEND_ENV,
    BACKENDS,
    GaoRexfordEngine,
    compute_routing_info,
)
from repro.core.hotpath import (
    ArrayRoutingInfo,
    compile_topology,
    compute_tree_batch,
)
from repro.core.hotpath.csr import RANK_MISSING
from repro.net.ip import Prefix
from repro.perf.parallel import ParallelClassifier
from repro.topology import ASGraph, Relationship
from repro.topology.complex_rel import ComplexRelationships, HybridEntry
from repro.whois.siblings import SiblingGroups

pytestmark = pytest.mark.tier1

PFX = Prefix.parse("198.51.100.0/24")

RELS = [
    Relationship.PROVIDER,
    Relationship.PEER,
    Relationship.CUSTOMER,
    Relationship.SIBLING,
]


def _random_graph(rng, size=None):
    graph = ASGraph()
    count = size or rng.randint(3, 30)
    asns = [100 + i for i in range(count)]
    for asn in asns:
        graph.ensure_asn(asn)
    for _ in range(rng.randint(count, count * 3)):
        a, b = rng.sample(asns, 2)
        graph.add_link(a, b, rng.choice(RELS))
    return graph, asns


def _diamond_graph():
    """1 buys transit from 2 and 3, which peer; 4 provides to both."""
    graph = ASGraph()
    graph.add_link(1, 2, Relationship.PROVIDER)
    graph.add_link(1, 3, Relationship.PROVIDER)
    graph.add_link(2, 3, Relationship.PEER)
    graph.add_link(2, 4, Relationship.PROVIDER)
    graph.add_link(3, 4, Relationship.PROVIDER)
    return graph


class TestCSRTopology:
    def test_ids_are_sorted_asns(self):
        graph, asns = _random_graph(random.Random(1))
        csr = compile_topology(graph)
        assert list(csr.ids) == sorted(graph.asns())
        for asn in asns:
            assert int(csr.ids[csr.id_of(asn)]) == asn
        assert csr.id_of(999999) == -1

    def test_ids_of_vectorized_matches_id_of(self):
        graph, asns = _random_graph(random.Random(2))
        csr = compile_topology(graph)
        probe = np.asarray(asns + [999999, -5], dtype=np.int64)
        got = csr.ids_of(probe)
        assert [int(x) for x in got] == [csr.id_of(int(a)) for a in probe]

    def test_edge_partitions_match_adjacency(self):
        graph, _asns = _random_graph(random.Random(3))
        csr = compile_topology(graph)
        adjacency = graph.routing_adjacency()
        for edges, reference in (
            (csr.up, adjacency.up),
            (csr.peers, adjacency.peers),
            (csr.down, adjacency.down),
        ):
            got = set()
            for s, d in zip(edges.src, edges.dst):
                got.add((int(csr.ids[s]), int(csr.ids[d])))
            want = {
                (asn, neighbor)
                for asn, neighbors in reference.items()
                for neighbor in neighbors
            }
            assert got == want

    def test_rel_ranks_match_graph_relationship(self):
        graph, asns = _random_graph(random.Random(4))
        csr = compile_topology(graph)
        rng = random.Random(5)
        pairs = [tuple(rng.sample(asns, 2)) for _ in range(50)]
        pairs.append((asns[0], asns[0]))
        src = csr.ids_of(np.asarray([a for a, _ in pairs], dtype=np.int64))
        dst = csr.ids_of(np.asarray([b for _, b in pairs], dtype=np.int64))
        ranks = csr.rel_ranks(src, dst)
        for (a, b), rank in zip(pairs, ranks):
            rel = graph.relationship(a, b)
            want = RANK_MISSING if rel is None else rel.rank()
            assert int(rank) == want

    def test_compilation_cached_until_graph_mutates(self):
        graph, asns = _random_graph(random.Random(6))
        first = compile_topology(graph)
        assert compile_topology(graph) is first
        graph.add_link(max(asns) + 1, asns[0], Relationship.CUSTOMER)
        rebuilt = compile_topology(graph)
        assert rebuilt is not first
        assert rebuilt.n == first.n + 1


class TestKernelVsReference:
    @pytest.mark.parametrize("trial", range(8))
    def test_distances_match_dict_reference(self, trial):
        rng = random.Random(40 + trial)
        graph, asns = _random_graph(rng)
        csr = compile_topology(graph)

        partial = frozenset()
        if trial % 2:
            partial = frozenset(
                tuple(rng.sample(asns, 2)) for _ in range(rng.randint(1, 3))
            )
        keys = []
        for _ in range(rng.randint(1, 8)):
            dest = rng.choice(asns)
            allowed = None
            if rng.random() < 0.5:
                allowed = frozenset(rng.sample(asns, rng.randint(1, len(asns))))
            keys.append((dest, allowed))

        batch = compute_tree_batch(
            csr,
            [csr.id_of(dest) for dest, _ in keys],
            [csr.allowed_mask(allowed) for _, allowed in keys],
            csr.partial_mask(partial),
        )
        for j, (dest, allowed) in enumerate(keys):
            reference = compute_routing_info(
                graph, dest, partial_transit=partial, allowed_first_hops=allowed
            )
            info = ArrayRoutingInfo(dest, csr.ids, *batch.row(j))
            assert info.customer_dist == reference.customer_dist
            assert info.peer_dist == reference.peer_dist
            assert info.provider_dist == reference.provider_dist

    def test_empty_batch_and_unknown_destination(self):
        graph = _diamond_graph()
        csr = compile_topology(graph)
        batch = compute_tree_batch(csr, [], [])
        assert batch.customer.shape == (0, csr.n)
        engine = GaoRexfordEngine(graph, backend="array")
        with pytest.raises(KeyError):
            engine.routing_info(999999, None)


class TestArrayRoutingInfo:
    def _pair(self, destination=4, allowed=None):
        graph = _diamond_graph()
        array_info = GaoRexfordEngine(graph, backend="array").routing_info(
            destination, allowed
        )
        dict_info = GaoRexfordEngine(graph, backend="dict").routing_info(
            destination, allowed
        )
        return graph, array_info, dict_info

    def test_routing_info_surface_matches_dict(self):
        graph, array_info, dict_info = self._pair()
        for asn in graph.asns():
            assert array_info.best_class(asn) == dict_info.best_class(asn)
            assert array_info.has_route(asn) == dict_info.has_route(asn)
            assert array_info.gr_route_length(asn) == dict_info.gr_route_length(
                asn
            )

    def test_path_reconstruction_is_valid(self):
        graph, array_info, _dict_info = self._pair()
        for asn in graph.asns():
            length = array_info.gr_route_length(asn)
            if length is None:
                assert array_info.gr_route_path(asn) is None
                continue
            path = array_info.gr_route_path(asn)
            assert path is not None
            assert len(path) - 1 == length
            assert path[0] == asn and path[-1] == 4
            for hop, nxt in zip(path, path[1:]):
                assert graph.has_link(hop, nxt)

    def test_wrapper_is_picklable(self):
        _graph, array_info, dict_info = self._pair()
        clone = pickle.loads(pickle.dumps(array_info))
        assert clone.customer_dist == dict_info.customer_dist
        assert clone.peer_dist == dict_info.peer_dist
        assert clone.provider_dist == dict_info.provider_dist


class TestBackendSeam:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            GaoRexfordEngine(_diamond_graph(), backend="simd")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "array")
        assert GaoRexfordEngine(_diamond_graph()).backend == "array"
        monkeypatch.delenv(BACKEND_ENV)
        assert GaoRexfordEngine(_diamond_graph()).backend == "dict"
        assert "dict" in BACKENDS and "array" in BACKENDS

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "array")
        assert GaoRexfordEngine(_diamond_graph(), backend="dict").backend == "dict"

    def test_warm_batch_stats_match_dict_accounting(self):
        graph = _diamond_graph()
        keys = [(4, None), (1, None), (4, None), (2, frozenset({1, 3}))]
        engines = {
            backend: GaoRexfordEngine(graph, backend=backend)
            for backend in BACKENDS
        }
        computed = {
            backend: engine.warm_batch(keys)
            for backend, engine in engines.items()
        }
        assert computed["dict"] == computed["array"] == 3  # one duplicate
        stats = {b: e.cache_stats() for b, e in engines.items()}
        assert stats["dict"].as_dict() == stats["array"].as_dict()
        # Second warm finds everything cached and charges nothing.
        for backend, engine in engines.items():
            assert engine.warm_batch(keys) == 0
            assert engine.cache_stats().as_dict() == stats[backend].as_dict()


def _random_decisions(rng, asns, count=80):
    decisions = []
    for _ in range(count):
        asn = rng.choice(asns)
        decisions.append(
            Decision(
                asn=asn,
                next_hop=rng.choice(asns + [999999]),
                destination=rng.choice(asns),
                prefix=PFX,
                measured_len=rng.randint(1, 6),
                source_asn=asn,
                border_city=rng.choice([None, "nyc", "lon"]),
            )
        )
    return decisions


class TestArrayGrading:
    def _world(self, seed):
        rng = random.Random(seed)
        graph, asns = _random_graph(rng, size=16)
        complex_rel = ComplexRelationships()
        for _ in range(2):
            a, b = rng.sample(asns, 2)
            if graph.relationship(a, b) is not None:
                complex_rel.add_hybrid(
                    HybridEntry(a, b, "nyc", rng.choice(RELS[:3]))
                )
        siblings = SiblingGroups([frozenset(rng.sample(asns, 3))])
        first_hops = {
            PFX: frozenset(rng.sample(asns, rng.randint(1, len(asns))))
        }
        decisions = _random_decisions(rng, asns)
        return graph, complex_rel, siblings, first_hops, decisions

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_classify_and_label_match_dict(self, seed):
        graph, complex_rel, siblings, first_hops, decisions = self._world(seed)
        results = {}
        for backend in BACKENDS:
            engine = GaoRexfordEngine(graph, backend=backend)
            results[backend] = (
                classify_decisions(
                    decisions,
                    engine,
                    first_hops_for=first_hops,
                    complex_rel=complex_rel,
                    siblings=siblings,
                ).counts,
                [
                    label
                    for _d, label in label_decisions(
                        decisions,
                        engine,
                        first_hops_for=first_hops,
                        complex_rel=complex_rel,
                        siblings=siblings,
                    )
                ],
            )
        assert results["array"] == results["dict"]

    def test_parallel_classifier_all_array_layers(self):
        graph, complex_rel, siblings, first_hops, decisions = self._world(21)
        layer_sets = {}
        for backend in BACKENDS:
            engine = GaoRexfordEngine(graph, backend=backend)
            layers = {
                "Simple": LayerConfig(engine=engine),
                "Refined": LayerConfig(
                    engine=engine,
                    first_hops_for=first_hops,
                    complex_rel=complex_rel,
                    siblings=siblings,
                ),
            }
            classifier = ParallelClassifier(workers=0)
            counts = classifier.classify_layers(decisions, layers)
            layer_sets[backend] = (
                {name: c.counts for name, c in counts.items()},
                classifier.last_layer_cache_stats,
            )
        array_counts, array_stats = layer_sets["array"]
        dict_counts, dict_stats = layer_sets["dict"]
        assert array_counts == dict_counts
        assert array_stats == dict_stats

    def test_parallel_classifier_label_layer_array(self):
        graph, complex_rel, siblings, first_hops, decisions = self._world(22)
        labels = {}
        for backend in BACKENDS:
            engine = GaoRexfordEngine(graph, backend=backend)
            layer = LayerConfig(
                engine=engine,
                first_hops_for=first_hops,
                complex_rel=complex_rel,
                siblings=siblings,
            )
            classifier = ParallelClassifier(workers=0)
            labels[backend] = [
                label for _d, label in classifier.label_layer(decisions, layer)
            ]
        assert labels["array"] == labels["dict"]


class TestGoldenFigure1:
    @pytest.mark.golden
    def test_array_backend_reproduces_blessed_figure1(self, study):
        """The golden gate, through the array backend end to end."""
        import json

        golden_file = os.path.join(
            os.path.dirname(os.path.dirname(__file__)),
            "golden",
            "study_quick_seed0.json",
        )
        with open(golden_file, "r", encoding="utf-8") as handle:
            blessed = json.load(handle)["figure1"]

        from repro.core.pipeline import figure1_layer_configs

        partial = study.engine_complex.partial_transit
        engine_simple = GaoRexfordEngine(study.inferred, backend="array")
        engine_complex = GaoRexfordEngine(
            study.inferred, partial_transit=partial, backend="array"
        )
        layers = figure1_layer_configs(
            engine_simple,
            engine_complex,
            known_complex=study.known_complex,
            siblings=study.siblings,
            first_hops_1=study.first_hops_1,
            first_hops_2=study.first_hops_2,
        )
        figure1 = ParallelClassifier(workers=0).classify_layers(
            study.decisions, layers
        )
        got = {
            name: {label.value: n for label, n in counts.counts.items()}
            for name, counts in figure1.items()
        }
        assert got == blessed
