"""Tests for the Best/Short decision classification."""

import pytest

from repro.core.classification import (
    Decision,
    DecisionLabel,
    LabelCounts,
    classify_decision,
    classify_decisions,
    label_decisions,
)
from repro.core.gao_rexford import GaoRexfordEngine
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship
from repro.topology.complex_rel import ComplexRelationships, HybridEntry
from repro.whois.siblings import SiblingGroups

PFX = Prefix.parse("198.51.100.0/24")


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


def _decision(asn, next_hop, destination, measured_len, **kwargs):
    return Decision(
        asn=asn,
        next_hop=next_hop,
        destination=destination,
        prefix=PFX,
        measured_len=measured_len,
        source_asn=kwargs.pop("source_asn", asn),
        **kwargs,
    )


@pytest.fixture
def diamond():
    """AS1 can reach 9 via customer 2 (len 2) or via peer 3 (len 2)."""
    return _graph(
        (1, 2, Relationship.CUSTOMER),
        (2, 9, Relationship.CUSTOMER),
        (1, 3, Relationship.PEER),
        (3, 9, Relationship.CUSTOMER),
    )


class TestLabels:
    def test_best_short(self, diamond):
        engine = GaoRexfordEngine(diamond)
        decision = _decision(1, 2, 9, measured_len=2)
        assert classify_decision(decision, engine) is DecisionLabel.BEST_SHORT

    def test_nonbest_short(self, diamond):
        engine = GaoRexfordEngine(diamond)
        # Peer next hop while a customer route of the same length exists.
        decision = _decision(1, 3, 9, measured_len=2)
        assert classify_decision(decision, engine) is DecisionLabel.NONBEST_SHORT

    def test_best_long(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 9, Relationship.CUSTOMER),
            (1, 4, Relationship.CUSTOMER),
            (4, 5, Relationship.CUSTOMER),
            (5, 9, Relationship.CUSTOMER),
        )
        engine = GaoRexfordEngine(graph)
        decision = _decision(1, 4, 9, measured_len=3)
        assert classify_decision(decision, engine) is DecisionLabel.BEST_LONG

    def test_nonbest_long(self, diamond):
        engine = GaoRexfordEngine(diamond)
        decision = _decision(1, 3, 9, measured_len=4)
        assert classify_decision(decision, engine) is DecisionLabel.NONBEST_LONG

    def test_missing_adjacency_is_nonbest(self, diamond):
        engine = GaoRexfordEngine(diamond)
        # AS1 -> AS7 is not in the inferred topology at all.
        decision = _decision(1, 7, 9, measured_len=2)
        label = classify_decision(decision, engine)
        assert label is DecisionLabel.NONBEST_SHORT

    def test_shorter_than_model_counts_as_short(self, diamond):
        engine = GaoRexfordEngine(diamond)
        decision = _decision(1, 2, 9, measured_len=1)
        assert classify_decision(decision, engine) is DecisionLabel.BEST_SHORT

    def test_no_model_route_grades_best_short(self, diamond):
        """With no model route at all, any real choice beats the model."""
        engine = GaoRexfordEngine(diamond)
        # An empty first-hop set (aggressive PSP with zero visibility of
        # a still-reachable prefix) leaves the model with no route.
        decision = _decision(1, 2, 9, measured_len=2)
        label = classify_decision(
            decision, engine, allowed_first_hops=frozenset()
        )
        assert label is DecisionLabel.BEST_SHORT

    def test_isolated_decider_with_unknown_link_is_nonbest(self, diamond):
        """A measured adjacency absent from the inferred topology can
        never be graded Best, even if the model has no route either."""
        engine = GaoRexfordEngine(diamond)
        diamond.ensure_asn(8)
        decision = _decision(8, 1, 9, measured_len=3)
        assert classify_decision(decision, engine) is DecisionLabel.NONBEST_SHORT

    def test_violation_flag(self):
        assert not DecisionLabel.BEST_SHORT.is_violation
        for label in (
            DecisionLabel.NONBEST_SHORT,
            DecisionLabel.BEST_LONG,
            DecisionLabel.NONBEST_LONG,
        ):
            assert label.is_violation


class TestRefinementLayers:
    def test_sibling_marks_best(self, diamond):
        engine = GaoRexfordEngine(diamond)
        siblings = SiblingGroups([frozenset({1, 3})])
        decision = _decision(1, 3, 9, measured_len=2)
        assert (
            classify_decision(decision, engine, siblings=siblings)
            is DecisionLabel.BEST_SHORT
        )

    def test_hybrid_relationship_at_border_city(self, diamond):
        engine = GaoRexfordEngine(diamond)
        # In Frankfurt the 1-3 link actually behaves as 3 being 1's
        # customer, so the decision is Best there.
        dataset = ComplexRelationships(
            hybrid=[HybridEntry(1, 3, "Frankfurt", Relationship.CUSTOMER)]
        )
        at_fra = _decision(1, 3, 9, measured_len=2, border_city="Frankfurt")
        elsewhere = _decision(1, 3, 9, measured_len=2, border_city="Tokyo")
        assert (
            classify_decision(at_fra, engine, complex_rel=dataset)
            is DecisionLabel.BEST_SHORT
        )
        assert (
            classify_decision(elsewhere, engine, complex_rel=dataset)
            is DecisionLabel.NONBEST_SHORT
        )

    def test_psp_first_hop_restriction_fixes_long(self):
        graph = _graph(
            (2, 9, Relationship.CUSTOMER),   # short way into 9
            (3, 9, Relationship.CUSTOMER),
            (1, 2, Relationship.PEER),
            (1, 4, Relationship.CUSTOMER),
            (4, 3, Relationship.PEER),
        )
        engine = GaoRexfordEngine(graph)
        # Without PSP the model expects 1 -> 2 -> 9 (peer, len 2); the
        # measured path 1 -> 4 -> 3 -> 9 looks Long.
        decision = _decision(1, 4, 9, measured_len=3)
        assert classify_decision(decision, engine) is DecisionLabel.BEST_LONG
        # Criterion 1 reveals 9 only announces the prefix to 3.
        allowed = frozenset({3})
        assert (
            classify_decision(decision, engine, allowed_first_hops=allowed)
            is DecisionLabel.BEST_SHORT
        )

    def test_classify_decisions_batch_with_psp_map(self, diamond):
        engine = GaoRexfordEngine(diamond)
        decisions = [
            _decision(1, 2, 9, measured_len=2),
            _decision(1, 3, 9, measured_len=2),
        ]
        counts = classify_decisions(
            decisions, engine, first_hops_for={PFX: frozenset({2, 3})}
        )
        assert counts.total() == 2
        assert counts.counts[DecisionLabel.BEST_SHORT] == 1
        assert counts.counts[DecisionLabel.NONBEST_SHORT] == 1

    def test_label_decisions_keeps_pairs(self, diamond):
        engine = GaoRexfordEngine(diamond)
        decisions = [_decision(1, 2, 9, measured_len=2)]
        labeled = label_decisions(decisions, engine)
        assert labeled[0][0] is decisions[0]
        assert labeled[0][1] is DecisionLabel.BEST_SHORT


class TestLabelCounts:
    def test_percentages(self):
        counts = LabelCounts()
        counts.add(DecisionLabel.BEST_SHORT, 3)
        counts.add(DecisionLabel.BEST_LONG, 1)
        assert counts.total() == 4
        assert counts.percent(DecisionLabel.BEST_SHORT) == 75.0
        assert counts.violations() == 1

    def test_empty_fraction_is_zero(self):
        assert LabelCounts().fraction(DecisionLabel.BEST_SHORT) == 0.0

    def test_addition(self):
        a = LabelCounts()
        a.add(DecisionLabel.BEST_SHORT, 2)
        b = LabelCounts()
        b.add(DecisionLabel.BEST_SHORT, 1)
        b.add(DecisionLabel.NONBEST_LONG, 1)
        merged = a + b
        assert merged.counts[DecisionLabel.BEST_SHORT] == 3
        assert merged.total() == 4

    def test_as_percent_dict(self):
        counts = LabelCounts()
        counts.add(DecisionLabel.BEST_SHORT, 1)
        assert counts.as_percent_dict()["Best/Short"] == 100.0
