"""Tests for baseline models and the improved (corrected) model."""

import pytest

from repro.core.baselines import (
    GaoRexfordModel,
    NextHopOnlyModel,
    ShortestPathModel,
    evaluate_models,
)
from repro.core.classification import Decision
from repro.core.improved import ImprovedModel, corrected_topology
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship
from repro.topology.cables import Cable, CableRegistry
from repro.whois.siblings import SiblingGroups

PFX = Prefix.parse("198.51.100.0/24")


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


@pytest.fixture
def policy_world():
    """AS1 reaches 9 via customer chain (len 3) or direct peer (len 2)."""
    return _graph(
        (1, 2, Relationship.CUSTOMER),
        (2, 4, Relationship.CUSTOMER),
        (4, 9, Relationship.SIBLING),
        (1, 3, Relationship.PEER),
        (3, 9, Relationship.CUSTOMER),
    )


def _decision(asn, next_hop, destination, measured_len):
    return Decision(
        asn=asn,
        next_hop=next_hop,
        destination=destination,
        prefix=PFX,
        measured_len=measured_len,
        source_asn=asn,
    )


class TestShortestPathModel:
    def test_prefers_graph_shortest(self, policy_world):
        model = ShortestPathModel(policy_world)
        assert model.predicted_next_hops(1, 9) == frozenset({3})
        assert model.predicted_length(1, 9) == 2

    def test_unreachable(self):
        graph = _graph((1, 2, Relationship.PEER))
        graph.ensure_asn(9)
        model = ShortestPathModel(graph)
        assert model.predicted_next_hops(1, 9) == frozenset()
        assert model.predicted_length(1, 9) is None

    def test_destination_itself(self, policy_world):
        model = ShortestPathModel(policy_world)
        assert model.predicted_length(9, 9) == 0
        assert model.predicted_next_hops(9, 9) == frozenset()


class TestGaoRexfordModel:
    def test_prefers_customer_over_shorter_peer(self, policy_world):
        model = GaoRexfordModel(policy_world)
        assert model.predicted_next_hops(1, 9) == frozenset({2})
        assert model.predicted_length(1, 9) == 3

    def test_ties_return_multiple_next_hops(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (1, 3, Relationship.CUSTOMER),
            (2, 9, Relationship.CUSTOMER),
            (3, 9, Relationship.CUSTOMER),
        )
        model = GaoRexfordModel(graph)
        assert model.predicted_next_hops(1, 9) == frozenset({2, 3})

    def test_peer_neighbor_only_usable_with_customer_route(self):
        graph = _graph(
            (1, 2, Relationship.PEER),
            (3, 2, Relationship.CUSTOMER),   # 2's provider 3
            (3, 9, Relationship.CUSTOMER),
        )
        model = GaoRexfordModel(graph)
        # 2 reaches 9 via its provider, so it exports nothing to peer 1.
        assert model.predicted_next_hops(1, 9) == frozenset()


class TestNextHopOnlyModel:
    def test_ignores_length_within_class(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (1, 3, Relationship.CUSTOMER),
            (2, 9, Relationship.CUSTOMER),
            (3, 4, Relationship.CUSTOMER),
            (4, 9, Relationship.CUSTOMER),
        )
        gr = GaoRexfordModel(graph)
        nho = NextHopOnlyModel(graph)
        assert gr.predicted_next_hops(1, 9) == frozenset({2})
        assert nho.predicted_next_hops(1, 9) == frozenset({2, 3})


class TestEvaluation:
    def test_gr_beats_shortest_path_on_policy_decision(self, policy_world):
        decisions = [_decision(1, 2, 9, measured_len=3)]
        scores = {
            s.name: s
            for s in evaluate_models(
                [ShortestPathModel(policy_world), GaoRexfordModel(policy_world)],
                decisions,
            )
        }
        assert scores["gao-rexford"].next_hop_accuracy == 1.0
        assert scores["shortest-path"].next_hop_accuracy == 0.0
        assert scores["gao-rexford"].length_accuracy == 1.0

    def test_prediction_set_size_tracked(self, policy_world):
        decisions = [_decision(1, 2, 9, measured_len=3)]
        (score,) = evaluate_models([NextHopOnlyModel(policy_world)], decisions)
        assert score.mean_prediction_set_size >= 1.0

    def test_empty_decisions(self, policy_world):
        (score,) = evaluate_models([GaoRexfordModel(policy_world)], [])
        assert score.next_hop_accuracy == 0.0


class TestCorrectedTopology:
    def test_sibling_merge(self):
        inferred = _graph((1, 2, Relationship.CUSTOMER))
        siblings = SiblingGroups([frozenset({1, 2})])
        corrected = corrected_topology(inferred, siblings=siblings)
        assert corrected.relationship(1, 2) is Relationship.SIBLING

    def test_cable_relabel(self):
        inferred = _graph((1, 77, Relationship.PEER), (77, 2, Relationship.CUSTOMER))
        cables = CableRegistry(
            [Cable("C", frozenset({"US", "JP"}), operator_asn=77)]
        )
        corrected = corrected_topology(inferred, cables=cables)
        # The cable becomes the provider on both its links.
        assert corrected.relationship(77, 1) is Relationship.CUSTOMER
        assert corrected.relationship(77, 2) is Relationship.CUSTOMER

    def test_original_graph_untouched(self):
        inferred = _graph((1, 2, Relationship.CUSTOMER))
        siblings = SiblingGroups([frozenset({1, 2})])
        corrected_topology(inferred, siblings=siblings)
        assert inferred.relationship(1, 2) is Relationship.CUSTOMER


class TestImprovedModel:
    def test_improves_on_sibling_violations(self):
        # Measured: 1 routes via 2 (its org sibling) although the
        # inferred topology calls 2 a provider and offers a peer route.
        inferred = _graph(
            (2, 1, Relationship.CUSTOMER),   # inference: 2 provider of 1
            (2, 9, Relationship.CUSTOMER),
            (1, 3, Relationship.PEER),
            (3, 9, Relationship.CUSTOMER),
        )
        decisions = [_decision(1, 2, 9, measured_len=2)]
        from repro.core.classification import DecisionLabel
        from repro.core.gao_rexford import GaoRexfordEngine
        from repro.core.classification import classify_decisions

        plain = classify_decisions(decisions, GaoRexfordEngine(inferred))
        assert plain.counts[DecisionLabel.BEST_SHORT] == 0

        siblings = SiblingGroups([frozenset({1, 2})])
        improved = ImprovedModel.build(inferred, siblings=siblings)
        counts = improved.classify(decisions)
        assert counts.counts[DecisionLabel.BEST_SHORT] == 1

    def test_build_with_all_corrections(self, study):
        improved = ImprovedModel.build(
            study.inferred,
            siblings=study.siblings,
            cables=study.internet.cables,
            first_hops=study.first_hops_2,
        )
        counts = improved.classify(study.decisions)
        assert counts.total() == len(study.decisions)
        # The improved model should do at least as well as plain GR.
        from repro.core.classification import DecisionLabel

        assert counts.fraction(DecisionLabel.BEST_SHORT) >= study.figure1[
            "Simple"
        ].fraction(DecisionLabel.BEST_SHORT)
