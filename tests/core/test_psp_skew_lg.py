"""Tests for PSP criteria, violation skew, and looking-glass validation."""

import pytest

from repro.bgp import BGPSimulator, Policy
from repro.core.classification import Decision, DecisionLabel
from repro.core.looking_glass import LookingGlassDeployment, validate_psp_cases
from repro.core.psp import PrefixPolicyAnalysis, PSPCase, case_neighbor_count
from repro.core.skew import compute_skew
from repro.net.ip import Prefix
from repro.peering.collectors import FeedArchive, RouteCollector
from repro.topology import ASGraph, Relationship

P1 = Prefix.parse("198.51.100.0/24")
P2 = Prefix.parse("203.0.113.0/24")


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


@pytest.fixture
def selective_world():
    """Origin 9 with providers 2 and 3; P1 announced only to 3."""
    graph = _graph(
        (2, 9, Relationship.CUSTOMER),
        (3, 9, Relationship.CUSTOMER),
        (1, 2, Relationship.CUSTOMER),
        (1, 3, Relationship.CUSTOMER),
    )
    policies = {9: Policy(asn=9, selective_export={P1: frozenset({3})})}
    sim = BGPSimulator(graph, policies=policies)
    sim.originate(9, P1)
    sim.originate(9, P2)
    feeds = FeedArchive([RouteCollector(name="rv", peer_asns=(1, 2, 3))])
    feeds.record(sim, [P1, P2])
    return graph, sim, feeds


class TestPSPCriteria:
    def test_criterion1_prunes_unobserved_edge(self, selective_world):
        graph, _sim, feeds = selective_world
        psp = PrefixPolicyAnalysis(graph, feeds)
        allowed = psp.allowed_first_hops(P1, 9, criterion=1)
        assert allowed == frozenset({3})

    def test_criterion2_requires_other_prefix_evidence(self, selective_world):
        graph, _sim, feeds = selective_world
        psp = PrefixPolicyAnalysis(graph, feeds)
        # P2 is visible via 2, so the missing P1 via 2 is evidence of
        # selective announcement under criterion 2 as well.
        allowed = psp.allowed_first_hops(P1, 9, criterion=2)
        assert allowed == frozenset({3})

    def test_criterion2_spares_invisible_edges(self):
        graph = _graph(
            (2, 9, Relationship.CUSTOMER),
            (3, 9, Relationship.CUSTOMER),
        )
        sim = BGPSimulator(graph)
        sim.originate(9, P1)
        # Collector peers only with 3: edge 2-9 is invisible, not
        # selective.
        feeds = FeedArchive([RouteCollector(name="rv", peer_asns=(3,))])
        feeds.record(sim, [P1])
        psp = PrefixPolicyAnalysis(graph, feeds)
        assert psp.allowed_first_hops(P1, 9, criterion=1) == frozenset({3})
        assert psp.allowed_first_hops(P1, 9, criterion=2) == frozenset({2, 3})

    def test_unseen_prefix_returns_none(self, selective_world):
        graph, _sim, feeds = selective_world
        psp = PrefixPolicyAnalysis(graph, feeds)
        unseen = Prefix.parse("192.0.2.0/24")
        assert psp.allowed_first_hops(unseen, 9, criterion=1) is None

    def test_invalid_criterion_rejected(self, selective_world):
        graph, _sim, feeds = selective_world
        psp = PrefixPolicyAnalysis(graph, feeds)
        with pytest.raises(ValueError):
            psp.allowed_first_hops(P1, 9, criterion=3)

    def test_cases_enumerate_pruned_edges(self, selective_world):
        graph, _sim, feeds = selective_world
        psp = PrefixPolicyAnalysis(graph, feeds)
        cases = psp.cases({P1: 9, P2: 9}, criterion=1)
        assert len(cases) == 1
        assert cases[0].prefix == P1
        assert cases[0].pruned_neighbors == frozenset({2})
        assert case_neighbor_count(cases) == 1

    def test_first_hops_map_skips_invisible(self, selective_world):
        graph, _sim, feeds = selective_world
        psp = PrefixPolicyAnalysis(graph, feeds)
        unseen = Prefix.parse("192.0.2.0/24")
        result = psp.first_hops_map({P1: 9, unseen: 9}, criterion=1)
        assert P1 in result and unseen not in result


class TestSkew:
    def _decision(self, source, destination):
        return Decision(
            asn=source,
            next_hop=source + 1,
            destination=destination,
            prefix=P1,
            measured_len=2,
            source_asn=source,
        )

    def test_skew_counts_only_violations(self):
        labeled = [
            (self._decision(1, 100), DecisionLabel.BEST_SHORT),
            (self._decision(1, 100), DecisionLabel.BEST_LONG),
            (self._decision(2, 100), DecisionLabel.NONBEST_LONG),
            (self._decision(2, 200), DecisionLabel.NONBEST_SHORT),
        ]
        skew = compute_skew(labeled)
        assert skew.by_destination.total() == 3
        assert skew.by_destination.share_of(100) == pytest.approx(2 / 3)
        assert skew.by_source.top_share(1) == pytest.approx(2 / 3)

    def test_cumulative_fractions_monotone(self):
        labeled = [
            (self._decision(s, 100 + s % 3), DecisionLabel.BEST_LONG)
            for s in range(1, 20)
        ]
        skew = compute_skew(labeled)
        fractions = skew.by_source.cumulative_fractions()
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_empty_skew(self):
        skew = compute_skew([])
        assert skew.by_destination.total() == 0
        assert skew.by_destination.cumulative_fractions() == []
        assert skew.by_destination.gini_like_area() == 0.0

    def test_even_distribution_has_zero_area(self):
        labeled = [
            (self._decision(s, 100 + s), DecisionLabel.BEST_LONG)
            for s in range(1, 11)
        ]
        skew = compute_skew(labeled)
        assert skew.by_destination.gini_like_area() == pytest.approx(0.0)

    def test_label_filter(self):
        labeled = [
            (self._decision(1, 100), DecisionLabel.BEST_LONG),
            (self._decision(2, 100), DecisionLabel.NONBEST_SHORT),
        ]
        skew = compute_skew(labeled, labels=[DecisionLabel.BEST_LONG])
        assert skew.by_destination.total() == 1


class TestLookingGlass:
    def test_deployment_rate_bounds(self, selective_world):
        _graph_, sim, _feeds = selective_world
        with pytest.raises(ValueError):
            LookingGlassDeployment(sim, deployment_rate=1.5)
        everyone = LookingGlassDeployment(sim, deployment_rate=1.0)
        assert everyone.hosts == set(sim.graph.asns())
        nobody = LookingGlassDeployment(sim, deployment_rate=0.0)
        assert nobody.hosts == set()

    def test_query_requires_server(self, selective_world):
        _graph_, sim, _feeds = selective_world
        nobody = LookingGlassDeployment(sim, deployment_rate=0.0)
        with pytest.raises(LookupError):
            nobody.query(1, P1)

    def test_validation_confirms_true_psp(self, selective_world):
        graph, sim, feeds = selective_world
        psp = PrefixPolicyAnalysis(graph, feeds)
        cases = psp.cases({P1: 9, P2: 9}, criterion=1)
        looking_glasses = LookingGlassDeployment(sim, deployment_rate=1.0)
        validation = validate_psp_cases(cases, looking_glasses)
        # AS2 genuinely does not receive P1 from 9 directly.
        assert validation.checked == 1
        assert validation.confirmed == 1
        assert validation.precision == 1.0

    def test_validation_refutes_false_psp(self, selective_world):
        graph, sim, _feeds = selective_world
        # Fabricate a wrong inference: claims 3 does not get P2 from 9.
        bogus = PSPCase(
            origin=9, prefix=P2, pruned_neighbors=frozenset({3}), criterion=1
        )
        looking_glasses = LookingGlassDeployment(sim, deployment_rate=1.0)
        validation = validate_psp_cases([bogus], looking_glasses)
        assert validation.checked == 1
        assert validation.confirmed == 0

    def test_max_checks_cap(self, selective_world):
        graph, sim, feeds = selective_world
        psp = PrefixPolicyAnalysis(graph, feeds)
        cases = psp.cases({P1: 9, P2: 9}, criterion=1)
        looking_glasses = LookingGlassDeployment(sim, deployment_rate=1.0)
        validation = validate_psp_cases(cases, looking_glasses, max_checks=0)
        assert validation.checked == 0
        assert validation.precision == 0.0
