"""Routing-cache discipline: LRU bound, counters, key canonicalization.

The regression guarded here: PSP-layer classification used to grow the
engine cache once per prefix even when prefixes shared an identical
allowed-first-hop set, because each prefix carried its own frozenset
object.  Interned frozensets plus value-based cache keys keep the cache
bounded by the number of *distinct* restrictions.
"""

import pytest

from repro.core.classification import Decision, classify_decisions
from repro.core.gao_rexford import (
    DEFAULT_CACHE_SIZE,
    GaoRexfordEngine,
    RoutingCache,
)
from repro.core.psp import FrozenSetInterner
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship

pytestmark = pytest.mark.tier1


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


def _star_graph(center=9, leaves=range(1, 6)):
    """Destination ``center`` with several provider leaves."""
    graph = ASGraph()
    for leaf in leaves:
        graph.add_link(leaf, center, Relationship.CUSTOMER)
    return graph


class TestRoutingCache:
    def test_lru_evicts_oldest(self):
        cache = RoutingCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_get_refreshes_recency(self):
        cache = RoutingCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "a" is now most recent; "b" should evict next.
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_counters(self):
        cache = RoutingCache(maxsize=4)
        assert cache.get("missing") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.size == 1
        assert stats.maxsize == 4
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5

    def test_as_dict_round_trips(self):
        cache = RoutingCache(maxsize=3)
        cache.put("k", "v")
        cache.get("k")
        payload = cache.stats().as_dict()
        assert payload["hits"] == 1
        assert payload["size"] == 1
        assert payload["maxsize"] == 3

    def test_clear_resets_entries_not_counters(self):
        cache = RoutingCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert "a" not in cache
        assert cache.stats().size == 0
        assert cache.stats().hits == 1


class TestEngineCacheBound:
    def test_default_bound(self):
        engine = GaoRexfordEngine(_graph((1, 2, Relationship.CUSTOMER)))
        assert engine.cache_stats().maxsize == DEFAULT_CACHE_SIZE

    def test_cache_never_exceeds_bound(self):
        graph = _star_graph(center=99, leaves=range(1, 30))
        engine = GaoRexfordEngine(graph, cache_size=8)
        # Ask for more distinct trees than the cache can hold.
        for destination in range(1, 30):
            engine.routing_info(destination)
        stats = engine.cache_stats()
        assert stats.size <= 8
        assert stats.evictions == 29 - 8

    def test_evicted_tree_is_recomputed_consistently(self):
        graph = _star_graph(center=99, leaves=range(1, 10))
        engine = GaoRexfordEngine(graph, cache_size=2)
        first = engine.routing_info(9)
        for destination in range(1, 9):
            engine.routing_info(destination)
        again = engine.routing_info(9)
        assert again is not first  # was evicted
        assert again.customer_dist == first.customer_dist
        assert again.peer_dist == first.peer_dist
        assert again.provider_dist == first.provider_dist


class TestCanonicalKeys:
    def test_superset_restriction_maps_to_unrestricted(self):
        graph = _star_graph(leaves=range(1, 4))
        engine = GaoRexfordEngine(graph)
        assert engine.cache_key(9, frozenset({1, 2, 3})) == (9, None)
        assert engine.cache_key(9, frozenset({1, 2, 3, 77})) == (9, None)

    def test_proper_subset_keeps_its_key(self):
        graph = _star_graph(leaves=range(1, 4))
        engine = GaoRexfordEngine(graph)
        allowed = frozenset({1, 2})
        assert engine.cache_key(9, allowed) == (9, allowed)

    def test_canonicalization_can_be_disabled(self):
        graph = _star_graph(leaves=range(1, 4))
        engine = GaoRexfordEngine(graph, canonical_keys=False)
        allowed = frozenset({1, 2, 3})
        assert engine.cache_key(9, allowed) == (9, allowed)
        restricted = engine.routing_info(9, allowed_first_hops=allowed)
        assert restricted is not engine.routing_info(9)


class TestPSPCacheRegression:
    """Identical first-hop sets across prefixes must share cache entries."""

    PREFIXES = [Prefix.parse(f"10.{i}.0.0/16") for i in range(40)]

    def _decisions(self):
        return [
            Decision(
                asn=1,
                next_hop=9,
                destination=9,
                prefix=prefix,
                measured_len=1,
                source_asn=1,
            )
            for prefix in self.PREFIXES
        ]

    def test_psp_layer_does_not_grow_cache_per_prefix(self):
        graph = _star_graph(leaves=range(1, 4))
        engine = GaoRexfordEngine(graph)
        # Every prefix carries its own (but equal) frozenset, as the PSP
        # first-hop maps did before interning.
        first_hops = {prefix: frozenset({1, 2}) for prefix in self.PREFIXES}
        classify_decisions(self._decisions(), engine, first_hops_for=first_hops)
        stats = engine.cache_stats()
        assert stats.size == 1, (
            "one restricted tree expected, cache grew per-prefix: "
            f"{stats.size} entries"
        )

    def test_full_coverage_sets_share_the_unrestricted_tree(self):
        graph = _star_graph(leaves=range(1, 4))
        engine = GaoRexfordEngine(graph)
        unrestricted = engine.routing_info(9)
        first_hops = {prefix: frozenset({1, 2, 3}) for prefix in self.PREFIXES}
        classify_decisions(self._decisions(), engine, first_hops_for=first_hops)
        assert engine.cache_stats().size == 1
        assert engine.routing_info(9, frozenset({1, 2, 3})) is unrestricted


class TestFrozenSetInterner:
    def test_equal_sets_intern_to_one_object(self):
        interner = FrozenSetInterner()
        a = interner.intern(frozenset({1, 2, 3}))
        b = interner.intern(frozenset({3, 2, 1}))
        assert a is b
        assert len(interner) == 1

    def test_distinct_sets_stay_distinct(self):
        interner = FrozenSetInterner()
        a = interner.intern(frozenset({1}))
        b = interner.intern(frozenset({2}))
        assert a is not b
        assert len(interner) == 2


class TestStatsResetAndDelta:
    """Per-layer cache accounting (counters are cumulative by default)."""

    def test_reset_stats_zeroes_counters_keeps_entries(self):
        cache = RoutingCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.reset_stats()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)
        # The cached entry survived the counter reset.
        assert stats.size == 1
        assert cache.get("a") == 1

    def test_engine_reset_stats_keeps_trees(self):
        graph = _star_graph()
        engine = GaoRexfordEngine(graph)
        tree = engine.routing_info(9)
        engine.reset_stats()
        assert engine.cache_stats().lookups == 0
        assert engine.cache_stats().size == 1
        # Same tree object: reset did not drop the cache.
        assert engine.routing_info(9) is tree
        assert engine.cache_stats().hits == 1

    def test_delta_subtracts_baseline(self):
        graph = _star_graph()
        engine = GaoRexfordEngine(graph)
        engine.routing_info(9)  # miss
        baseline = engine.cache_stats()
        engine.routing_info(9)  # hit
        engine.routing_info(9)  # hit
        delta = engine.cache_stats().delta(baseline)
        assert (delta.hits, delta.misses) == (2, 0)
        # Size reflects the current cache, not a difference.
        assert delta.size == engine.cache_stats().size
        assert delta.maxsize == engine.cache_stats().maxsize
