"""Tests for the Gao-Rexford routing engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gao_rexford import GaoRexfordEngine
from repro.topology import ASGraph, Relationship


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


class TestRoutingStages:
    def test_customer_routes_climb_provider_links(self):
        # 1 provider of 2 provider of 3 (destination).
        graph = _graph((1, 2, Relationship.CUSTOMER), (2, 3, Relationship.CUSTOMER))
        info = GaoRexfordEngine(graph).routing_info(3)
        assert info.customer_dist == {3: 0, 2: 1, 1: 2}
        assert info.best_class(1) is Relationship.CUSTOMER
        assert info.gr_route_length(1) == 2

    def test_peer_routes_one_hop_over_customer_routes(self):
        graph = _graph(
            (2, 3, Relationship.CUSTOMER),  # 2 provider of 3
            (2, 4, Relationship.PEER),
        )
        info = GaoRexfordEngine(graph).routing_info(3)
        assert info.peer_dist[4] == 2
        assert info.best_class(4) is Relationship.PEER

    def test_no_peer_route_over_peer_route(self):
        """Valley-free: a peer route is not re-exported to peers."""
        graph = _graph(
            (2, 3, Relationship.PEER),
            (2, 4, Relationship.PEER),
        )
        info = GaoRexfordEngine(graph).routing_info(3)
        assert 2 in info.peer_dist
        assert 4 not in info.peer_dist
        assert not info.has_route(4)

    def test_provider_routes_descend(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),  # 1 provider of 2
            (1, 3, Relationship.CUSTOMER),
        )
        info = GaoRexfordEngine(graph).routing_info(3)
        # 2 reaches 3 via its provider 1.
        assert info.provider_dist[2] == 2
        assert info.best_class(2) is Relationship.PROVIDER

    def test_provider_route_chains(self):
        """Provider routes propagate down multiple levels."""
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 4, Relationship.CUSTOMER),
            (1, 3, Relationship.CUSTOMER),
        )
        info = GaoRexfordEngine(graph).routing_info(3)
        assert info.provider_dist[4] == 3  # 4 -> 2 -> 1 -> 3

    def test_chosen_route_length_not_class_minimum(self):
        """A provider exports its *chosen* (cheapest-class) route even
        when a shorter route of a worse class exists."""
        graph = _graph(
            # Destination 9; provider 1 has a long customer route and a
            # short provider route toward it.
            (1, 2, Relationship.CUSTOMER),
            (2, 3, Relationship.CUSTOMER),
            (3, 9, Relationship.CUSTOMER),
            (8, 1, Relationship.CUSTOMER),  # 8 provider of 1
            (8, 9, Relationship.CUSTOMER),  # 8 provider of 9
            (1, 7, Relationship.CUSTOMER),  # 7 is 1's customer
        )
        info = GaoRexfordEngine(graph).routing_info(9)
        # 1's chosen route is the customer route of length 3, not the
        # provider route of length 2 via 8.
        assert info.customer_dist[1] == 3
        assert info.provider_dist[1] == 2
        assert info.gr_route_length(1) == 3
        # 7 learns 1's chosen route: 1 + 3.
        assert info.provider_dist[7] == 4

    def test_sibling_links_carry_customer_routes(self):
        graph = _graph(
            (1, 2, Relationship.SIBLING),
            (2, 3, Relationship.CUSTOMER),
        )
        info = GaoRexfordEngine(graph).routing_info(3)
        assert info.customer_dist[1] == 2

    def test_unknown_destination_raises(self):
        graph = _graph((1, 2, Relationship.PEER))
        with pytest.raises(KeyError):
            GaoRexfordEngine(graph).routing_info(99)

    def test_destination_has_zero_length(self):
        graph = _graph((1, 2, Relationship.CUSTOMER))
        info = GaoRexfordEngine(graph).routing_info(2)
        assert info.gr_route_length(2) == 0


class TestFirstHopRestriction:
    def test_restriction_prunes_provider(self):
        graph = _graph(
            (1, 3, Relationship.CUSTOMER),  # 1 provider of 3
            (2, 3, Relationship.CUSTOMER),  # 2 provider of 3
            (1, 2, Relationship.PEER),
        )
        engine = GaoRexfordEngine(graph)
        unrestricted = engine.routing_info(3)
        assert unrestricted.customer_dist[1] == 1
        restricted = engine.routing_info(3, allowed_first_hops=frozenset({2}))
        # 1 can now reach 3 only through its peer 2.
        assert 1 not in restricted.customer_dist
        assert restricted.peer_dist[1] == 2

    def test_restriction_prunes_customer_direction(self):
        graph = _graph(
            (3, 4, Relationship.CUSTOMER),  # 4 is 3's customer
            (3, 5, Relationship.CUSTOMER),
        )
        engine = GaoRexfordEngine(graph)
        restricted = engine.routing_info(3, allowed_first_hops=frozenset({5}))
        assert not restricted.has_route(4)
        assert restricted.has_route(5)

    def test_results_are_cached_per_restriction(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (3, 2, Relationship.CUSTOMER),
        )
        engine = GaoRexfordEngine(graph)
        a = engine.routing_info(2)
        b = engine.routing_info(2)
        c = engine.routing_info(2, allowed_first_hops=frozenset({1}))
        assert a is b
        assert c is not a

    def test_full_coverage_restriction_shares_unrestricted_tree(self):
        """An allowed set naming every neighbor restricts nothing, so it
        canonicalizes onto the unrestricted cache entry."""
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (3, 2, Relationship.CUSTOMER),
        )
        engine = GaoRexfordEngine(graph)
        a = engine.routing_info(2)
        d = engine.routing_info(2, allowed_first_hops=frozenset({1, 3}))
        assert d is a


class TestPartialTransit:
    def test_partial_transit_blocks_provider_routes_downstream(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),  # 1 provider of 2
            (2, 4, Relationship.CUSTOMER),  # 2 provider of 4
            (1, 3, Relationship.CUSTOMER),  # destination 3 behind 1
        )
        full = GaoRexfordEngine(graph).routing_info(3)
        assert full.provider_dist[4] == 3
        limited = GaoRexfordEngine(
            graph, partial_transit=frozenset({(2, 4)})
        ).routing_info(3)
        # 2's route toward 3 is provider-learned, so partial-transit
        # customer 4 does not receive it.
        assert not limited.has_route(4)

    def test_partial_transit_still_passes_customer_routes(self):
        graph = _graph(
            (2, 3, Relationship.CUSTOMER),  # destination 3 is 2's customer
            (2, 4, Relationship.CUSTOMER),
        )
        limited = GaoRexfordEngine(
            graph, partial_transit=frozenset({(2, 4)})
        ).routing_info(3)
        assert limited.provider_dist[4] == 2


class TestPathReconstruction:
    def test_path_matches_length(self):
        graph = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 3, Relationship.CUSTOMER),
            (1, 4, Relationship.PEER),
            (4, 5, Relationship.CUSTOMER),
        )
        engine = GaoRexfordEngine(graph)
        info = engine.routing_info(3)
        for asn in graph.asns():
            length = info.gr_route_length(asn)
            path = info.gr_route_path(asn)
            if length is None:
                assert path is None
            else:
                assert path is not None
                assert path[0] == asn
                assert path[-1] == 3
                assert len(path) - 1 == length

    def test_peer_route_path_crosses_one_peer_link(self):
        graph = _graph(
            (2, 3, Relationship.CUSTOMER),
            (2, 4, Relationship.PEER),
        )
        info = GaoRexfordEngine(graph).routing_info(3)
        assert info.gr_route_path(4) == (4, 2, 3)


rel_strategy = st.sampled_from(
    [Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER]
)


@st.composite
def random_graphs(draw):
    num_ases = draw(st.integers(min_value=2, max_value=12))
    asns = list(range(1, num_ases + 1))
    graph = ASGraph()
    for asn in asns:
        graph.ensure_asn(asn)
    num_links = draw(st.integers(min_value=1, max_value=24))
    for _ in range(num_links):
        a = draw(st.sampled_from(asns))
        b = draw(st.sampled_from(asns))
        if a == b:
            continue
        # Orient c2p links from lower to higher ASN so the customer-
        # provider hierarchy is acyclic (as on the real Internet).
        rel = draw(rel_strategy)
        if rel is Relationship.CUSTOMER:
            graph.add_link(min(a, b), max(a, b), Relationship.CUSTOMER)
        elif rel is Relationship.PROVIDER:
            graph.add_link(max(a, b), min(a, b), Relationship.CUSTOMER)
        else:
            graph.add_link(a, b, Relationship.PEER)
    return graph


class TestEngineProperties:
    @given(random_graphs(), st.integers(min_value=1, max_value=12))
    @settings(max_examples=150, deadline=None)
    def test_reconstructed_paths_are_valley_free(self, graph, destination):
        """Every model path must be valley-free with correct length."""
        if destination not in graph:
            return
        engine = GaoRexfordEngine(graph)
        info = engine.routing_info(destination)
        for asn in graph.asns():
            path = info.gr_route_path(asn)
            if path is None:
                continue
            assert len(path) - 1 == info.gr_route_length(asn)
            # Valley-free: downhill (provider->customer) or peer edges
            # must never be followed by uphill (customer->provider),
            # and at most one peer edge overall.
            went_down = False
            peer_edges = 0
            for left, right in zip(path[:-1], path[1:]):
                rel = graph.relationship(left, right)
                assert rel is not None
                if rel is Relationship.PEER:
                    peer_edges += 1
                    went_down = True
                elif rel is Relationship.CUSTOMER:
                    went_down = True
                elif rel is Relationship.PROVIDER:
                    assert not went_down, f"valley in {path}"
            assert peer_edges <= 1

    @given(random_graphs(), st.integers(min_value=1, max_value=12))
    @settings(max_examples=100, deadline=None)
    def test_class_priority_is_respected(self, graph, destination):
        if destination not in graph:
            return
        info = GaoRexfordEngine(graph).routing_info(destination)
        for asn in graph.asns():
            best = info.best_class(asn)
            if best is Relationship.PEER:
                assert asn not in info.customer_dist
            if best is Relationship.PROVIDER:
                assert asn not in info.customer_dist
                assert asn not in info.peer_dist
