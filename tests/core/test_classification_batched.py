"""Batched grading must be indistinguishable from per-decision grading.

The batched path (grouping by routing tree, duplicate collapsing,
per-group memoization) is a pure optimization: for every input and
every refinement configuration it must produce exactly the labels and
counts of the per-decision reference implementation.
"""

import random

import pytest

from repro.core.classification import (
    Decision,
    GroupedDecisions,
    classify_decisions,
    classify_decisions_serial,
    label_decisions,
    label_decisions_serial,
)
from repro.core.gao_rexford import GaoRexfordEngine
from repro.core.pipeline import FIGURE1_LAYERS, figure1_layer_configs
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship
from repro.topology.complex_rel import ComplexRelationships, HybridEntry
from repro.whois.siblings import SiblingGroups

pytestmark = pytest.mark.tier1

PFX = Prefix.parse("198.51.100.0/24")
PFX_B = Prefix.parse("203.0.113.0/24")


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


def _decision(asn, next_hop, destination, measured_len, prefix=PFX, **kwargs):
    return Decision(
        asn=asn,
        next_hop=next_hop,
        destination=destination,
        prefix=prefix,
        measured_len=measured_len,
        source_asn=kwargs.pop("source_asn", asn),
        **kwargs,
    )


class TestStudyLayerEquivalence:
    """All seven Figure-1 layers on the full quick-study decision set."""

    @pytest.fixture(scope="class")
    def layers(self, study):
        engine_simple = GaoRexfordEngine(study.inferred)
        engine_complex = GaoRexfordEngine(
            study.inferred,
            partial_transit=study.engine_complex.partial_transit,
        )
        return figure1_layer_configs(
            engine_simple,
            engine_complex,
            known_complex=study.known_complex,
            siblings=study.siblings,
            first_hops_1=study.first_hops_1,
            first_hops_2=study.first_hops_2,
        )

    @pytest.mark.parametrize("layer_name", FIGURE1_LAYERS)
    def test_counts_identical(self, study, layers, layer_name):
        layer = layers[layer_name]
        batched = classify_decisions(
            study.decisions,
            layer.engine,
            first_hops_for=layer.first_hops_for,
            complex_rel=layer.complex_rel,
            siblings=layer.siblings,
        )
        serial = classify_decisions_serial(
            study.decisions,
            layer.engine,
            first_hops_for=layer.first_hops_for,
            complex_rel=layer.complex_rel,
            siblings=layer.siblings,
        )
        assert batched.counts == serial.counts
        # And both must match what the study pipeline reported.
        assert batched.counts == study.figure1[layer_name].counts

    @pytest.mark.parametrize("layer_name", FIGURE1_LAYERS)
    def test_labels_identical(self, study, layers, layer_name):
        layer = layers[layer_name]
        batched = label_decisions(
            study.decisions,
            layer.engine,
            first_hops_for=layer.first_hops_for,
            complex_rel=layer.complex_rel,
            siblings=layer.siblings,
        )
        serial = label_decisions_serial(
            study.decisions,
            layer.engine,
            first_hops_for=layer.first_hops_for,
            complex_rel=layer.complex_rel,
            siblings=layer.siblings,
        )
        assert batched == serial


class TestRandomizedEquivalence:
    """Property-style: random graphs, decisions and refinement configs."""

    @staticmethod
    def _random_case(rng):
        num_ases = rng.randint(4, 14)
        asns = list(range(1, num_ases + 1))
        graph = ASGraph()
        for asn in asns:
            graph.ensure_asn(asn)
        for a in asns:
            for b in asns:
                if a < b and rng.random() < 0.35:
                    rel = rng.choice(list(Relationship))
                    graph.add_link(a, b, rel)
        destinations = rng.sample(asns, k=min(3, len(asns)))
        cities = [None, "Paris", "Tokyo"]
        decisions = []
        for _ in range(rng.randint(5, 60)):
            asn, next_hop = rng.sample(asns, k=2)
            decisions.append(
                _decision(
                    asn,
                    next_hop,
                    rng.choice(destinations),
                    measured_len=rng.randint(1, 6),
                    prefix=rng.choice([PFX, PFX_B]),
                    border_city=rng.choice(cities),
                )
            )
        first_hops_for = None
        if rng.random() < 0.7:
            first_hops_for = {
                prefix: frozenset(rng.sample(asns, k=rng.randint(0, len(asns))))
                for prefix in (PFX, PFX_B)
                if rng.random() < 0.8
            }
        complex_rel = None
        if rng.random() < 0.5:
            a, b = rng.sample(asns, k=2)
            complex_rel = ComplexRelationships(
                hybrid=[HybridEntry(a, b, "Paris", rng.choice(list(Relationship)))]
            )
        siblings = None
        if rng.random() < 0.5:
            siblings = SiblingGroups([frozenset(rng.sample(asns, k=2))])
        return graph, decisions, first_hops_for, complex_rel, siblings

    @pytest.mark.parametrize("seed", range(1000, 1025))
    def test_random_trial(self, seed):
        rng = random.Random(seed)
        graph, decisions, first_hops_for, complex_rel, siblings = self._random_case(
            rng
        )
        engine = GaoRexfordEngine(graph)
        batched = label_decisions(
            decisions,
            engine,
            first_hops_for=first_hops_for,
            complex_rel=complex_rel,
            siblings=siblings,
        )
        serial = label_decisions_serial(
            decisions,
            engine,
            first_hops_for=first_hops_for,
            complex_rel=complex_rel,
            siblings=siblings,
        )
        assert batched == serial
        counts_batched = classify_decisions(
            decisions,
            engine,
            first_hops_for=first_hops_for,
            complex_rel=complex_rel,
            siblings=siblings,
        )
        counts_serial = classify_decisions_serial(
            decisions,
            engine,
            first_hops_for=first_hops_for,
            complex_rel=complex_rel,
            siblings=siblings,
        )
        assert counts_batched.counts == counts_serial.counts


class TestGroupedDecisions:
    def test_groups_by_destination_and_allowed(self):
        decisions = [
            _decision(1, 2, 9, measured_len=2, prefix=PFX),
            _decision(1, 2, 9, measured_len=2, prefix=PFX_B),
            _decision(1, 2, 8, measured_len=2, prefix=PFX),
        ]
        first_hops = {PFX: frozenset({2})}
        grouped = GroupedDecisions(decisions, first_hops)
        assert set(grouped.tree_keys()) == {
            (9, frozenset({2})),
            (9, None),
            (8, frozenset({2})),
        }

    def test_duplicates_collapse(self):
        decisions = [_decision(1, 2, 9, measured_len=2) for _ in range(5)]
        decisions.append(_decision(1, 3, 9, measured_len=2))
        grouped = GroupedDecisions(decisions)
        assert len(grouped) == 6
        assert grouped.unique_count() == 2

    def test_border_city_distinguishes(self):
        decisions = [
            _decision(1, 2, 9, measured_len=2, border_city="Paris"),
            _decision(1, 2, 9, measured_len=2, border_city="Tokyo"),
        ]
        grouped = GroupedDecisions(decisions)
        assert grouped.unique_count() == 2

    def test_labels_preserve_input_order(self):
        diamond = _graph(
            (1, 2, Relationship.CUSTOMER),
            (2, 9, Relationship.CUSTOMER),
            (1, 3, Relationship.PEER),
            (3, 9, Relationship.CUSTOMER),
        )
        engine = GaoRexfordEngine(diamond)
        decisions = [
            _decision(1, 3, 9, measured_len=2),
            _decision(1, 2, 9, measured_len=2),
            _decision(1, 3, 9, measured_len=2),
        ]
        labeled = label_decisions(decisions, engine)
        assert [d for d, _ in labeled] == decisions
        assert labeled[0][1] == labeled[2][1]
