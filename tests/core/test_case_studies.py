"""Tests for violation case-study extraction and experiment scheduling."""

import pytest

from repro.core.active_analysis import PreferenceViolation
from repro.core.case_studies import build_case_studies, build_case_study
from repro.peering.experiments import RouteView
from repro.peering.schedule import (
    ANNOUNCEMENT_SPACING_MINUTES,
    ExperimentSchedule,
    schedule_discovery,
    schedule_magnet_rounds,
)
from repro.topology import ASGraph, Relationship


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


def _violation(preferred_path, fallback_path, pref_rel, fall_rel, target=1):
    return PreferenceViolation(
        target=target,
        preferred=RouteView(next_hop=preferred_path[0], path=preferred_path),
        fallback=RouteView(next_hop=fallback_path[0], path=fallback_path),
        preferred_relationship=pref_rel,
        fallback_relationship=fall_rel,
    )


class TestCaseStudies:
    def test_detects_unnecessary_detour(self):
        """The OpenPeering pattern: fallback is a suffix of preferred."""
        graph = _graph(
            (2, 1, Relationship.CUSTOMER),
            (1, 5, Relationship.PEER),
        )
        violation = _violation(
            preferred_path=(2, 7, 5, 9),
            fallback_path=(5, 9),
            pref_rel=Relationship.PROVIDER,
            fall_rel=Relationship.PEER,
        )
        case = build_case_study(violation, graph)
        assert case.unnecessary_detour
        assert "unnecessary detour" in case.narrative

    def test_detects_backup_link_pattern(self):
        """The Internet2/Switch pattern: provider first, peer as backup."""
        graph = _graph(
            (2, 1, Relationship.CUSTOMER),
            (1, 5, Relationship.PEER),
        )
        violation = _violation(
            preferred_path=(2, 9),
            fallback_path=(5, 8, 9),
            pref_rel=Relationship.PROVIDER,
            fall_rel=Relationship.PEER,
        )
        case = build_case_study(violation, graph)
        assert case.backup_link_suspected
        assert "backup" in case.narrative

    def test_generic_violation_gets_ranking_narrative(self):
        graph = _graph((1, 2, Relationship.PEER), (1, 3, Relationship.CUSTOMER))
        violation = _violation(
            preferred_path=(2, 9),
            fallback_path=(3, 9),
            pref_rel=Relationship.PEER,
            fall_rel=Relationship.CUSTOMER,
        )
        case = build_case_study(violation, graph)
        assert not case.unnecessary_detour
        assert not case.backup_link_suspected
        assert "finer-grained" in case.narrative

    def test_build_many(self):
        graph = _graph((1, 2, Relationship.PEER))
        violations = [
            _violation((2, 9), (3, 9), Relationship.PEER, Relationship.CUSTOMER)
        ] * 3
        assert len(build_case_studies(violations, graph)) == 3


class TestSchedule:
    def test_spacing_enforced(self):
        schedule = schedule_discovery(4)
        minutes = [event.minute for event in schedule.events]
        assert minutes == [0, 90, 180, 270]
        assert schedule.total_minutes == 360

    def test_custom_spacing(self):
        schedule = schedule_discovery(2, spacing_minutes=30)
        assert [e.minute for e in schedule.events] == [0, 30]

    def test_paper_scale_discovery_takes_days(self):
        # The paper's 188 announcements at 90-minute spacing.
        schedule = schedule_discovery(188)
        assert 11 < schedule.total_days < 13

    def test_magnet_schedule(self):
        schedule, wait = schedule_magnet_rounds(7)
        assert len(schedule.events) == 21
        assert wait == 35
        assert schedule.events[1].minute == ANNOUNCEMENT_SPACING_MINUTES

    def test_guards(self):
        with pytest.raises(ValueError):
            schedule_discovery(-1)
        with pytest.raises(ValueError):
            schedule_magnet_rounds(-1)
        with pytest.raises(ValueError):
            ExperimentSchedule(spacing_minutes=0)

    def test_empty_schedule(self):
        schedule = schedule_discovery(0)
        assert schedule.total_minutes == 0
        assert schedule.total_days == 0.0
