"""Tests for the active-experiment analyses (Section 4.4, Table 2)."""

import pytest

from repro.bgp.decision import DecisionStep
from repro.core.active_analysis import (
    InferredTrigger,
    classify_preference_orders,
    infer_magnet_decisions,
)
from repro.net.ip import Prefix
from repro.peering.experiments import (
    AlternateRouteObservation,
    MagnetObservation,
    RouteView,
)
from repro.topology import ASGraph, Relationship

PFX = Prefix.parse("100.64.0.0/24")


def _graph(*links):
    graph = ASGraph()
    for a, b, rel in links:
        graph.add_link(a, b, rel)
    return graph


@pytest.fixture
def target_graph():
    """Target 1 with customer 2, peer 3, provider 4."""
    return _graph(
        (1, 2, Relationship.CUSTOMER),
        (1, 3, Relationship.PEER),
        (4, 1, Relationship.CUSTOMER),
    )


def _view(next_hop, length):
    return RouteView(next_hop=next_hop, path=tuple(range(next_hop, next_hop + length)))


class TestPreferenceOrders:
    def test_both_properties(self, target_graph):
        observation = AlternateRouteObservation(
            target=1,
            routes=[_view(2, 2), _view(3, 2), _view(4, 3)],
        )
        summary = classify_preference_orders([observation], target_graph)
        assert summary.total_targets == 1
        assert summary.both == 1
        assert not summary.violations

    def test_best_only(self, target_graph):
        # Relationship order correct but lengths shrink down the list.
        observation = AlternateRouteObservation(
            target=1,
            routes=[_view(2, 5), _view(3, 2)],
        )
        summary = classify_preference_orders([observation], target_graph)
        assert summary.best_only == 1

    def test_short_only_records_violation(self, target_graph):
        # Provider route preferred over the customer route.
        observation = AlternateRouteObservation(
            target=1,
            routes=[_view(4, 2), _view(2, 2)],
        )
        summary = classify_preference_orders([observation], target_graph)
        assert summary.short_only == 1
        assert len(summary.violations) == 1
        violation = summary.violations[0]
        assert violation.preferred_relationship is Relationship.PROVIDER
        assert violation.fallback_relationship is Relationship.CUSTOMER

    def test_neither(self, target_graph):
        observation = AlternateRouteObservation(
            target=1,
            routes=[_view(4, 5), _view(2, 2)],
        )
        summary = classify_preference_orders([observation], target_graph)
        assert summary.neither == 1

    def test_single_route_targets_skipped(self, target_graph):
        observation = AlternateRouteObservation(target=1, routes=[_view(2, 2)])
        summary = classify_preference_orders([observation], target_graph)
        assert summary.total_targets == 0

    def test_unknown_relationships_do_not_fail_best(self, target_graph):
        # Next hop 99 has no link in the inferred topology; the pair is
        # skipped for Best grading.
        observation = AlternateRouteObservation(
            target=1,
            routes=[_view(99, 2), _view(2, 2)],
        )
        summary = classify_preference_orders([observation], target_graph)
        assert summary.both == 1

    def test_fraction_helper(self, target_graph):
        observation = AlternateRouteObservation(
            target=1, routes=[_view(2, 2), _view(3, 2)]
        )
        summary = classify_preference_orders([observation], target_graph)
        assert summary.fraction("both") == 1.0
        empty = classify_preference_orders([], target_graph)
        assert empty.fraction("both") == 0.0


def _magnet_observation(magnet, anycast, **kwargs):
    return MagnetObservation(
        magnet_mux=500,
        prefix=PFX,
        magnet_routes=magnet,
        anycast_routes=anycast,
        feed_visible=kwargs.get("feed_visible", frozenset(anycast)),
        vp_visible=kwargs.get("vp_visible", frozenset()),
        truth_decision_steps=kwargs.get("truth", {}),
    )


class TestMagnetInference:
    def test_best_relationship(self, target_graph):
        magnet = {1: _view(4, 3)}
        anycast = {1: _view(2, 3)}  # switched to the customer route
        observation = _magnet_observation(magnet, anycast)
        table = infer_magnet_decisions([observation], target_graph)
        assert table.feed_counts[InferredTrigger.BEST_RELATIONSHIP] == 1

    def test_shorter_path(self):
        graph = _graph(
            (4, 1, Relationship.CUSTOMER),
            (5, 1, Relationship.CUSTOMER),
        )
        magnet = {1: _view(4, 4)}
        anycast = {1: _view(5, 2)}
        observation = _magnet_observation(magnet, anycast)
        table = infer_magnet_decisions([observation], graph)
        assert table.feed_counts[InferredTrigger.SHORTER_PATH] == 1

    def test_oldest_route_when_kept_tie(self):
        graph = _graph(
            (4, 1, Relationship.CUSTOMER),
            (5, 1, Relationship.CUSTOMER),
        )
        kept = _view(4, 3)
        observations = [
            # Round A establishes that 1 has an equally good alternative.
            _magnet_observation({1: _view(5, 3)}, {1: _view(5, 3)}),
            # Round B: 1 keeps the magnet route despite the tie.
            _magnet_observation({1: kept}, {1: kept}),
        ]
        table = infer_magnet_decisions(observations, graph)
        assert table.feed_counts[InferredTrigger.OLDEST_ROUTE] >= 1

    def test_intradomain_when_switched_tie(self):
        graph = _graph(
            (4, 1, Relationship.CUSTOMER),
            (5, 1, Relationship.CUSTOMER),
        )
        observations = [
            _magnet_observation({1: _view(5, 3)}, {1: _view(5, 3)}),
            # Magnet route was via 4; after anycast 1 switches to the
            # equally-good route via 5.
            _magnet_observation({1: _view(4, 3)}, {1: _view(5, 3)}),
        ]
        table = infer_magnet_decisions(observations, graph)
        assert table.feed_counts[InferredTrigger.INTRADOMAIN] >= 1

    def test_violation_when_worse_class_chosen(self, target_graph):
        observations = [
            _magnet_observation({1: _view(2, 3)}, {1: _view(2, 3)}),
            # Chooses the provider route although the customer route
            # was observed.
            _magnet_observation({1: _view(2, 3)}, {1: _view(4, 3)}),
        ]
        table = infer_magnet_decisions(observations, target_graph)
        assert table.feed_counts[InferredTrigger.VIOLATION] >= 1

    def test_single_observed_route_skipped(self, target_graph):
        observation = _magnet_observation({1: _view(2, 3)}, {1: _view(2, 3)})
        table = infer_magnet_decisions([observation], target_graph)
        assert table.total("feeds") == 0

    def test_channel_visibility(self, target_graph):
        magnet = {1: _view(4, 3)}
        anycast = {1: _view(2, 3)}
        observation = _magnet_observation(
            magnet, anycast, feed_visible=frozenset(), vp_visible=frozenset({1})
        )
        table = infer_magnet_decisions([observation], target_graph)
        assert table.total("feeds") == 0
        assert table.total("traceroutes") == 1
        with pytest.raises(ValueError):
            table.total("nope")

    def test_validation_accuracy(self, target_graph):
        observation = _magnet_observation(
            {1: _view(4, 3)},
            {1: _view(2, 3)},
            truth={1: DecisionStep.LOCAL_PREF},
        )
        table = infer_magnet_decisions([observation], target_graph)
        assert table.inference_accuracy() == 1.0
