"""Unit and property-based tests for the longest-prefix-match trie."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.oracles import OracleLPM
from repro.net.ip import IPAddress, Prefix
from repro.net.trie import PrefixTrie


def _prefix(text):
    return Prefix.parse(text)


class TestPrefixTrieBasics:
    def test_empty_lookup_returns_none(self):
        trie = PrefixTrie()
        assert trie.lookup(IPAddress.parse("10.0.0.1")) is None

    def test_exact_and_lpm(self):
        trie = PrefixTrie()
        trie.insert(_prefix("10.0.0.0/8"), "eight")
        trie.insert(_prefix("10.1.0.0/16"), "sixteen")
        assert trie.lookup(IPAddress.parse("10.1.2.3")) == "sixteen"
        assert trie.lookup(IPAddress.parse("10.2.0.1")) == "eight"
        assert trie.lookup(IPAddress.parse("11.0.0.1")) is None

    def test_lookup_with_prefix_returns_match(self):
        trie = PrefixTrie()
        trie.insert(_prefix("10.1.0.0/16"), "v")
        matched = trie.lookup_with_prefix(IPAddress.parse("10.1.9.9"))
        assert matched == (_prefix("10.1.0.0/16"), "v")

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(_prefix("0.0.0.0/0"), "default")
        assert trie.lookup(IPAddress.parse("203.0.113.77")) == "default"

    def test_insert_replaces_value(self):
        trie = PrefixTrie()
        trie.insert(_prefix("10.0.0.0/24"), "a")
        trie.insert(_prefix("10.0.0.0/24"), "b")
        assert trie.exact(_prefix("10.0.0.0/24")) == "b"
        assert len(trie) == 1

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(_prefix("10.0.0.0/8"), "eight")
        trie.insert(_prefix("10.1.0.0/16"), "sixteen")
        assert trie.remove(_prefix("10.1.0.0/16"))
        assert trie.lookup(IPAddress.parse("10.1.2.3")) == "eight"
        assert not trie.remove(_prefix("10.1.0.0/16"))
        assert len(trie) == 1

    def test_host_route(self):
        trie = PrefixTrie()
        trie.insert(_prefix("10.0.0.0/24"), "net")
        trie.insert(_prefix("10.0.0.7/32"), "host")
        assert trie.lookup(IPAddress.parse("10.0.0.7")) == "host"
        assert trie.lookup(IPAddress.parse("10.0.0.8")) == "net"

    def test_contains(self):
        trie = PrefixTrie()
        trie.insert(_prefix("10.0.0.0/24"), "v")
        assert _prefix("10.0.0.0/24") in trie
        assert _prefix("10.0.0.0/25") not in trie

    def test_items_yields_all_entries(self):
        trie = PrefixTrie()
        prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.0.2.0/24", "0.0.0.0/0"]
        for index, text in enumerate(prefixes):
            trie.insert(_prefix(text), index)
        items = dict(trie.items())
        assert items == {_prefix(text): i for i, text in enumerate(prefixes)}


prefix_lengths = st.integers(min_value=0, max_value=32)
addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


@st.composite
def prefixes(draw):
    length = draw(prefix_lengths)
    address = draw(addresses)
    return Prefix.from_address(IPAddress(address), length)


class TestPrefixTrieProperties:
    @given(st.lists(st.tuples(prefixes(), st.integers()), max_size=40), addresses)
    @settings(max_examples=200, deadline=None)
    def test_lpm_matches_linear_scan(self, entries, query_value):
        """The trie's answer always equals a brute-force LPM scan."""
        trie = PrefixTrie()
        table = {}
        for prefix, value in entries:
            trie.insert(prefix, value)
            table[prefix] = value
        query = IPAddress(query_value)
        covering = [p for p in table if p.contains(query)]
        if not covering:
            assert trie.lookup(query) is None
        else:
            best = max(covering, key=lambda p: p.length)
            assert trie.lookup(query) == table[best]

    @given(st.lists(st.tuples(prefixes(), st.integers()), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_items_roundtrip(self, entries):
        trie = PrefixTrie()
        table = {}
        for prefix, value in entries:
            trie.insert(prefix, value)
            table[prefix] = value
        assert dict(trie.items()) == table
        assert len(trie) == len(table)

    @given(st.lists(prefixes(), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_remove_all_empties_trie(self, entries):
        trie = PrefixTrie()
        for prefix in entries:
            trie.insert(prefix, str(prefix))
        for prefix in set(entries):
            assert trie.remove(prefix)
        assert len(trie) == 0
        assert list(trie.items()) == []


#: Boundary lengths that stress octet edges and the root/host extremes.
boundary_lengths = st.sampled_from(
    [0, 1, 7, 8, 9, 15, 16, 17, 23, 24, 25, 31, 32]
)


@st.composite
def boundary_prefixes(draw):
    length = draw(boundary_lengths)
    address = draw(addresses)
    return Prefix.from_address(IPAddress(address), length)


class TestPrefixTrieVsOracle:
    """Differential property tests against the linear-scan reference."""

    @given(
        st.lists(st.tuples(prefixes(), st.integers()), max_size=40), addresses
    )
    @settings(max_examples=200, deadline=None)
    def test_lookup_matches_oracle(self, entries, query_value):
        trie, oracle = PrefixTrie(), OracleLPM()
        for prefix, value in entries:
            trie.insert(prefix, value)
            oracle.insert(prefix, value)
        query = IPAddress(query_value)
        assert trie.lookup_with_prefix(query) == oracle.lookup_with_prefix(query)
        assert trie.lookup(query) == oracle.lookup(query)
        assert trie.lookup_all(query) == oracle.lookup_all(query)

    @given(
        st.lists(st.tuples(boundary_prefixes(), st.integers()), max_size=30),
        addresses,
    )
    @settings(max_examples=150, deadline=None)
    def test_boundary_lengths_match_oracle(self, entries, query_value):
        """Octet-boundary prefix lengths, where bit-walk bugs live."""
        trie, oracle = PrefixTrie(), OracleLPM()
        for prefix, value in entries:
            trie.insert(prefix, value)
            oracle.insert(prefix, value)
        query = IPAddress(query_value)
        assert trie.lookup_with_prefix(query) == oracle.lookup_with_prefix(query)
        assert trie.lookup_all(query) == oracle.lookup_all(query)

    @given(st.lists(prefixes(), max_size=25), addresses)
    @settings(max_examples=100, deadline=None)
    def test_default_route_always_matches(self, entries, query_value):
        trie, oracle = PrefixTrie(), OracleLPM()
        for table in (trie, oracle):
            table.insert(Prefix(0, 0), "default")
        for index, prefix in enumerate(entries):
            trie.insert(prefix, index)
            oracle.insert(prefix, index)
        query = IPAddress(query_value)
        matched = trie.lookup_with_prefix(query)
        assert matched is not None
        assert matched == oracle.lookup_with_prefix(query)
        # The default route is always the first (shortest) covering
        # entry (a generated /0 may have overwritten its value).
        assert trie.lookup_all(query)[0][0] == Prefix(0, 0)

    @given(
        st.lists(prefixes(), min_size=2, max_size=30),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_removal_stays_in_sync_with_oracle(self, entries, seed):
        rng = random.Random(seed)
        trie, oracle = PrefixTrie(), OracleLPM()
        for prefix in entries:
            trie.insert(prefix, str(prefix))
            oracle.insert(prefix, str(prefix))
        for prefix in rng.sample(entries, k=len(entries) // 2):
            assert trie.remove(prefix) == oracle.remove(prefix)
        assert len(trie) == len(oracle)
        for _ in range(8):
            query = IPAddress(rng.getrandbits(32))
            assert trie.lookup_with_prefix(query) == oracle.lookup_with_prefix(
                query
            )

    def test_lookup_all_unit(self):
        trie = PrefixTrie()
        trie.insert(_prefix("0.0.0.0/0"), "default")
        trie.insert(_prefix("10.0.0.0/8"), "eight")
        trie.insert(_prefix("10.1.0.0/16"), "sixteen")
        matches = trie.lookup_all(IPAddress.parse("10.1.2.3"))
        assert [v for _p, v in matches] == ["default", "eight", "sixteen"]
        assert trie.lookup_all(IPAddress.parse("203.0.113.1")) == [
            (_prefix("0.0.0.0/0"), "default")
        ]
