"""Unit tests for IPv4 address and prefix primitives."""

import pytest

from repro.net.ip import IPAddress, Prefix, PrefixAllocator


class TestIPAddress:
    def test_parse_and_format_roundtrip(self):
        for text in ["0.0.0.0", "10.0.0.1", "192.0.2.255", "255.255.255.255"]:
            assert str(IPAddress.parse(text)) == text

    def test_parse_rejects_malformed(self):
        for text in ["10.0.0", "10.0.0.0.1", "a.b.c.d", "10..0.1", ""]:
            with pytest.raises(ValueError):
                IPAddress.parse(text)

    def test_parse_rejects_octet_overflow(self):
        with pytest.raises(ValueError):
            IPAddress.parse("10.0.0.256")

    def test_value_range_enforced(self):
        with pytest.raises(ValueError):
            IPAddress(-1)
        with pytest.raises(ValueError):
            IPAddress(1 << 32)

    def test_ordering_matches_numeric_value(self):
        assert IPAddress.parse("10.0.0.1") < IPAddress.parse("10.0.0.2")
        assert IPAddress.parse("9.255.255.255") < IPAddress.parse("10.0.0.0")

    def test_addition_offsets_address(self):
        assert IPAddress.parse("10.0.0.1") + 254 == IPAddress.parse("10.0.0.255")

    def test_int_conversion(self):
        assert int(IPAddress.parse("0.0.0.1")) == 1
        assert int(IPAddress.parse("1.0.0.0")) == 1 << 24


class TestPrefix:
    def test_parse_and_format_roundtrip(self):
        for text in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "10.1.2.3/32"]:
            assert str(Prefix.parse(text)) == text

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.1/24")

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0/33")

    def test_rejects_missing_slash(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0")

    def test_from_address_zeroes_host_bits(self):
        prefix = Prefix.from_address(IPAddress.parse("10.1.2.3"), 16)
        assert prefix == Prefix.parse("10.1.0.0/16")

    def test_contains(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.contains(IPAddress.parse("192.0.2.0"))
        assert prefix.contains(IPAddress.parse("192.0.2.255"))
        assert not prefix.contains(IPAddress.parse("192.0.3.0"))

    def test_covers(self):
        big = Prefix.parse("10.0.0.0/8")
        small = Prefix.parse("10.1.0.0/16")
        assert big.covers(small)
        assert big.covers(big)
        assert not small.covers(big)
        assert not small.covers(Prefix.parse("10.2.0.0/16"))

    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/24").num_addresses() == 256
        assert Prefix.parse("10.0.0.4/30").num_addresses() == 4

    def test_address_at_bounds(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert prefix.address_at(0) == IPAddress.parse("10.0.0.0")
        assert prefix.address_at(3) == IPAddress.parse("10.0.0.3")
        with pytest.raises(ValueError):
            prefix.address_at(4)
        with pytest.raises(ValueError):
            prefix.address_at(-1)

    def test_first_and_last_address(self):
        prefix = Prefix.parse("192.0.2.0/25")
        assert prefix.first_address() == IPAddress.parse("192.0.2.0")
        assert prefix.last_address() == IPAddress.parse("192.0.2.127")

    def test_subnets(self):
        subnets = list(Prefix.parse("10.0.0.0/24").subnets(26))
        assert [str(p) for p in subnets] == [
            "10.0.0.0/26",
            "10.0.0.64/26",
            "10.0.0.128/26",
            "10.0.0.192/26",
        ]

    def test_subnets_rejects_shorter(self):
        with pytest.raises(ValueError):
            list(Prefix.parse("10.0.0.0/24").subnets(16))


class TestPrefixAllocator:
    def test_sequential_allocation(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/8"))
        first = allocator.allocate(24)
        second = allocator.allocate(24)
        assert str(first) == "10.0.0.0/24"
        assert str(second) == "10.0.1.0/24"

    def test_alignment_of_mixed_sizes(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/8"))
        allocator.allocate(30)
        aligned = allocator.allocate(24)
        # /24 must be /24-aligned despite the preceding /30.
        assert str(aligned) == "10.0.1.0/24"

    def test_exhaustion_raises(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/30"))
        allocator.allocate(31)
        allocator.allocate(31)
        with pytest.raises(RuntimeError):
            allocator.allocate(31)

    def test_cannot_allocate_larger_than_pool(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/16"))
        with pytest.raises(ValueError):
            allocator.allocate(8)

    def test_remaining_addresses_decreases(self):
        allocator = PrefixAllocator(Prefix.parse("10.0.0.0/24"))
        before = allocator.remaining_addresses()
        allocator.allocate(26)
        assert allocator.remaining_addresses() == before - 64
