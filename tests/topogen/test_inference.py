"""Tests for the relationship-inference error model."""

import pytest

from repro.topogen import generate_internet, infer_topology, inferred_snapshots
from repro.topogen.config import small_config
from repro.topogen.inference import InferenceConfig
from repro.topology.relationships import Relationship
from repro.topology.serial import link_set


@pytest.fixture(scope="module")
def internet():
    return generate_internet(small_config(), seed=321)


class TestInferTopology:
    def test_no_sibling_labels_in_inference(self, internet):
        inferred, _complex = infer_topology(internet, seed=1)
        for _a, _b, rel in inferred.links():
            assert rel is not Relationship.SIBLING

    def test_stale_links_injected(self, internet):
        config = InferenceConfig(stale_link_count=5)
        inferred, _complex = infer_topology(internet, config, seed=1)
        truth_pairs = {
            (min(a, b), max(a, b)) for a, b, _rel in internet.graph.links()
        }
        inferred_pairs = {
            (min(a, b), max(a, b)) for a, b, _rel in inferred.links()
        }
        assert len(inferred_pairs - truth_pairs) >= 5

    def test_no_stale_links_when_disabled(self, internet):
        config = InferenceConfig(stale_link_count=0)
        inferred, _complex = infer_topology(internet, config, seed=1)
        truth_pairs = {
            (min(a, b), max(a, b)) for a, b, _rel in internet.graph.links()
        }
        inferred_pairs = {
            (min(a, b), max(a, b)) for a, b, _rel in inferred.links()
        }
        assert not (inferred_pairs - truth_pairs)

    def test_edge_peering_missed(self, internet):
        config = InferenceConfig(miss_peer_edge_rate=1.0, miss_peer_core_rate=0.0)
        inferred, _complex = infer_topology(internet, config, seed=1)
        # Every stub-stub peering must be gone.
        for a, b, rel in internet.graph.links():
            if rel is not Relationship.PEER:
                continue
            a_edge = not internet.graph.customers(a) or internet.graph.degree(a) <= 4
            b_edge = not internet.graph.customers(b) or internet.graph.degree(b) <= 4
            if a_edge and b_edge:
                assert not inferred.has_link(a, b)

    def test_perfect_inference_without_errors(self, internet):
        config = InferenceConfig(
            miss_peer_edge_rate=0.0,
            miss_peer_core_rate=0.0,
            mislabel_c2p_rate=0.0,
            reverse_c2p_rate=0.0,
            mislabel_p2p_rate=0.0,
            cable_mislabel_rate=0.0,
            hybrid_wrong_label_rate=0.0,
            stale_link_count=0,
            sibling_as_c2p_rate=1.0,
        )
        inferred, _complex = infer_topology(internet, config, seed=1)
        for a, b, rel in internet.graph.links():
            if rel is Relationship.SIBLING:
                continue  # sibling class does not exist in inference
            assert inferred.relationship(a, b) is rel

    def test_complex_dataset_subset_of_truth(self, internet):
        _inferred, known = infer_topology(internet, seed=1)
        truth = internet.complex_truth
        for entry in known.partial_transit_entries():
            assert truth.partial_transit(entry.provider, entry.customer) is not None
        for a, b in known.hybrid_pairs():
            assert truth.has_hybrid(a, b)

    def test_deterministic(self, internet):
        a, _ = infer_topology(internet, seed=9)
        b, _ = infer_topology(internet, seed=9)
        assert link_set(a) == link_set(b)


class TestSnapshots:
    def test_count_and_churn(self, internet):
        config = InferenceConfig(num_snapshots=4, snapshot_churn=0.2)
        snapshots, _known = inferred_snapshots(internet, config, seed=2)
        assert len(snapshots) == 4
        sets = [link_set(s) for s in snapshots]
        assert any(sets[0] != other for other in sets[1:])

    def test_zero_churn_means_identical_months(self, internet):
        config = InferenceConfig(num_snapshots=3, snapshot_churn=0.0)
        snapshots, _known = inferred_snapshots(internet, config, seed=2)
        sets = [link_set(s) for s in snapshots]
        assert sets[0] == sets[1] == sets[2]

    def test_snapshots_preserve_as_metadata(self, internet):
        snapshots, _known = inferred_snapshots(internet, seed=2)
        some_asn = next(iter(internet.graph.asns()))
        assert snapshots[0].get_as(some_asn).name == internet.graph.get_as(some_asn).name
