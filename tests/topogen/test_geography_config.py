"""Tests for the world map and generator configuration."""

import math

import pytest

from repro.topogen.config import TopologyConfig, small_config
from repro.topogen.geography import CONTINENTS, build_world, distance_km


class TestWorld:
    def test_every_continent_has_countries(self):
        world = build_world()
        for continent in CONTINENTS:
            assert world.countries_in(continent), continent

    def test_country_lookup(self):
        world = build_world()
        assert world.continent_of("BR") == "SA"
        assert world.continent_of("DE") == "EU"
        assert world.cities_in_country("US")

    def test_all_cities_unique_names_within_country(self):
        world = build_world()
        for country in world.countries.values():
            names = [city.name for city in country.cities]
            assert len(names) == len(set(names))

    def test_capital_is_first_city(self):
        world = build_world()
        us = world.countries["US"]
        assert us.capital == us.cities[0]

    def test_city_continent_matches_country(self):
        world = build_world()
        for city in world.all_cities():
            assert city.continent == world.continent_of(city.country)


class TestDistance:
    def test_zero_distance_to_self(self):
        world = build_world()
        city = world.all_cities()[0]
        assert distance_km(city, city) == pytest.approx(0.0)

    def test_symmetry(self):
        world = build_world()
        a, b = world.all_cities()[0], world.all_cities()[10]
        assert distance_km(a, b) == pytest.approx(distance_km(b, a))

    def test_known_distance_roughly_right(self):
        world = build_world()
        cities = {c.name: c for c in world.all_cities()}
        ny_london = distance_km(cities["New York"], cities["London"])
        # Great-circle NY-London is about 5,570 km.
        assert 5000 < ny_london < 6100

    def test_transpacific_longer_than_domestic(self):
        world = build_world()
        cities = {c.name: c for c in world.all_cities()}
        assert distance_km(cities["New York"], cities["Tokyo"]) > distance_km(
            cities["New York"], cities["Chicago"]
        )


class TestTopologyConfig:
    def test_default_validates(self):
        TopologyConfig().validate()
        small_config().validate()

    def test_rejects_bad_rate(self):
        config = TopologyConfig(selective_export_rate=1.5)
        with pytest.raises(ValueError):
            config.validate()

    def test_rejects_negative_count(self):
        config = TopologyConfig(num_stubs=-1)
        with pytest.raises(ValueError):
            config.validate()

    def test_rejects_single_tier1(self):
        config = TopologyConfig(num_tier1=1)
        with pytest.raises(ValueError):
            config.validate()
