"""Tests for Internet JSON serialization."""

import pytest

from repro.bgp import BGPSimulator
from repro.topogen import generate_internet
from repro.topogen.config import small_config
from repro.topogen.serialization import (
    internet_from_dict,
    internet_to_dict,
    load_internet,
    save_internet,
)
from repro.topology.serial import link_set


@pytest.fixture(scope="module")
def internet():
    return generate_internet(small_config(), seed=101)


@pytest.fixture(scope="module")
def reloaded(internet, tmp_path_factory):
    path = tmp_path_factory.mktemp("data") / "internet.json"
    save_internet(internet, path)
    return load_internet(path)


class TestRoundtrip:
    def test_graph_identical(self, internet, reloaded):
        assert link_set(reloaded.graph) == link_set(internet.graph)
        for asn in internet.graph.asns():
            assert reloaded.graph.get_as(asn) == internet.graph.get_as(asn)

    def test_policies_identical(self, internet, reloaded):
        assert set(reloaded.policies) == set(internet.policies)
        for asn, policy in internet.policies.items():
            assert reloaded.policies[asn] == policy

    def test_prefixes_and_interconnects(self, internet, reloaded):
        assert reloaded.prefixes == internet.prefixes
        assert set(reloaded.interconnects) == set(internet.interconnects)
        for key, interconnect in internet.interconnects.items():
            assert reloaded.interconnects[key] == interconnect

    def test_router_and_location_data(self, internet, reloaded):
        assert reloaded.router_ips == internet.router_ips
        assert reloaded.ip_locations == internet.ip_locations
        assert reloaded.home_city == internet.home_city
        assert reloaded.presence_cities == internet.presence_cities

    def test_registries(self, internet, reloaded):
        for record in internet.whois:
            assert reloaded.whois.get(record.asn) == record
        assert list(reloaded.soa.records()) == list(internet.soa.records())
        assert reloaded.orgs == internet.orgs
        assert reloaded.cables.cable_asns() == internet.cables.cable_asns()

    def test_complex_relationships(self, internet, reloaded):
        assert (
            reloaded.complex_truth.hybrid_entries()
            == internet.complex_truth.hybrid_entries()
        )
        assert (
            reloaded.complex_truth.partial_transit_entries()
            == internet.complex_truth.partial_transit_entries()
        )

    def test_content(self, internet, reloaded):
        assert len(reloaded.content) == len(internet.content)
        for original, parsed in zip(internet.content, reloaded.content):
            assert parsed.name == original.name
            assert parsed.asns == original.asns
            assert parsed.replicas == original.replicas

    def test_eyeballs_preserve_order(self, internet, reloaded):
        assert reloaded.eyeball_asns == internet.eyeball_asns


class TestFunctionalEquivalence:
    def test_routing_identical_after_reload(self, internet, reloaded):
        """BGP convergence on the reloaded Internet matches the original."""
        origin = internet.content[0].asns[0]
        prefix = internet.prefixes[origin][-1]
        paths = []
        for world in (internet, reloaded):
            sim = BGPSimulator(
                world.graph, policies=world.policies, country_of=world.country_of
            )
            sim.originate(origin, prefix)
            paths.append(
                {
                    asn: sim.forwarding_path(asn, prefix)
                    for asn in sorted(world.graph.asns())[:100]
                }
            )
        assert paths[0] == paths[1]


class TestErrors:
    def test_version_check(self, internet):
        data = internet_to_dict(internet)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            internet_from_dict(data)

    def test_unknown_city_rejected(self, internet):
        data = internet_to_dict(internet)
        data["home_city"][next(iter(data["home_city"]))] = "Atlantis"
        with pytest.raises(ValueError):
            internet_from_dict(data)
