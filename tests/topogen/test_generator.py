"""Structural invariants of the synthetic Internet generator."""

import pytest

from repro.topogen import generate_internet
from repro.topogen.config import TopologyConfig, small_config
from repro.topology.asys import ASRole
from repro.topology.relationships import Relationship


@pytest.fixture(scope="module")
def internet():
    return generate_internet(small_config(), seed=123)


class TestPopulations:
    def test_all_roles_present(self, internet):
        roles = {asys.role for asys in internet.graph.ases()}
        assert ASRole.TRANSIT in roles
        assert ASRole.EYEBALL in roles
        assert ASRole.CABLE in roles
        assert roles & {ASRole.CONTENT, ASRole.CDN}

    def test_tier1_clique(self, internet):
        tier1s = [
            asn
            for asn in internet.graph.asns()
            if not internet.graph.providers(asn)
            and not internet.graph.siblings(asn)
            and len(internet.graph.customer_cone(asn)) > 10
            and internet.graph.get_as(asn).role is not ASRole.CABLE
        ]
        assert len(tier1s) >= 2
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1:]:
                assert internet.graph.relationship(a, b) is Relationship.PEER

    def test_every_as_has_metadata(self, internet):
        for asn in internet.graph.asns():
            assert asn in internet.home_city
            assert internet.presence_cities[asn]
            assert internet.whois.get(asn) is not None
            asys = internet.graph.get_as(asn)
            assert asys.country in asys.presence

    def test_customer_provider_hierarchy_is_acyclic(self, internet):
        """No AS can be in its own customer cone via someone else."""
        for asn in internet.graph.asns():
            cone = internet.graph.customer_cone(asn)
            for provider in internet.graph.providers(asn):
                assert provider not in cone or provider == asn

    def test_sibling_groups_share_org(self, internet):
        for a, b, rel in internet.graph.links():
            if rel is Relationship.SIBLING:
                assert (
                    internet.graph.get_as(a).org_id
                    == internet.graph.get_as(b).org_id
                )


class TestAddressing:
    def test_prefixes_are_disjoint(self, internet):
        all_prefixes = [
            prefix for plist in internet.prefixes.values() for prefix in plist
        ]
        for i, a in enumerate(all_prefixes):
            for b in all_prefixes[i + 1:]:
                assert not a.covers(b) and not b.covers(a), (a, b)

    def test_every_as_originates_prefixes(self, internet):
        for asn in internet.graph.asns():
            assert internet.prefixes[asn], f"AS{asn} has no prefixes"

    def test_interconnect_per_link(self, internet):
        for a, b, _rel in internet.graph.links():
            interconnect = internet.interconnect(a, b)
            assert interconnect is not None
            assert interconnect.ip_of(a) != interconnect.ip_of(b)
            assert interconnect.subnet.contains(interconnect.ip_of(a))
            assert interconnect.subnet.contains(interconnect.ip_of(b))

    def test_interconnect_owner_is_endpoint_and_owns_subnet(self, internet):
        trie = internet.origin_trie()
        for interconnect in internet.interconnects.values():
            assert interconnect.owner in (interconnect.a, interconnect.b)
            mapped = trie.lookup(interconnect.subnet.first_address())
            assert mapped == interconnect.owner

    def test_interconnect_ip_of_rejects_stranger(self, internet):
        interconnect = next(iter(internet.interconnects.values()))
        with pytest.raises(ValueError):
            interconnect.ip_of(999999)

    def test_router_ips_located(self, internet):
        for (asn, city_name), ip in internet.router_ips.items():
            city = internet.ip_locations[ip.value]
            assert city.name == city_name


class TestContent:
    def test_replicas_resolve_to_prefix_owner(self, internet):
        trie = internet.origin_trie()
        for provider in internet.content:
            for replica in provider.all_replicas():
                assert trie.lookup(replica.ip) == replica.asn

    def test_cdns_have_offnet_replicas(self, internet):
        cdn_providers = [
            p
            for p in internet.content
            if internet.graph.get_as(p.asns[0]).role is ASRole.CDN
        ]
        assert cdn_providers
        for provider in cdn_providers:
            hosts = {replica.asn for replica in provider.all_replicas()}
            assert hosts - set(provider.asns), "CDN lacks off-net caches"

    def test_dns_names_have_replicas(self, internet):
        for provider in internet.content:
            for dns_name in provider.dns_names:
                assert provider.replicas.get(dns_name)


class TestPolicyInjection:
    def test_deviations_present(self, internet):
        policies = internet.policies.values()
        assert any(p.selective_export for p in policies)
        assert any(p.prefix_local_pref for p in policies)
        assert any(p.neighbor_local_pref for p in policies)
        assert any(p.prefers_domestic for p in policies)
        assert any(p.export_prepend for p in policies)
        assert any(p.partial_transit_to for p in policies)

    def test_selective_export_never_empty_neighbor_set(self, internet):
        for asn, policy in internet.policies.items():
            for prefix, allowed in policy.selective_export.items():
                assert allowed, f"AS{asn} exports {prefix} to nobody"
                assert allowed <= set(internet.graph.neighbors(asn))

    def test_cable_registry_matches_roles(self, internet):
        for asn in internet.cables.cable_asns():
            assert internet.graph.get_as(asn).role is ASRole.CABLE


class TestDeterminism:
    def test_same_seed_same_internet(self):
        a = generate_internet(small_config(), seed=5)
        b = generate_internet(small_config(), seed=5)
        assert set(a.graph.asns()) == set(b.graph.asns())
        assert list(a.graph.links()) == list(b.graph.links())
        assert a.prefixes == b.prefixes

    def test_different_seed_different_wiring(self):
        a = generate_internet(small_config(), seed=5)
        b = generate_internet(small_config(), seed=6)
        assert list(a.graph.links()) != list(b.graph.links())

    def test_validation_runs_on_generate(self):
        with pytest.raises(ValueError):
            generate_internet(TopologyConfig(num_tier1=0), seed=0)
