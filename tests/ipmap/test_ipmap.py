"""Tests for IP-to-AS mapping, geolocation, and path conversion."""

import pytest

from repro.dataplane.traceroute import TracerouteHop, TracerouteResult
from repro.ipmap import ASLevelPath, GeoDatabase, IPToASMapper, convert_traceroute
from repro.ipmap.path_conversion import path_decisions
from repro.net.ip import IPAddress, Prefix
from repro.topogen import generate_internet
from repro.topogen.config import small_config


def _mapper():
    return IPToASMapper(
        [
            (Prefix.parse("10.1.0.0/16"), 1),
            (Prefix.parse("10.2.0.0/16"), 2),
            (Prefix.parse("10.3.0.0/16"), 3),
        ]
    )


def _result(hop_ips, destination="10.3.0.9", source_asn=1, reached=True):
    hops = [
        TracerouteHop(ip=None if ip is None else IPAddress.parse(ip), rtt=1.0)
        for ip in hop_ips
    ]
    return TracerouteResult(
        source_asn=source_asn,
        source_ip=IPAddress.parse("10.1.0.1"),
        destination_ip=IPAddress.parse(destination),
        hops=hops,
        reached=reached,
    )


class TestIPToASMapper:
    def test_lookup(self):
        mapper = _mapper()
        assert mapper.lookup(IPAddress.parse("10.2.3.4")) == 2
        assert mapper.lookup(IPAddress.parse("172.16.0.1")) is None
        assert mapper.lookup_prefix(IPAddress.parse("10.2.3.4")) == Prefix.parse(
            "10.2.0.0/16"
        )

    def test_from_prefix_map(self):
        mapper = IPToASMapper.from_prefix_map({7: [Prefix.parse("10.9.0.0/16")]})
        assert mapper.lookup(IPAddress.parse("10.9.1.1")) == 7
        assert len(mapper) == 1


class TestConvertTraceroute:
    def test_clean_conversion(self):
        path = convert_traceroute(
            _result(["10.1.0.5", "10.2.0.5", "10.3.0.5", "10.3.0.9"]), _mapper()
        )
        assert path.hops == (1, 2, 3)
        assert path.complete
        assert path.source_asn == 1
        assert path.destination_asn == 3

    def test_consecutive_duplicates_collapse(self):
        path = convert_traceroute(
            _result(["10.1.0.5", "10.1.0.6", "10.2.0.5", "10.2.0.9", "10.3.0.9"]),
            _mapper(),
        )
        assert path.hops == (1, 2, 3)

    def test_gap_within_same_as_stays_complete(self):
        path = convert_traceroute(
            _result(["10.1.0.5", None, "10.1.0.6", "10.2.0.5", "10.3.0.9"]),
            _mapper(),
        )
        assert path.hops == (1, 2, 3)
        assert path.complete

    def test_gap_between_ases_marks_incomplete(self):
        path = convert_traceroute(
            _result(["10.1.0.5", None, "10.2.0.5", "10.3.0.9"]), _mapper()
        )
        assert path.hops == (1, 2, 3)
        assert not path.complete

    def test_unmapped_hop_bridged(self):
        path = convert_traceroute(
            _result(["10.1.0.5", "192.0.2.1", "10.2.0.5", "10.3.0.9"]), _mapper()
        )
        assert path.hops == (1, 2, 3)
        assert not path.complete

    def test_unreached_returns_none(self):
        assert convert_traceroute(_result(["10.1.0.5"], reached=False), _mapper()) is None

    def test_unmapped_destination_returns_none(self):
        result = _result(["10.1.0.5"], destination="192.0.2.9")
        assert convert_traceroute(result, _mapper()) is None

    def test_destination_appended_if_missing(self):
        # Trace cut short before the destination's own AS responded.
        path = convert_traceroute(_result(["10.1.0.5", "10.2.0.5"]), _mapper())
        assert path.hops == (1, 2, 3)

    def test_path_decisions(self):
        path = ASLevelPath(source_asn=1, destination_asn=3, hops=(1, 2, 3), complete=True)
        assert path_decisions(path) == [(1, 2), (2, 3)]
        assert path.adjacencies() == ((1, 2), (2, 3))


class TestGeoDatabase:
    def test_from_internet_coverage(self):
        internet = generate_internet(small_config(), seed=9)
        geo = GeoDatabase.from_internet(internet, error_rate=0.0, miss_rate=0.0, seed=0)
        assert len(geo) == len(internet.ip_locations)
        some_ip_value, city = next(iter(internet.ip_locations.items()))
        assert geo.city_of(IPAddress(some_ip_value)) == city

    def test_miss_rate_drops_entries(self):
        internet = generate_internet(small_config(), seed=9)
        geo = GeoDatabase.from_internet(internet, error_rate=0.0, miss_rate=0.5, seed=0)
        assert len(geo) < len(internet.ip_locations)

    def test_error_rate_misplaces_entries(self):
        internet = generate_internet(small_config(), seed=9)
        geo = GeoDatabase.from_internet(internet, error_rate=1.0, miss_rate=0.0, seed=0)
        wrong = 0
        for value, truth in list(internet.ip_locations.items())[:200]:
            located = geo.city_of(IPAddress(value))
            if located != truth:
                wrong += 1
        assert wrong > 100

    def test_country_continent_helpers(self):
        geo = GeoDatabase()
        from repro.topogen.geography import City

        geo.add(IPAddress.parse("10.0.0.1"), City("Paris", "FR", "EU", 48.9, 2.4))
        ip = IPAddress.parse("10.0.0.1")
        assert geo.country_of(ip) == "FR"
        assert geo.continent_of(ip) == "EU"
        assert ip in geo
        missing = IPAddress.parse("10.0.0.2")
        assert geo.city_of(missing) is None
        assert geo.continents_of_path([ip, missing]) == ["EU", None]
