"""Tests for the fault-injected, resumable campaign runner."""

import pytest

from repro.atlas import (
    CampaignConfig,
    CreditLedger,
    dump_measurements,
    generate_probes,
    run_campaign,
    run_resilient_campaign,
)
from repro.faults import FaultPlan, FaultSite
from repro.topogen import generate_internet
from repro.topogen.config import small_config

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def world():
    internet = generate_internet(small_config(), seed=77)
    probes = generate_probes(internet, count=24, seed=77)
    return internet, probes


#: A plan exercising every campaign-side fault site.
FULL_PLAN = FaultPlan(
    seed=5,
    rates={
        FaultSite.PROBE_DROPOUT: 0.08,
        FaultSite.PROBE_FLAP: 0.10,
        FaultSite.DNS_SERVFAIL: 0.05,
        FaultSite.DNS_TIMEOUT: 0.10,
        FaultSite.TRACEROUTE_TRUNCATE: 0.05,
        FaultSite.TRACEROUTE_LOOP: 0.04,
        FaultSite.TRACEROUTE_GARBLE: 0.05,
        FaultSite.API_RATE_LIMIT: 0.10,
        FaultSite.API_SERVER_ERROR: 0.05,
    },
)


class TestZeroPlan:
    def test_zero_plan_full_coverage(self, world):
        internet, probes = world
        dataset = run_resilient_campaign(
            internet, probes, CampaignConfig(seed=2, fault_plan=FaultPlan.none(2))
        )
        report = dataset.robustness
        assert report is not None
        assert report.completed == report.total_pairs == len(dataset.measurements)
        assert report.coverage() == 1.0
        assert report.accounted()
        assert not report.quarantined and not report.lost and not report.degraded

    def test_zero_plan_matches_classic_volume(self, world):
        internet, probes = world
        resilient = run_resilient_campaign(
            internet, probes, CampaignConfig(seed=2, fault_plan=FaultPlan.none(2))
        )
        classic = run_campaign(internet, probes, CampaignConfig(seed=2))
        # Replica choice draws differ (per-pair vs sequential stream),
        # but the campaign shape is the same: identical pair count and
        # probe coverage.
        assert len(resilient.measurements) == len(classic.measurements)
        assert {m.probe.probe_id for m in resilient.measurements} == {
            m.probe.probe_id for m in classic.measurements
        }


class TestFaultedCampaign:
    def test_deterministic_byte_identical_output(self, world):
        internet, probes = world
        config = lambda: CampaignConfig(seed=2, fault_plan=FULL_PLAN)  # noqa: E731
        first = run_resilient_campaign(internet, probes, config())
        second = run_resilient_campaign(internet, probes, config())
        assert dump_measurements(first.measurements) == dump_measurements(
            second.measurements
        )
        assert first.robustness.as_dict() == second.robustness.as_dict()

    def test_accounting_balances_against_fault_free_total(self, world):
        internet, probes = world
        faulted = run_resilient_campaign(
            internet, probes, CampaignConfig(seed=2, fault_plan=FULL_PLAN)
        )
        fault_free = run_resilient_campaign(
            internet, probes, CampaignConfig(seed=2, fault_plan=FaultPlan.none(2))
        )
        report = faulted.robustness
        assert report.accounted()
        assert report.total_pairs == len(fault_free.measurements)
        assert (
            report.completed
            + report.degraded_total()
            + report.quarantined_total()
            + report.lost_total()
            == len(fault_free.measurements)
        )

    def test_every_fault_family_observed(self, world):
        internet, probes = world
        report = run_resilient_campaign(
            internet, probes, CampaignConfig(seed=2, fault_plan=FULL_PLAN)
        ).robustness
        assert report.lost.get("probe-dropout", 0) > 0
        assert any(reason.startswith("exhausted:") for reason in report.lost)
        assert report.quarantined_total() > 0
        assert report.degraded_total() > 0
        assert report.retry.retries > 0
        assert report.retry.succeeded_after_retry > 0

    def test_per_as_coverage_consistent(self, world):
        internet, probes = world
        report = run_resilient_campaign(
            internet, probes, CampaignConfig(seed=2, fault_plan=FULL_PLAN)
        ).robustness
        assert sum(report.per_as_expected.values()) == report.total_pairs
        assert sum(report.per_as_observed.values()) == report.completed
        for asn, observed in report.per_as_observed.items():
            assert observed <= report.per_as_expected[asn]
            assert 0.0 <= report.as_coverage(asn) <= 1.0

    def test_truncated_traces_do_not_reach(self, world):
        internet, probes = world
        dataset = run_resilient_campaign(
            internet,
            probes,
            CampaignConfig(
                seed=2,
                fault_plan=FaultPlan(
                    seed=5, rates={FaultSite.TRACEROUTE_TRUNCATE: 1.0}
                ),
            ),
        )
        assert dataset.measurements
        assert not dataset.successful()
        assert dataset.robustness.degraded == {
            "truncated": dataset.robustness.total_pairs
        }


class TestBudgetAccounting:
    def test_classic_campaign_records_budget_skips(self, world):
        internet, probes = world
        names = sum(len(p.dns_names) for p in internet.content)
        ledger = CreditLedger(daily_budget=2 * names * 70 + 10)
        dataset = run_campaign(
            internet, probes, CampaignConfig(seed=1, ledger=ledger)
        )
        used = {m.probe.probe_id for m in dataset.measurements}
        skipped = {p.probe_id for p in dataset.budget_skipped}
        assert skipped, "budget-skipped probes must be recorded"
        assert not used & skipped
        assert used | skipped == {p.probe_id for p in probes}

    def test_resilient_budget_loss_distinguished(self, world):
        internet, probes = world
        names = sum(len(p.dns_names) for p in internet.content)
        ledger = CreditLedger(daily_budget=2 * names * 70 + 10)
        dataset = run_resilient_campaign(
            internet,
            probes,
            CampaignConfig(
                seed=1,
                ledger=ledger,
                fault_plan=FaultPlan(
                    seed=5, rates={FaultSite.PROBE_DROPOUT: 0.2}
                ),
            ),
        )
        report = dataset.robustness
        assert report.budget_skipped_probes
        assert report.lost.get("budget", 0) > 0
        # Budget loss and fault loss stay separate in the accounting.
        assert report.lost.get("probe-dropout", 0) > 0
        assert report.accounted()
        assert ledger.spent <= ledger.daily_budget
