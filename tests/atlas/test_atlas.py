"""Tests for the measurement platform: probes, selection, DNS, campaign."""

from collections import Counter

import pytest

from repro.atlas import (
    CampaignConfig,
    CDNResolver,
    generate_probes,
    run_campaign,
    select_probes_balanced,
    select_probes_greedy,
)
from repro.topogen import generate_internet
from repro.topogen.config import small_config


@pytest.fixture(scope="module")
def internet():
    return generate_internet(small_config(), seed=55)


@pytest.fixture(scope="module")
def probes(internet):
    return generate_probes(internet, count=600, seed=55)


class TestProbeGeneration:
    def test_count_and_hosting(self, internet, probes):
        assert len(probes) == 600
        hosts = set(internet.eyeball_asns)
        assert all(probe.asn in hosts for probe in probes)

    def test_europe_skew(self, probes):
        counts = Counter(probe.continent for probe in probes)
        assert counts["EU"] > counts["SA"]
        assert counts["EU"] > counts["AF"]

    def test_probe_ips_inside_host_prefix(self, internet, probes):
        trie = internet.origin_trie()
        for probe in probes[:100]:
            assert trie.lookup(probe.ip) == probe.asn

    def test_probe_ips_registered_for_geolocation(self, internet, probes):
        for probe in probes[:50]:
            assert internet.ip_locations.get(probe.ip.value) is not None

    def test_deterministic(self, internet):
        a = generate_probes(internet, count=100, seed=1)
        b = generate_probes(internet, count=100, seed=1)
        assert a == b


class TestBalancedSelection:
    def test_per_continent_cap(self, probes):
        selected = select_probes_balanced(probes, per_continent=20, seed=0)
        counts = Counter(probe.continent for probe in selected)
        assert all(count <= 20 for count in counts.values())

    def test_small_continents_fully_used(self, probes):
        population = Counter(probe.continent for probe in probes)
        selected = select_probes_balanced(probes, per_continent=10 ** 6, seed=0)
        assert len(selected) == len(probes)
        assert Counter(p.continent for p in selected) == population

    def test_as_diversity(self, probes):
        selected = select_probes_balanced(probes, per_continent=30, seed=0)
        # Round-robin across ASes: few duplicate ASes among the picks.
        by_continent = {}
        for probe in selected:
            by_continent.setdefault(probe.continent, []).append(probe)
        for continent_probes in by_continent.values():
            asns = [p.asn for p in continent_probes]
            available = len({p.asn for p in probes if p.continent == continent_probes[0].continent})
            assert len(set(asns)) >= min(len(asns), available) * 0.8

    def test_no_duplicates(self, probes):
        selected = select_probes_balanced(probes, per_continent=25, seed=0)
        ids = [p.probe_id for p in selected]
        assert len(ids) == len(set(ids))


class TestGreedySelection:
    def test_maximizes_coverage(self, probes):
        coverage = {
            probe.probe_id: frozenset({probe.asn, probe.asn % 7}) for probe in probes
        }
        selected = select_probes_greedy(
            probes, lambda p: coverage[p.probe_id], budget=5
        )
        assert len(selected) <= 5
        # First pick covers at least as much as any other single probe.
        first_gain = len(coverage[selected[0].probe_id])
        assert first_gain == max(len(c) for c in coverage.values())

    def test_stops_when_nothing_new(self, probes):
        same = frozenset({1, 2})
        selected = select_probes_greedy(probes, lambda p: same, budget=10)
        assert len(selected) == 1

    def test_zero_budget(self, probes):
        assert select_probes_greedy(probes, lambda p: frozenset(), budget=0) == []


class TestCDNResolver:
    def test_resolves_known_names(self, internet, probes):
        resolver = CDNResolver(internet, seed=1)
        names = resolver.names()
        assert names
        replica = resolver.resolve(names[0], probes[0])
        assert replica is not None

    def test_unknown_name(self, internet, probes):
        resolver = CDNResolver(internet, seed=1)
        assert resolver.resolve("nonexistent.example", probes[0]) is None

    def test_locality_prefers_nearby(self, internet, probes):
        from repro.topogen.geography import distance_km

        resolver = CDNResolver(internet, seed=1, locality=1)
        for probe in probes[:20]:
            for name in resolver.names():
                replica = resolver.resolve(name, probe)
                others = [
                    r
                    for r in internet.content[0].replicas.get(name, [])
                ]
                if replica is None or not others:
                    continue
                best = min(distance_km(probe.city, r.city) for r in others)
                # With locality=1 the answer is the closest replica of
                # that name (ties broken deterministically).
                if replica in others:
                    assert distance_km(probe.city, replica.city) == pytest.approx(
                        best
                    )

    def test_invalid_locality(self, internet):
        with pytest.raises(ValueError):
            CDNResolver(internet, locality=0)


class TestCampaign:
    def test_campaign_end_to_end(self, internet, probes):
        selected = select_probes_balanced(probes, per_continent=5, seed=0)
        dataset = run_campaign(internet, selected, CampaignConfig(seed=3))
        assert dataset.measurements
        reached = dataset.successful()
        assert len(reached) >= 0.8 * len(dataset.measurements)
        # Destination ASes cover content and (for CDNs) eyeball hosts.
        assert dataset.destination_asns
        for asn in dataset.destination_asns:
            assert dataset.destination_prefixes[asn]
        # Announced trie maps every replica covered by it to its host.
        for measurement in reached[:50]:
            match = dataset.announced.lookup_with_prefix(
                measurement.traceroute.destination_ip
            )
            assert match is not None
            assert match[1] == measurement.replica.asn
