"""Tests for Atlas-style JSON serialization of measurements."""

import json

import pytest

from repro.atlas.api import (
    dump_measurements,
    load_measurements,
    traceroute_from_json,
    traceroute_to_json,
)
from repro.dataplane.traceroute import TracerouteHop, TracerouteResult
from repro.net.ip import IPAddress


def _result(reached=True, with_star=True):
    hops = [
        TracerouteHop(ip=IPAddress.parse("10.0.0.1"), rtt=1.5),
        TracerouteHop(ip=None, rtt=None) if with_star else TracerouteHop(
            ip=IPAddress.parse("10.0.0.2"), rtt=2.0
        ),
        TracerouteHop(ip=IPAddress.parse("10.0.0.3"), rtt=9.25),
    ]
    return TracerouteResult(
        source_asn=65001,
        source_ip=IPAddress.parse("10.1.0.1"),
        destination_ip=IPAddress.parse("10.0.0.3"),
        hops=hops,
        reached=reached,
    )


class TestJSONRoundtrip:
    def test_roundtrip_preserves_everything(self):
        original = _result()
        document = traceroute_to_json(original, probe_id=42)
        parsed = traceroute_from_json(document)
        assert parsed.source_asn == original.source_asn
        assert parsed.source_ip == original.source_ip
        assert parsed.destination_ip == original.destination_ip
        assert parsed.reached == original.reached
        assert parsed.hops == original.hops

    def test_star_hop_shape(self):
        document = traceroute_to_json(_result())
        star = document["result"][1]
        assert star["result"] == [{"x": "*"}]

    def test_document_is_json_serializable(self):
        document = traceroute_to_json(_result())
        json.dumps(document)

    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError):
            traceroute_from_json({"type": "ping"})


class TestJSONLines:
    def test_dump_and_load_campaign(self, study):
        sample = study.dataset.measurements[:20]
        text = dump_measurements(sample)
        results = load_measurements(text)
        assert len(results) == len(sample)
        for original, parsed in zip(sample, results):
            assert parsed.destination_ip == original.traceroute.destination_ip
            assert parsed.hops == original.traceroute.hops

    def test_empty_dump(self):
        assert dump_measurements([]) == ""
        assert load_measurements("") == []

    def test_bad_json_rejected(self):
        with pytest.raises(ValueError):
            load_measurements("{not json}")
