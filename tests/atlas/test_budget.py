"""Tests for measurement-credit accounting and budgeted campaigns."""

import pytest

from repro.atlas import CampaignConfig, generate_probes, run_campaign
from repro.atlas.budget import BudgetExceeded, CreditLedger, plan_campaign
from repro.topogen import generate_internet
from repro.topogen.config import small_config


class TestCreditLedger:
    def test_charging_decrements(self):
        ledger = CreditLedger(daily_budget=100)
        ledger.charge("dns")  # 10
        ledger.charge("traceroute")  # 60
        assert ledger.spent == 70
        assert ledger.remaining == 30
        assert ledger.history == [("dns", 1), ("traceroute", 1)]

    def test_budget_exceeded(self):
        ledger = CreditLedger(daily_budget=50)
        with pytest.raises(BudgetExceeded):
            ledger.charge("traceroute")
        assert ledger.spent == 0

    def test_can_afford_and_max_affordable(self):
        ledger = CreditLedger(daily_budget=130)
        assert ledger.can_afford("traceroute", 2)
        assert not ledger.can_afford("traceroute", 3)
        assert ledger.max_affordable("traceroute") == 2
        assert ledger.max_affordable("dns") == 13

    def test_unknown_type_rejected(self):
        ledger = CreditLedger(daily_budget=100)
        with pytest.raises(ValueError):
            ledger.charge("http")
        with pytest.raises(ValueError):
            ledger.max_affordable("http")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            CreditLedger(daily_budget=-1)

    def test_batch_charge(self):
        ledger = CreditLedger(daily_budget=1000)
        cost = ledger.charge("dns", count=5)
        assert cost == 50
        assert ledger.spent == 50


class TestCreditLedgerConcurrency:
    """Regression: charge() must be atomic under concurrent spenders.

    The serve daemon charges one tenant's ledger from many worker
    threads at once.  Before the lock, the affordability check and the
    debit were separate steps, so two racing threads could both pass
    the check and jointly overdraw the budget.
    """

    def test_racing_charges_never_overdraw(self):
        import threading

        # Exactly 20 dns charges fit; 80 attempts race for them.
        ledger = CreditLedger(daily_budget=200)
        admitted = []
        barrier = threading.Barrier(8)

        def spender():
            barrier.wait()
            for _ in range(10):
                try:
                    ledger.charge("dns")
                except BudgetExceeded:
                    pass
                else:
                    admitted.append(1)

        threads = [threading.Thread(target=spender) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(admitted) == 20
        assert ledger.spent == 200
        assert ledger.remaining == 0
        assert len(ledger.history) == 20

    def test_ledger_survives_pickling_without_its_lock(self):
        """Ledgers ride to process-pool workers; locks cannot."""
        import pickle

        ledger = CreditLedger(daily_budget=100)
        ledger.charge("dns")
        clone = pickle.loads(pickle.dumps(ledger))
        assert clone.spent == 10
        # The revived ledger has a fresh, working lock.
        clone.charge("dns")
        assert clone.spent == 20


class TestPlanCampaign:
    def test_full_coverage_when_rich(self):
        ledger = CreditLedger(daily_budget=10 ** 6)
        probes, measurements = plan_campaign(ledger, num_probes=10, num_targets=5)
        assert probes == 10
        assert measurements == 50

    def test_probes_dropped_when_poor(self):
        # One probe x 5 targets costs 5 * 70 = 350 credits.
        ledger = CreditLedger(daily_budget=700)
        probes, measurements = plan_campaign(ledger, num_probes=10, num_targets=5)
        assert probes == 2
        assert measurements == 10

    def test_zero_cases(self):
        ledger = CreditLedger(daily_budget=100)
        assert plan_campaign(ledger, 0, 5) == (0, 0)
        assert plan_campaign(ledger, 5, 0) == (0, 0)
        with pytest.raises(ValueError):
            plan_campaign(ledger, -1, 5)


class TestBudgetedCampaign:
    def test_ledger_caps_probe_sweeps(self):
        internet = generate_internet(small_config(), seed=66)
        probes = generate_probes(internet, count=30, seed=66)
        # Budget for roughly two probes' sweeps only.
        num_names = sum(len(p.dns_names) for p in internet.content)
        ledger = CreditLedger(daily_budget=2 * num_names * 70 + 10)
        dataset = run_campaign(
            internet, probes, CampaignConfig(seed=1, ledger=ledger)
        )
        probes_used = {m.probe.probe_id for m in dataset.measurements}
        assert len(probes_used) <= 3
        assert ledger.spent <= ledger.daily_budget

    def test_unbudgeted_campaign_unlimited(self):
        internet = generate_internet(small_config(), seed=66)
        probes = generate_probes(internet, count=10, seed=66)
        dataset = run_campaign(internet, probes, CampaignConfig(seed=1))
        probes_used = {m.probe.probe_id for m in dataset.measurements}
        assert len(probes_used) == 10
