"""Round-trip fuzz tests for the Atlas JSON layer (quarantine-not-crash).

Every mutation a hostile or lossy result feed can produce must either
parse cleanly or raise the structured
:class:`~repro.faults.errors.MalformedResultError` — never a bare
``KeyError``/``AttributeError``/``TypeError`` — and the resilient
loader must quarantine instead of crashing.
"""

import json
import random

import pytest

from repro.atlas.api import (
    load_measurements,
    load_measurements_resilient,
    traceroute_from_json,
    traceroute_to_json,
)
from repro.dataplane.traceroute import TracerouteHop, TracerouteResult
from repro.faults import MalformedResultError
from repro.net.ip import IPAddress

pytestmark = pytest.mark.faults


def _document(num_hops=4):
    hops = [
        TracerouteHop(ip=IPAddress.parse(f"10.0.0.{i + 1}"), rtt=1.0 + i)
        for i in range(num_hops)
    ]
    result = TracerouteResult(
        source_asn=65001,
        source_ip=IPAddress.parse("10.1.0.1"),
        destination_ip=IPAddress.parse(f"10.0.0.{num_hops}"),
        hops=hops,
        reached=True,
    )
    return traceroute_to_json(result, probe_id=7)


def _hops(document):
    """The hop list, or [] when an earlier stacked mutation replaced it."""
    result = document.get("result")
    return result if isinstance(result, list) else []


#: Named mutations covering the satellite checklist: missing keys,
#: empty result arrays, non-traceroute types, duplicate hops, plus the
#: shapes the garbler produces.
MUTATIONS = {
    "drop-from_asn": lambda d: {k: v for k, v in d.items() if k != "from_asn"},
    "drop-src_addr": lambda d: {k: v for k, v in d.items() if k != "src_addr"},
    "drop-dst_addr": lambda d: {k: v for k, v in d.items() if k != "dst_addr"},
    "drop-type": lambda d: {k: v for k, v in d.items() if k != "type"},
    "ping-type": lambda d: {**d, "type": "ping"},
    "empty-result": lambda d: {**d, "result": []},
    "result-not-list": lambda d: {**d, "result": "garbled"},
    "hop-not-dict": lambda d: {**d, "result": _hops(d)[:1] + ["junk"]},
    "replies-not-list": lambda d: {
        **d,
        "result": [{"hop": 1, "result": 42}] + _hops(d)[1:],
    },
    "bad-hop-ip": lambda d: {
        **d,
        "result": [{"hop": 1, "result": [{"from": "not.an.ip", "rtt": 1.0}]}],
    },
    "bad-rtt": lambda d: {
        **d,
        "result": [{"hop": 1, "result": [{"from": "10.0.0.1", "rtt": "fast"}]}],
    },
    "bad-asn": lambda d: {**d, "from_asn": "sixty-five"},
    "duplicate-hops": lambda d: {**d, "result": _hops(d) + _hops(d)},
    "null-src": lambda d: {**d, "src_addr": None},
}

class TestMutations:
    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_mutation_quarantines_or_parses(self, name):
        document = MUTATIONS[name](_document())
        try:
            parsed = traceroute_from_json(document)
        except MalformedResultError as error:
            assert error.reason  # structured, not a bare ValueError
        else:
            # The mutations that survive parsing are the benign ones.
            assert name in ("empty-result", "duplicate-hops")
            assert parsed.source_asn == 65001

    def test_empty_result_array_parses_to_no_hops(self):
        parsed = traceroute_from_json(MUTATIONS["empty-result"](_document()))
        assert parsed.hops == []

    def test_duplicate_hops_preserved_for_downstream(self):
        parsed = traceroute_from_json(MUTATIONS["duplicate-hops"](_document(3)))
        assert len(parsed.hops) == 6

    def test_multi_reply_hop_prefers_reply_with_address(self):
        document = _document(2)
        # First reply timed out; second answered.  The seed parser took
        # replies[0] and reported a star — the answering reply must win.
        document["result"][0]["result"] = [
            {"x": "*"},
            {"from": "10.9.9.9", "rtt": 3.25},
        ]
        parsed = traceroute_from_json(document)
        assert parsed.hops[0].ip == IPAddress.parse("10.9.9.9")
        assert parsed.hops[0].rtt == 3.25

    def test_all_star_replies_still_star(self):
        document = _document(2)
        document["result"][0]["result"] = [{"x": "*"}, {"x": "*"}]
        parsed = traceroute_from_json(document)
        assert parsed.hops[0].ip is None


class TestSeededFuzz:
    @pytest.mark.parametrize("seed", [1234, 1235, 1236])
    def test_random_mutations_never_crash_unstructured(self, seed):
        rng = random.Random(seed)
        names = sorted(MUTATIONS)
        for round_number in range(300):
            document = _document(num_hops=rng.randint(0, 6))
            for _ in range(rng.randint(1, 3)):
                document = MUTATIONS[rng.choice(names)](document)
            try:
                traceroute_from_json(document)
            except MalformedResultError:
                pass  # structured quarantine path: acceptable
            # Any other exception type fails the test by propagating.

    @pytest.mark.parametrize("seed", [99, 100])
    def test_fuzzed_jsonl_quarantined_not_crashed(self, seed):
        rng = random.Random(seed)
        names = sorted(MUTATIONS)
        lines = []
        good = 0
        for index in range(100):
            document = _document()
            if rng.random() < 0.5:
                document = MUTATIONS[rng.choice(names)](document)
            else:
                good += 1
            lines.append(json.dumps(document))
        lines.insert(10, "{torn json")
        text = "\n".join(lines) + "\n"
        results, quarantined = load_measurements_resilient(text)
        assert len(results) + len(quarantined) == 101
        # Benign mutations may parse too, so >=; every clean line must.
        assert len(results) >= good
        reasons = {q.reason for q in quarantined}
        assert "invalid-json" in reasons

    def test_strict_loader_still_raises_value_error(self):
        with pytest.raises(ValueError):
            load_measurements('{"type": "ping"}\n')
        with pytest.raises(ValueError):
            load_measurements("{not json}\n")
