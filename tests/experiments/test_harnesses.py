"""Tests for the experiment harnesses and report rendering."""

import pytest

from repro.experiments import (
    alternate_routes,
    figure1,
    figure2,
    figure3,
    poisoning_dataset,
    psp_validation,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.report import ExperimentReport, Row

ALL_HARNESSES = [
    figure1,
    figure2,
    figure3,
    table1,
    table2,
    table3,
    table4,
    alternate_routes,
    psp_validation,
    poisoning_dataset,
]


class TestReportRendering:
    def test_row_formats_units(self):
        row = Row(label="x", paper=12.34, measured=56.78)
        text = row.render(4)
        assert "12.3%" in text and "56.8%" in text

    def test_row_handles_missing_values(self):
        row = Row(label="x", paper=None, measured=None)
        assert "-" in row.render(4)

    def test_report_render_contains_all_rows(self):
        report = ExperimentReport(experiment_id="T", title="demo")
        report.add("alpha", 1.0, 2.0)
        report.add("beta", None, 3.0, unit="")
        report.note("a note")
        text = report.render()
        assert "T: demo" in text
        assert "alpha" in text and "beta" in text
        assert "note: a note" in text
        assert report.measured_by_label()["alpha"] == 2.0
        assert str(report) == text


class TestHarnessesOnQuickStudy:
    @pytest.mark.parametrize("harness", ALL_HARNESSES, ids=lambda m: m.__name__)
    def test_run_produces_report(self, harness, study):
        report = harness.run(study)
        assert report.rows
        text = report.render()
        assert report.experiment_id in text

    def test_figure1_shape(self, study):
        assert figure1.shape_holds(study)

    def test_figure3_shape(self, study):
        assert figure3.shape_holds(study)

    def test_table1_shape(self, study):
        assert table1.shape_holds(study)

    def test_alternate_routes_shape(self, study):
        assert alternate_routes.shape_holds(study)

    def test_table2_without_active_raises(self, study):
        from dataclasses import replace

        stripped = replace(study, magnet_table=None)
        with pytest.raises(ValueError):
            table2.run(stripped)

    def test_poisoning_without_active_raises(self, study):
        from dataclasses import replace

        stripped = replace(study, discovery=None)
        with pytest.raises(ValueError):
            poisoning_dataset.run(stripped)
