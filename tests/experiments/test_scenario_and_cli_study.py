"""Tests for scenario caching and the CLI study command."""

import pytest

from repro.cli import main
from repro.experiments.scenario import quick_study


class TestScenarioCaching:
    def test_quick_study_memoized(self):
        assert quick_study() is quick_study()

    def test_different_seed_different_instance(self, study):
        other = quick_study(seed=1)
        assert other is not study
        assert other.config.seed == 1


class TestCLIStudy:
    def test_small_study_single_experiment(self, capsys):
        assert main(["study", "--small", "--seed", "3", "--experiment", "figure1"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "paper=" in output and "measured=" in output

    def test_markdown_output(self, tmp_path, capsys):
        out = tmp_path / "EXP.md"
        assert (
            main(
                [
                    "study",
                    "--small",
                    "--seed",
                    "3",
                    "--experiment",
                    "figure1",
                    "--markdown",
                    str(out),
                ]
            )
            == 0
        )
        text = out.read_text()
        assert "# EXPERIMENTS" in text
        assert "| metric | paper | measured |" in text
        assert "Shape check" in text

    def test_figures_output(self, tmp_path):
        figures_dir = tmp_path / "figs"
        assert (
            main(
                [
                    "study",
                    "--small",
                    "--seed",
                    "3",
                    "--experiment",
                    "figure1",
                    "--figures",
                    str(figures_dir),
                ]
            )
            == 0
        )
        for name in ("figure1.txt", "figure2.txt", "figure3.txt"):
            content = (figures_dir / name).read_text()
            assert content.strip()
