"""Tests for the plain-text figure renderers."""

import pytest

from repro.experiments.plots import bar_chart, cdf_plot, stacked_bar_chart


class TestBarChart:
    def test_renders_all_labels(self):
        text = bar_chart({"alpha": 50.0, "beta": 100.0})
        assert "alpha" in text and "beta" in text
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_values_clamped(self):
        text = bar_chart({"over": 150.0}, width=10)
        assert text.count("#") == 10

    def test_bad_width(self):
        with pytest.raises(ValueError):
            bar_chart({"x": 1.0}, width=0)
        with pytest.raises(ValueError):
            bar_chart({"x": 1.0}, max_value=0)

    def test_empty(self):
        assert bar_chart({}) == ""


class TestStackedBarChart:
    def test_stacks_to_width(self):
        rows = {
            "Simple": {"BS": 60.0, "NB": 40.0},
            "All": {"BS": 90.0, "NB": 10.0},
        }
        text = stacked_bar_chart(rows, width=20)
        lines = text.splitlines()
        assert len(lines) == 3  # two bars + legend
        for line in lines[:2]:
            inside = line[line.index("|") + 1 : line.rindex("|")]
            assert len(inside) == 20
        assert "#=BS" in lines[-1]

    def test_category_limit(self):
        rows = {"bar": {str(i): 10.0 for i in range(9)}}
        with pytest.raises(ValueError):
            stacked_bar_chart(rows)

    def test_width_guard(self):
        with pytest.raises(ValueError):
            stacked_bar_chart({"a": {"x": 100.0}}, width=2)


class TestCDFPlot:
    def test_empty(self):
        assert cdf_plot([]) == "(empty CDF)"

    def test_shape(self):
        fractions = [i / 10 for i in range(1, 11)]
        text = cdf_plot(fractions, width=30, height=8)
        lines = text.splitlines()
        assert lines[0].startswith("1.0 +")
        assert any(line.startswith("0.0 +") for line in lines)
        assert "*" in text and "." in text
        assert "rank 10" in text

    def test_guards(self):
        with pytest.raises(ValueError):
            cdf_plot([0.5], width=1)
        with pytest.raises(ValueError):
            cdf_plot([0.5], height=1)

    def test_skewed_cdf_sits_above_diagonal(self):
        # Heavily skewed: first rank owns 90% of mass.
        fractions = [0.9] + [0.9 + 0.1 * i / 9 for i in range(1, 10)]
        text = cdf_plot(fractions, width=30, height=10)
        lines = [line for line in text.splitlines() if "|" in line or "+" in line]
        # The star curve must appear in the top rows early on.
        top_rows = "".join(lines[:3])
        assert "*" in top_rows
