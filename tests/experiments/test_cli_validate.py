"""Tests for the validate CLI command."""

import pytest

from repro.cli import main


class TestValidate:
    def test_small_scenario_passes(self, capsys):
        exit_code = main(["validate", "--small", "--seed", "3"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "figure1" in output
        assert "all shape checks hold" in output

    def test_reports_per_experiment_verdicts(self, capsys):
        main(["validate", "--small", "--seed", "3"])
        output = capsys.readouterr().out
        for experiment_id in ("figure2", "table2", "alternate-routes"):
            assert experiment_id in output
