"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "poisoning-dataset" in output

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--small", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "serial format" in output
        assert "|" in output

    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "topo.txt"
        assert main(["generate", "--small", "--seed", "1", "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generated_file_parses_back(self, tmp_path):
        from repro.topology.serial import load_relationships

        out = tmp_path / "topo.txt"
        main(["generate", "--small", "--seed", "1", "--out", str(out)])
        graph = load_relationships(out)
        assert graph.num_links() > 100

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--experiment", "nope"])

    def test_bare_resume_parses_as_true(self):
        args = build_parser().parse_args(["study", "--run-dir", "d", "--resume"])
        assert args.resume is True

    def test_resume_with_file_parses_as_path(self):
        args = build_parser().parse_args(["study", "--resume", "c.jsonl"])
        assert args.resume == "c.jsonl"


class TestStudyFlagConflicts:
    """Persistence flags fail loudly instead of silently ignoring one."""

    def _err(self, capsys, argv):
        assert main(argv) == 2
        return capsys.readouterr().err

    def test_checkpoint_plus_resume_rejected(self, capsys):
        # Regression: --checkpoint used to be silently ignored whenever
        # --resume FILE was also given.
        err = self._err(
            capsys,
            ["study", "--small", "--checkpoint", "a.jsonl", "--resume", "b.jsonl"],
        )
        assert "mutually exclusive" in err

    def test_bare_resume_without_run_dir_rejected(self, capsys):
        err = self._err(capsys, ["study", "--small", "--resume"])
        assert "--run-dir" in err

    def test_run_dir_plus_checkpoint_rejected(self, capsys):
        err = self._err(
            capsys,
            ["study", "--small", "--run-dir", "d", "--checkpoint", "a.jsonl"],
        )
        assert "mutually exclusive" in err

    def test_run_dir_plus_shard_checkpoint_rejected(self, capsys):
        err = self._err(
            capsys,
            ["study", "--small", "--run-dir", "d", "--shard-checkpoint", "s.jsonl"],
        )
        assert "mutually exclusive" in err

    def test_run_dir_plus_resume_file_rejected(self, capsys):
        err = self._err(
            capsys,
            ["study", "--small", "--run-dir", "d", "--resume", "b.jsonl"],
        )
        assert "bare --resume" in err
