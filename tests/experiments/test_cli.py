"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "poisoning-dataset" in output

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--small", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "serial format" in output
        assert "|" in output

    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "topo.txt"
        assert main(["generate", "--small", "--seed", "1", "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generated_file_parses_back(self, tmp_path):
        from repro.topology.serial import load_relationships

        out = tmp_path / "topo.txt"
        main(["generate", "--small", "--seed", "1", "--out", str(out)])
        graph = load_relationships(out)
        assert graph.num_links() > 100

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--experiment", "nope"])

    def test_bare_resume_parses_as_true(self):
        args = build_parser().parse_args(["study", "--run-dir", "d", "--resume"])
        assert args.resume is True

    def test_resume_with_file_parses_as_path(self):
        args = build_parser().parse_args(["study", "--resume", "c.jsonl"])
        assert args.resume == "c.jsonl"


class TestStudyFlagConflicts:
    """Persistence flags fail loudly instead of silently ignoring one."""

    def _err(self, capsys, argv):
        assert main(argv) == 2
        return capsys.readouterr().err

    def test_checkpoint_plus_resume_rejected(self, capsys):
        # Regression: --checkpoint used to be silently ignored whenever
        # --resume FILE was also given.
        err = self._err(
            capsys,
            ["study", "--small", "--checkpoint", "a.jsonl", "--resume", "b.jsonl"],
        )
        assert "mutually exclusive" in err

    def test_bare_resume_without_run_dir_rejected(self, capsys):
        err = self._err(capsys, ["study", "--small", "--resume"])
        assert "--run-dir" in err

    def test_run_dir_plus_checkpoint_rejected(self, capsys):
        err = self._err(
            capsys,
            ["study", "--small", "--run-dir", "d", "--checkpoint", "a.jsonl"],
        )
        assert "mutually exclusive" in err

    def test_run_dir_plus_shard_checkpoint_rejected(self, capsys):
        err = self._err(
            capsys,
            ["study", "--small", "--run-dir", "d", "--shard-checkpoint", "s.jsonl"],
        )
        assert "mutually exclusive" in err

    def test_run_dir_plus_resume_file_rejected(self, capsys):
        err = self._err(
            capsys,
            ["study", "--small", "--run-dir", "d", "--resume", "b.jsonl"],
        )
        assert "bare --resume" in err


class TestServeQueryFlagConflicts:
    """The serve/query commands share the study commands' error shape:
    every pair lives in the one exclusion table, so the wording stays
    `X and Y are mutually exclusive: reason` everywhere."""

    def _err(self, capsys, argv):
        assert main(argv) == 2
        return capsys.readouterr().err

    def test_tenant_budget_plus_unmetered_rejected(self, capsys):
        err = self._err(
            capsys, ["serve", "--tenant-budget", "100", "--unmetered"]
        )
        assert "--tenant-budget and --unmetered are mutually exclusive" in err

    def test_stream_plus_out_rejected(self, capsys):
        err = self._err(
            capsys, ["query", "study", "--stream", "--out", "r.json"]
        )
        assert "--stream and --out are mutually exclusive" in err

    def test_every_table_entry_formats_consistently(self):
        from repro.cli import _FLAG_EXCLUSIONS, _conflict_message

        for command, pairs in _FLAG_EXCLUSIONS.items():
            for flag_a, flag_b, reason in pairs:
                message = _conflict_message(flag_a, flag_b, reason)
                assert message.startswith(f"{flag_a} and {flag_b} are ")
                assert "mutually exclusive: " in message
