"""Tests for the command-line front end."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "poisoning-dataset" in output

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "--small", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "serial format" in output
        assert "|" in output

    def test_generate_to_file(self, tmp_path, capsys):
        out = tmp_path / "topo.txt"
        assert main(["generate", "--small", "--seed", "1", "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generated_file_parses_back(self, tmp_path):
        from repro.topology.serial import load_relationships

        out = tmp_path / "topo.txt"
        main(["generate", "--small", "--seed", "1", "--out", str(out)])
        graph = load_relationships(out)
        assert graph.num_links() > 100

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--experiment", "nope"])
