"""Golden-run regression gates.

``test_blessed_golden_matches_current_study`` is the gate proper: it
recomputes the canonical seeded study's snapshot and compares it with
the file blessed under ``tests/golden/``.  If it fails after an
intentional behavior change, re-bless with ``repro check bless`` and
include the diff in the PR description.
"""

import copy
import json
import os

import pytest

from repro.check.golden import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_SEED,
    SCHEMA_VERSION,
    bless,
    check_against_golden,
    diff_snapshots,
    golden_path,
    load,
    serialize,
    snapshot_study,
)

pytestmark = pytest.mark.golden

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "golden")


@pytest.fixture(scope="module")
def snapshot(study):
    return snapshot_study(study)


class TestGoldenGate:
    def test_blessed_golden_exists(self):
        assert os.path.exists(golden_path(GOLDEN_DIR, GOLDEN_SEED)), (
            "no blessed golden; create it with "
            "`PYTHONPATH=src python -m repro.cli check bless`"
        )

    def test_blessed_golden_matches_current_study(self, snapshot):
        drifts = check_against_golden(
            directory=GOLDEN_DIR, seed=GOLDEN_SEED, snapshot=snapshot
        )
        assert drifts == [], (
            "study output drifted from the blessed golden:\n  "
            + "\n  ".join(drifts)
            + "\nIf intentional, re-bless with `repro check bless` and "
            "paste this diff into the PR description."
        )

    def test_blessed_file_is_canonically_serialized(self):
        """The on-disk bytes must equal re-serializing their parse —
        i.e. the file was written by ``bless``, not by hand."""
        path = golden_path(GOLDEN_DIR, GOLDEN_SEED)
        with open(path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        assert serialize(load(path)) == raw

    def test_schema_version_pinned(self):
        blessed = load(golden_path(GOLDEN_DIR, GOLDEN_SEED))
        assert blessed["schema"] == SCHEMA_VERSION


class TestBlessRoundTrip:
    def test_bless_round_trips_byte_identically(self, snapshot, tmp_path):
        first = bless(snapshot, directory=str(tmp_path))
        with open(first, "rb") as handle:
            first_bytes = handle.read()
        second = bless(snapshot, directory=str(tmp_path))
        assert second == first
        with open(second, "rb") as handle:
            assert handle.read() == first_bytes
        # And a parse/re-serialize cycle is also identical.
        assert serialize(load(first)).encode() == first_bytes

    def test_serialization_is_key_order_independent(self, snapshot):
        scrambled = json.loads(
            json.dumps(snapshot, sort_keys=False), object_pairs_hook=dict
        )
        assert serialize(scrambled) == serialize(snapshot)

    def test_bless_creates_directory(self, snapshot, tmp_path):
        nested = tmp_path / "deep" / "golden"
        path = bless(snapshot, directory=str(nested))
        assert os.path.exists(path)


class TestDiffSnapshots:
    def test_identical_snapshots_have_no_drift(self, snapshot):
        assert diff_snapshots(snapshot, snapshot) == []

    def test_leaf_change_reported_with_path(self, snapshot):
        mutated = copy.deepcopy(snapshot)
        mutated["dataset"]["decisions"] += 1
        drifts = diff_snapshots(snapshot, mutated)
        assert len(drifts) == 1
        assert drifts[0].startswith("dataset.decisions: ")

    def test_added_and_removed_keys_reported(self, snapshot):
        mutated = copy.deepcopy(snapshot)
        del mutated["figure1"]
        mutated["extra"] = 1
        drifts = diff_snapshots(snapshot, mutated)
        assert "figure1: only in blessed" in drifts
        assert "extra: only in current" in drifts

    def test_missing_golden_names_bless_command(self, tmp_path):
        drifts = check_against_golden(directory=str(tmp_path), snapshot={})
        assert len(drifts) == 1
        assert "bless" in drifts[0]


class TestSnapshotShape:
    def test_snapshot_covers_dataset_figure1_and_experiments(self, snapshot):
        assert set(snapshot) == {"schema", "scenario", "dataset", "figure1", "experiments"}
        assert snapshot["scenario"] == {"seed": GOLDEN_SEED, "scale": "quick"}
        from repro.core.pipeline import FIGURE1_LAYERS

        assert set(snapshot["figure1"]) == set(FIGURE1_LAYERS)
        for layer, counts in snapshot["figure1"].items():
            assert all(isinstance(n, int) for n in counts.values()), layer

    def test_every_experiment_present(self, snapshot):
        from repro.cli import _EXPERIMENTS

        assert set(snapshot["experiments"]) == set(_EXPERIMENTS)
        for name, payload in snapshot["experiments"].items():
            assert "rows" in payload or "skipped" in payload, name

    def test_default_dir_is_tests_golden(self):
        assert DEFAULT_GOLDEN_DIR == os.path.join("tests", "golden")
