"""The temporal incremental-vs-scratch invariant in the check battery.

``check_temporal`` is the metamorphic heart of the delta pipeline: on
every seeded scenario, incremental epoch grading must equal the cold
per-snapshot oracle byte for byte on both backends.  The mutation test
at the bottom proves the invariant has teeth — an under-approximated
dirty set (the one bug class the whole pipeline hinges on) must
surface as a disagreement, not slip through.
"""

import pytest

from repro.check import ALL_CHECKS, check_temporal, generate_scenario, run_checks
from repro.temporal import dirty

pytestmark = [pytest.mark.check, pytest.mark.temporal]


class TestTemporalCheck:
    @pytest.mark.parametrize("seed", range(4))
    def test_clean_on_seeded_scenarios(self, seed):
        assert check_temporal(generate_scenario(seed)) == []

    def test_registered_in_default_battery(self):
        assert "temporal" in ALL_CHECKS

    def test_runner_only_temporal(self):
        report = run_checks(2, only=["temporal"])
        assert report.checks == ["temporal"]
        assert report.ok


class TestDirtySetMutationIsCaught:
    """Prove the differential catches dirty-set under-approximation."""

    def test_empty_dirty_set_flagged(self, monkeypatch):
        # The worst under-approximation: claim no cached tree is ever
        # dirtied, so every stale tree survives each epoch.
        monkeypatch.setattr(
            dirty, "dirty_cache_keys", lambda engine, delta: (set(), set())
        )
        problems = check_temporal(generate_scenario(0))
        assert any(p.check == "temporal" for p in problems)
        assert any("diverges from from-scratch" in p.detail for p in problems)

    def test_destination_only_dirty_set_flagged(self, monkeypatch):
        # Subtler: keep the unconditional incident-endpoint dirtying
        # but drop the non-incident (path-shape) half of the analysis.
        real = dirty.dirty_cache_keys

        def halved(engine, delta):
            dests, _keys = real(engine, delta)
            return dests, set()

        monkeypatch.setattr(dirty, "dirty_cache_keys", halved)
        problems = check_temporal(generate_scenario(0))
        assert any(p.check == "temporal" for p in problems)
