"""Seeded fuzz of the BGP decision process and the LPM trie.

Both batteries compare the optimized implementation against its oracle
(:func:`oracle_best_route`, :class:`OracleLPM`) on randomized inputs
whose seed is the pytest parameter.
"""

import random

import pytest

from repro.bgp.decision import best_route, rank_routes
from repro.check import check_bgp_decision, check_lpm
from repro.check.differential import _random_prefix, _random_routes
from repro.check.oracles import oracle_best_route
from repro.net.ip import Prefix

pytestmark = pytest.mark.check


class TestBGPDecisionFuzz:
    @pytest.mark.parametrize("seed", range(100))
    def test_decision_process_matches_oracle(self, seed):
        problems = check_bgp_decision(seed, trials=20)
        assert problems == [], "\n".join(str(p) for p in problems)

    @pytest.mark.parametrize("seed", range(20))
    def test_ranking_is_a_total_order(self, seed):
        """rank_routes must list strictly non-improving routes."""
        rng = random.Random(seed)
        routes = _random_routes(rng)
        ranked = rank_routes(routes)
        assert sorted(map(id, ranked)) == sorted(map(id, routes))
        for earlier, later in zip(ranked, ranked[1:]):
            winner, _step = oracle_best_route([later, earlier])
            # The earlier route must win (or tie, in which case the
            # oracle keeps its first argument only on a full tie).
            if winner is later:
                assert oracle_best_route([earlier, later])[0] is earlier

    def test_fuzzer_generates_ties(self):
        """The route generator must actually exercise the deep
        tie-break steps, not just local preference."""
        rng = random.Random(0)
        steps = set()
        for _ in range(200):
            routes = _random_routes(rng)
            _winner, step = best_route(routes)
            if step is not None:
                steps.add(step.value)
        assert "router id" in steps
        assert "as-path length" in steps
        assert "local preference" in steps


class TestLPMFuzz:
    @pytest.mark.parametrize("seed", range(100))
    def test_trie_matches_linear_scan(self, seed):
        problems = check_lpm(seed, rounds=4)
        assert problems == [], "\n".join(str(p) for p in problems)

    def test_prefix_generator_hits_boundaries(self):
        rng = random.Random(1)
        lengths = {_random_prefix(rng).length for _ in range(300)}
        assert {0, 8, 16, 24, 32} <= lengths

    @pytest.mark.parametrize("seed", range(10))
    def test_default_route_tables_match_oracle(self, seed):
        """Random tables that always include 0.0.0.0/0: every address
        must match, and the trie must agree with the scan everywhere."""
        from repro.check.oracles import OracleLPM
        from repro.net.ip import IPAddress
        from repro.net.trie import PrefixTrie

        rng = random.Random(seed)
        trie, oracle = PrefixTrie(), OracleLPM()
        for table in (trie, oracle):
            table.insert(Prefix(0, 0), "default")
        for index in range(rng.randint(1, 16)):
            prefix = _random_prefix(rng)
            for table in (trie, oracle):
                table.insert(prefix, index)
        for _ in range(32):
            address = IPAddress(rng.getrandbits(32))
            got = trie.lookup_with_prefix(address)
            assert got == oracle.lookup_with_prefix(address)
            assert got is not None, "default route must always match"
            assert trie.lookup_all(address) == oracle.lookup_all(address)
