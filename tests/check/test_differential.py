"""Optimized-vs-oracle differential coverage over seeded topologies.

Every test embeds its seed in the pytest id, so a failure like
``test_engine_and_labels_agree_with_oracle[137]`` is a complete
reproduction recipe: ``generate_scenario(137)`` rebuilds the world.

The mutation tests at the bottom prove the checks are not vacuous: an
injected bug in the optimized path must surface as a disagreement.
"""

import pytest

from repro.bgp.decision import best_route
from repro.check import (
    ALL_CHECKS,
    check_bgp_decision,
    check_gr_trees,
    check_labels,
    check_lpm,
    generate_scenario,
    oracle_labels,
    run_checks,
)
from repro.check import differential
from repro.core.classification import DecisionLabel
from repro.perf.parallel import ParallelClassifier

pytestmark = pytest.mark.check

#: Differential coverage floor from the PR checklist: 200+ seeded
#: topologies through cache-on vs cache-off vs oracle.
DIFFERENTIAL_SEEDS = range(200)

#: Seeds reused for the heavier parallel-classifier comparisons.
PARALLEL_SEEDS = (0, 7, 42, 99, 123)


class TestScenarioGeneration:
    @pytest.mark.parametrize("seed", range(30))
    def test_same_seed_same_scenario(self, seed):
        first = generate_scenario(seed)
        second = generate_scenario(seed)
        assert first.describe() == second.describe()
        assert first.decisions == second.decisions
        assert first.first_hops_for == second.first_hops_for
        assert sorted(first.graph.links()) == sorted(second.graph.links())

    def test_seeds_produce_distinct_worlds(self):
        descriptions = {generate_scenario(seed).describe() for seed in range(20)}
        assert len(descriptions) > 1

    @pytest.mark.parametrize("seed", range(10))
    def test_scenario_is_well_formed(self, seed):
        scenario = generate_scenario(seed)
        assert scenario.decisions, "a scenario must grade something"
        for decision in scenario.decisions:
            assert decision.destination in scenario.graph
            assert decision.destination in scenario.prefix_of
        for destination in scenario.destinations:
            assert destination in scenario.graph


class TestEngineVsOracle:
    @pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
    def test_engine_and_labels_agree_with_oracle(self, seed):
        """Cached engine, uncached function, and both label paths vs oracle."""
        scenario = generate_scenario(seed)
        problems = check_gr_trees(scenario) + check_labels(scenario)
        assert problems == [], "\n".join(str(p) for p in problems)


class TestParallelClassifierVsOracle:
    @pytest.mark.parametrize("seed", PARALLEL_SEEDS)
    def test_serial_precompute_path(self, seed):
        """Scenario trees stay under the pool threshold: serial path."""
        scenario = generate_scenario(seed)
        classifier = ParallelClassifier(workers=1)
        problems = check_labels(scenario, classifier=classifier)
        assert problems == [], "\n".join(str(p) for p in problems)

    @pytest.mark.parametrize("seed", PARALLEL_SEEDS[:2])
    def test_forced_process_pool_path(self, seed):
        """min_parallel_trees=1 forces the worker pool even on tiny runs."""
        scenario = generate_scenario(seed)
        classifier = ParallelClassifier(workers=2, min_parallel_trees=1)
        problems = check_labels(scenario, classifier=classifier)
        assert problems == [], "\n".join(str(p) for p in problems)


class TestOracleLabelMix:
    def test_scenarios_exercise_every_label(self):
        """The generator must produce all four grades, or the label
        checks silently degenerate."""
        seen = set()
        for seed in range(40):
            seen.update(oracle_labels(generate_scenario(seed)))
            if len(seen) == 4:
                break
        assert seen == set(DecisionLabel)


class TestRunner:
    def test_clean_report(self):
        report = run_checks(5)
        assert report.ok
        assert report.seeds_run == 5
        assert report.decisions_graded > 0
        assert report.trees_checked > 0
        assert set(report.checks) == set(ALL_CHECKS)
        assert "all oracles agree" in report.render()

    def test_only_restricts_checks(self):
        report = run_checks(3, only=["lpm"])
        assert report.checks == ["lpm"]
        assert report.ok
        assert report.decisions_graded > 0  # scenario still generated

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError, match="unknown checks"):
            run_checks(1, only=["no-such-check"])

    def test_base_seed_offsets_range(self):
        report = run_checks(2, base_seed=100)
        assert report.base_seed == 100
        assert "100..101" in report.render()

    def test_progress_callback_invoked(self):
        ticks = []
        run_checks(2, progress=lambda done, total: ticks.append((done, total)))
        assert ticks == [(1, 2), (2, 2)]


class TestMutationsAreCaught:
    """Inject a bug into each optimized path; the checker must see it."""

    def test_broken_gr_distances_flagged(self, monkeypatch):
        real = differential.compute_routing_info

        def skewed(graph, destination, **kwargs):
            info = real(graph, destination, **kwargs)
            if info.customer_dist:
                asn = max(info.customer_dist)
                info.customer_dist[asn] += 1  # off-by-one "optimization"
            return info

        monkeypatch.setattr(differential, "compute_routing_info", skewed)
        problems = check_gr_trees(generate_scenario(0))
        assert any(p.check == "gr-tree" for p in problems)

    def test_broken_grading_flagged(self, monkeypatch):
        scenario = generate_scenario(3)
        reference = set(oracle_labels(scenario))
        assert len(reference) > 1, "need a mixed-label scenario"

        monkeypatch.setattr(
            differential,
            "classify_decision",
            lambda *args, **kwargs: DecisionLabel.BEST_SHORT,
        )
        problems = check_labels(scenario)
        assert any("per-decision" in p.detail for p in problems)

    def test_broken_decision_process_flagged(self, monkeypatch):
        def worst_route(routes):
            winner, step = best_route(list(reversed(routes)))
            return routes[-1], step

        monkeypatch.setattr(differential, "best_route", worst_route)
        problems = []
        for seed in range(5):
            problems.extend(check_bgp_decision(seed))
        assert any(p.check == "bgp-decision" for p in problems)

    def test_broken_lpm_flagged(self, monkeypatch):
        from repro.net.trie import PrefixTrie

        monkeypatch.setattr(
            PrefixTrie, "lookup_with_prefix", lambda self, address: None
        )
        problems = []
        for seed in range(5):
            problems.extend(check_lpm(seed))
        assert any(p.check == "lpm" for p in problems)
