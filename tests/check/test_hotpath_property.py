"""Property suite: the vectorized grader vs the scalar grader and oracle.

Each property draws a random world (graph, hybrid relationships,
sibling groups, PSP first-hop restrictions, partial transit) and a
random decision batch from a seed, then requires the arena grader
(array backend) to agree **label for label** with both
:func:`repro.core.classification.grade_decision` over dict-engine trees
and the independent fixpoint oracle from :mod:`repro.check.oracles`.

Seeds appear in the pytest ids (the parametrized regression rows) so a
failing world is reproducible by name; the hypothesis-driven property
explores fresh seeds on every run.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.oracles import oracle_label, oracle_routing_info
from repro.core.classification import Decision, grade_decision, label_decisions
from repro.core.gao_rexford import GaoRexfordEngine
from repro.net.ip import Prefix
from repro.topology import ASGraph, Relationship
from repro.topology.complex_rel import ComplexRelationships, HybridEntry
from repro.whois.siblings import SiblingGroups

pytestmark = pytest.mark.check

PFX = Prefix.parse("198.51.100.0/24")

RELS = [
    Relationship.PROVIDER,
    Relationship.PEER,
    Relationship.CUSTOMER,
    Relationship.SIBLING,
]


def _world(seed):
    """A full grading world, deterministically derived from ``seed``."""
    rng = random.Random(seed)
    graph = ASGraph()
    count = rng.randint(3, 24)
    asns = [100 + i for i in range(count)]
    for asn in asns:
        graph.ensure_asn(asn)
    for _ in range(rng.randint(count, count * 3)):
        a, b = rng.sample(asns, 2)
        graph.add_link(a, b, rng.choice(RELS))

    complex_rel = ComplexRelationships()
    for _ in range(rng.randint(0, 3)):
        a, b = rng.sample(asns, 2)
        if graph.relationship(a, b) is not None:
            complex_rel.add_hybrid(
                HybridEntry(a, b, rng.choice(["nyc", "lon"]), rng.choice(RELS[:3]))
            )

    siblings = None
    if rng.random() < 0.5 and count >= 3:
        siblings = SiblingGroups([frozenset(rng.sample(asns, 3))])

    partial = frozenset()
    if rng.random() < 0.4:
        partial = frozenset(tuple(rng.sample(asns, 2)) for _ in range(2))

    first_hops = None
    if rng.random() < 0.5:
        first_hops = {PFX: frozenset(rng.sample(asns, rng.randint(1, count)))}

    decisions = []
    for _ in range(rng.randint(0, 100)):
        asn = rng.choice(asns)
        decisions.append(
            Decision(
                asn=asn,
                next_hop=rng.choice(asns + [999999]),
                destination=rng.choice(asns),
                prefix=PFX,
                measured_len=rng.randint(1, 6),
                source_asn=asn,
                border_city=rng.choice([None, "nyc", "lon"]),
            )
        )
    return graph, complex_rel, siblings, partial, first_hops, decisions


def _assert_label_for_label(seed):
    graph, complex_rel, siblings, partial, first_hops, decisions = _world(seed)

    engine_array = GaoRexfordEngine(graph, partial_transit=partial, backend="array")
    array_labels = [
        label
        for _d, label in label_decisions(
            decisions,
            engine_array,
            first_hops_for=first_hops,
            complex_rel=complex_rel,
            siblings=siblings,
        )
    ]
    assert len(array_labels) == len(decisions)

    engine_dict = GaoRexfordEngine(graph, partial_transit=partial, backend="dict")
    oracle_infos = {}
    for decision, array_label in zip(decisions, array_labels):
        allowed = None if first_hops is None else first_hops.get(decision.prefix)
        info = engine_dict.routing_info(decision.destination, allowed)
        scalar = grade_decision(
            decision, info, graph, complex_rel=complex_rel, siblings=siblings
        )
        assert array_label is scalar, (
            f"seed={seed}: array graded AS{decision.asn}->AS{decision.next_hop}"
            f" toward AS{decision.destination} as {array_label.value}, "
            f"scalar grader says {scalar.value}"
        )
        key = (decision.destination, allowed)
        if key not in oracle_infos:
            oracle_infos[key] = oracle_routing_info(
                graph,
                decision.destination,
                partial_transit=partial,
                allowed_first_hops=allowed,
            )
        want = oracle_label(
            decision,
            oracle_infos[key],
            graph,
            complex_rel=complex_rel,
            siblings=siblings,
        )
        assert array_label is want, (
            f"seed={seed}: array graded AS{decision.asn}->AS{decision.next_hop}"
            f" toward AS{decision.destination} as {array_label.value}, "
            f"oracle says {want.value}"
        )


@pytest.mark.parametrize("seed", [0, 7, 42, 1337, 31415], ids=lambda s: f"seed{s}")
def test_array_grader_matches_scalar_and_oracle(seed):
    _assert_label_for_label(seed)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_array_grader_matches_scalar_and_oracle_property(seed):
    _assert_label_for_label(seed)
