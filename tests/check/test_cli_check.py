"""End-to-end tests for the ``repro check`` CLI surface."""

import pytest

from repro import cli
from repro.check import serialize

pytestmark = pytest.mark.check

#: A tiny stand-in snapshot so CLI golden tests don't run a full study.
FAKE_SNAPSHOT = {"schema": 1, "dataset": {"decisions": 3}, "figure1": {}}


@pytest.fixture
def fake_study(monkeypatch):
    # Patch the defining module and the package re-export: ``bless``
    # imports from the package, ``check_against_golden`` calls within
    # the golden module.
    for target in (
        "repro.check.golden.compute_snapshot",
        "repro.check.compute_snapshot",
    ):
        monkeypatch.setattr(target, lambda seed=0: FAKE_SNAPSHOT)


class TestCheckRun:
    def test_clean_run_exits_zero(self, capsys):
        assert cli.main(["check", "run", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "all oracles agree" in out
        assert "seeds      0..2" in out

    def test_only_filter(self, capsys):
        assert cli.main(["check", "run", "--seeds", "2", "--only", "lpm"]) == 0
        out = capsys.readouterr().out
        assert "lpm" in out
        assert "gr-tree" not in out

    def test_unknown_only_exits_two(self, capsys):
        assert cli.main(["check", "run", "--seeds", "1", "--only", "bogus"]) == 2
        assert "unknown checks" in capsys.readouterr().err

    def test_base_seed(self, capsys):
        assert cli.main(["check", "run", "--seeds", "1", "--base-seed", "7"]) == 0
        assert "seeds      7..7" in capsys.readouterr().out

    def test_progress_goes_to_stderr(self, capsys):
        code = cli.main(
            ["check", "run", "--seeds", "2", "--only", "lpm", "--progress"]
        )
        assert code == 0
        assert "2/2 seeds" in capsys.readouterr().err


class TestCheckBlessAndDiff:
    def test_bless_then_diff_clean(self, fake_study, tmp_path, capsys):
        directory = str(tmp_path)
        assert cli.main(["check", "bless", "--golden-dir", directory]) == 0
        assert "blessed golden written" in capsys.readouterr().out
        assert cli.main(["check", "diff", "--golden-dir", directory]) == 0
        assert "golden clean" in capsys.readouterr().out

    def test_diff_without_golden_fails(self, fake_study, tmp_path, capsys):
        assert cli.main(["check", "diff", "--golden-dir", str(tmp_path)]) == 1
        assert "bless" in capsys.readouterr().out

    def test_diff_reports_drift(self, fake_study, tmp_path, capsys):
        directory = str(tmp_path)
        drifted = {"schema": 1, "dataset": {"decisions": 4}, "figure1": {}}
        (tmp_path / "study_quick_seed0.json").write_text(serialize(drifted))
        assert cli.main(["check", "diff", "--golden-dir", directory]) == 1
        out = capsys.readouterr().out
        assert "dataset.decisions: 4 -> 3" in out
        assert "re-bless" in out

    def test_bless_overwrites_stale_golden(self, fake_study, tmp_path, capsys):
        directory = str(tmp_path)
        (tmp_path / "study_quick_seed0.json").write_text("{}\n")
        assert cli.main(["check", "bless", "--golden-dir", directory]) == 0
        capsys.readouterr()
        assert cli.main(["check", "diff", "--golden-dir", directory]) == 0
