"""Known-answer tests for the reference oracles themselves.

The oracles are the trusted side of every differential check, so they
get their own hand-computed fixtures: tiny topologies and route sets
whose correct answers can be verified on paper.
"""

import pytest

from repro.bgp.attributes import ASPathAttribute
from repro.bgp.routes import Route
from repro.check.oracles import (
    OracleLPM,
    oracle_best_route,
    oracle_label,
    oracle_prefers,
    oracle_routing_info,
)
from repro.core.classification import Decision, DecisionLabel
from repro.net.ip import IPAddress, Prefix
from repro.topology.complex_rel import ComplexRelationships, HybridEntry
from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship
from repro.whois.siblings import SiblingGroups

PFX = Prefix.parse("203.0.113.0/24")


def _chain_graph():
    """AS1 <- AS2 <- AS3 (provider chains), AS2 -- AS4 (peers).

    add_link(a, b, rel) records ``rel`` as b's role toward a.
    """
    graph = ASGraph()
    graph.add_link(2, 1, Relationship.CUSTOMER)  # 1 is 2's customer
    graph.add_link(3, 2, Relationship.CUSTOMER)  # 2 is 3's customer
    graph.add_link(2, 4, Relationship.PEER)
    return graph


def _decision(asn, next_hop, destination, measured_len, border_city=None):
    return Decision(
        asn=asn,
        next_hop=next_hop,
        destination=destination,
        prefix=PFX,
        measured_len=measured_len,
        source_asn=asn,
        border_city=border_city,
    )


class TestOracleRoutingInfo:
    def test_customer_routes_climb_providers(self):
        info = oracle_routing_info(_chain_graph(), destination=1)
        assert info.customer_dist == {1: 0, 2: 1, 3: 2}
        # AS4 hears AS2's customer route over the peering.
        assert info.peer_dist == {4: 2}
        # Providers re-export their chosen route down customer links,
        # so AS1 hears a (non-best) route back to itself via AS2 and
        # AS2 hears one via AS3.
        assert info.provider_dist == {1: 2, 2: 3}

    def test_provider_routes_descend_customer_links(self):
        # Destination at the top: everyone below learns via providers.
        info = oracle_routing_info(_chain_graph(), destination=3)
        assert info.customer_dist == {3: 0}
        assert info.peer_dist == {}
        assert info.provider_dist == {2: 1, 1: 2}
        # AS4 peers with AS2, whose chosen route is provider-learned:
        # Gao-Rexford forbids exporting it to a peer.
        assert 4 not in info.peer_dist

    def test_peer_route_not_retransited(self):
        # AS4's route to AS1 is peer-learned; its own customers (none
        # here) could hear it, but its providers/peers could not.
        graph = _chain_graph()
        graph.add_link(4, 5, Relationship.CUSTOMER)  # 5 buys from 4
        info = oracle_routing_info(graph, destination=1)
        assert info.provider_dist[5] == 3  # 1-2-4-5 via the chosen peer route

    def test_partial_transit_blocks_provider_learned_export(self):
        # AS2's route toward AS3 is provider-learned; partial transit on
        # the (2, 1) edge must stop it from reaching AS1.
        info = oracle_routing_info(
            _chain_graph(), destination=3, partial_transit=frozenset({(2, 1)})
        )
        assert 1 not in info.provider_dist
        # Customer-learned routes still cross the same edge.
        full = oracle_routing_info(
            _chain_graph(), destination=1, partial_transit=frozenset({(2, 1)})
        )
        assert full.customer_dist == {1: 0, 2: 1, 3: 2}

    def test_allowed_first_hops_drops_announcements(self):
        graph = ASGraph()
        graph.add_link(2, 1, Relationship.CUSTOMER)
        graph.add_link(3, 1, Relationship.CUSTOMER)  # 1 multihomes to 2 and 3
        unrestricted = oracle_routing_info(graph, destination=1)
        assert set(unrestricted.customer_dist) == {1, 2, 3}
        poisoned = oracle_routing_info(
            graph, destination=1, allowed_first_hops=frozenset({2})
        )
        assert set(poisoned.customer_dist) == {1, 2}
        assert 3 not in poisoned.customer_dist

    def test_unknown_destination_raises(self):
        with pytest.raises(KeyError):
            oracle_routing_info(_chain_graph(), destination=999)

    def test_gr_route_length_prefers_customer_class(self):
        graph = _chain_graph()
        info = oracle_routing_info(graph, destination=1)
        assert info.gr_route_length(3) == 2
        assert info.gr_route_length(4) == 2
        assert info.gr_route_length(1) == 0
        assert info.best_class(3) is Relationship.CUSTOMER
        assert info.best_class(4) is Relationship.PEER


class TestOracleLabel:
    def test_customer_hand_off_is_best(self):
        graph = _chain_graph()
        info = oracle_routing_info(graph, destination=1)
        label = oracle_label(_decision(2, 1, 1, measured_len=1), info, graph)
        assert label is DecisionLabel.BEST_SHORT

    def test_provider_hand_off_against_customer_route_is_nonbest(self):
        graph = _chain_graph()
        info = oracle_routing_info(graph, destination=1)
        # AS2 has a customer route to AS1 but hands off to provider AS3.
        label = oracle_label(_decision(2, 3, 1, measured_len=1), info, graph)
        assert label is DecisionLabel.NONBEST_SHORT

    def test_long_measured_path_is_long(self):
        graph = _chain_graph()
        info = oracle_routing_info(graph, destination=1)
        label = oracle_label(_decision(2, 1, 1, measured_len=5), info, graph)
        assert label is DecisionLabel.BEST_LONG

    def test_missing_adjacency_is_never_best(self):
        graph = _chain_graph()
        info = oracle_routing_info(graph, destination=1)
        label = oracle_label(_decision(2, 77, 1, measured_len=1), info, graph)
        assert label is DecisionLabel.NONBEST_SHORT

    def test_no_model_route_is_best_short(self):
        # AS50 buys from AS51 but the island is cut off from AS1: the
        # model offers AS50 nothing, so even a provider hand-off with a
        # long measured path grades Best/Short.
        graph = _chain_graph()
        graph.add_link(51, 50, Relationship.CUSTOMER)
        info = oracle_routing_info(graph, destination=1)
        label = oracle_label(_decision(50, 51, 1, measured_len=9), info, graph)
        assert label is DecisionLabel.BEST_SHORT

    def test_missing_adjacency_beats_no_model_route(self):
        # Same islanded AS, but the next hop is absent from the
        # topology: a hop the model cannot see is never Best.
        graph = _chain_graph()
        graph.ensure_asn(50)
        info = oracle_routing_info(graph, destination=1)
        label = oracle_label(_decision(50, 77, 1, measured_len=9), info, graph)
        assert label is DecisionLabel.NONBEST_SHORT

    def test_sibling_hand_off_always_best(self):
        graph = _chain_graph()
        info = oracle_routing_info(graph, destination=1)
        siblings = SiblingGroups([frozenset({2, 3})])
        label = oracle_label(
            _decision(2, 3, 1, measured_len=1), info, graph, siblings=siblings
        )
        assert label is DecisionLabel.BEST_SHORT

    def test_hybrid_relationship_applies_at_city(self):
        graph = _chain_graph()
        info = oracle_routing_info(graph, destination=1)
        hybrid = ComplexRelationships(
            hybrid=[HybridEntry(2, 3, "Paris", Relationship.CUSTOMER)]
        )
        in_paris = oracle_label(
            _decision(2, 3, 1, measured_len=1, border_city="Paris"),
            info,
            graph,
            complex_rel=hybrid,
        )
        elsewhere = oracle_label(
            _decision(2, 3, 1, measured_len=1, border_city="Tokyo"),
            info,
            graph,
            complex_rel=hybrid,
        )
        assert in_paris is DecisionLabel.BEST_SHORT
        assert elsewhere is DecisionLabel.NONBEST_SHORT


def _route(local_pref=100, path=(64501,), igp_cost=0, age=0, router_id=1):
    return Route(
        prefix=PFX,
        as_path=ASPathAttribute.from_sequence(path),
        learned_from=path[0],
        relationship=Relationship.PEER,
        local_pref=local_pref,
        igp_cost=igp_cost,
        age=age,
        router_id=router_id,
    )


class TestOracleBestRoute:
    def test_single_route_is_only_route(self):
        route = _route()
        assert oracle_best_route([route]) == (route, "only route")

    def test_local_pref_dominates(self):
        low = _route(local_pref=80, path=(1,))
        high = _route(local_pref=120, path=(1, 2, 3), router_id=2)
        winner, step = oracle_best_route([low, high])
        assert winner is high
        assert step == "local preference"

    def test_path_length_breaks_pref_tie(self):
        long = _route(path=(1, 2, 3))
        short = _route(path=(1,), router_id=2)
        winner, step = oracle_best_route([long, short])
        assert winner is short
        assert step == "as-path length"

    def test_full_tie_reports_router_id(self):
        a = _route(router_id=1)
        b = _route(router_id=2)
        winner, step = oracle_best_route([a, b])
        assert winner is a
        assert step == "router id"

    def test_prefers_is_asymmetric(self):
        better = _route(igp_cost=0, router_id=1)
        worse = _route(igp_cost=10, router_id=2)
        assert oracle_prefers(better, worse) == "intradomain cost"
        assert oracle_prefers(worse, better) is None
        assert oracle_prefers(better, better) is None

    def test_empty_input(self):
        assert oracle_best_route([]) == (None, None)


class TestOracleLPM:
    def test_longest_match_wins(self):
        lpm = OracleLPM()
        lpm.insert(Prefix.parse("10.0.0.0/8"), "eight")
        lpm.insert(Prefix.parse("10.1.0.0/16"), "sixteen")
        assert lpm.lookup(IPAddress.parse("10.1.2.3")) == "sixteen"
        assert lpm.lookup(IPAddress.parse("10.2.0.1")) == "eight"
        assert lpm.lookup(IPAddress.parse("11.0.0.1")) is None

    def test_lookup_all_shortest_first(self):
        lpm = OracleLPM()
        lpm.insert(Prefix.parse("0.0.0.0/0"), "default")
        lpm.insert(Prefix.parse("10.0.0.0/8"), "eight")
        lpm.insert(Prefix.parse("10.1.0.0/16"), "sixteen")
        matches = lpm.lookup_all(IPAddress.parse("10.1.2.3"))
        assert [value for _p, value in matches] == ["default", "eight", "sixteen"]

    def test_remove(self):
        lpm = OracleLPM()
        lpm.insert(Prefix.parse("10.0.0.0/8"), "v")
        assert lpm.remove(Prefix.parse("10.0.0.0/8"))
        assert not lpm.remove(Prefix.parse("10.0.0.0/8"))
        assert len(lpm) == 0
