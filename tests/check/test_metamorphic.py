"""Metamorphic invariants of the classification pipeline.

These tests do not ask whether the optimized answer matches an oracle;
they ask whether it behaves like the *model* under transformations with
known effect: renumbering ASes, duplicating inputs, widening or
narrowing announcement sets, shortening measured paths, growing the
topology by a stub.
"""

import pytest

from repro.check import check_metamorphic, generate_scenario
from repro.check.differential import _renumber_scenario, _scenario_counts
from repro.core.gao_rexford import GaoRexfordEngine
from repro.topology.relationships import Relationship

import random

pytestmark = pytest.mark.check


class TestMetamorphicBattery:
    @pytest.mark.parametrize("seed", range(80))
    def test_invariants_hold(self, seed):
        problems = check_metamorphic(generate_scenario(seed))
        assert problems == [], "\n".join(str(p) for p in problems)


class TestRenumbering:
    @pytest.mark.parametrize("seed", (0, 11, 29))
    def test_renumbered_world_is_isomorphic(self, seed):
        scenario = generate_scenario(seed)
        renumbered = _renumber_scenario(scenario, random.Random(seed))
        assert len(renumbered.graph) == len(scenario.graph)
        assert renumbered.graph.num_links() == scenario.graph.num_links()
        assert len(renumbered.decisions) == len(scenario.decisions)
        assert _scenario_counts(renumbered) == _scenario_counts(scenario)

    def test_renumbering_preserves_relationship_multiset(self):
        scenario = generate_scenario(5)
        renumbered = _renumber_scenario(scenario, random.Random(5))
        original = sorted(rel.value for _a, _b, rel in scenario.graph.links())
        mapped = sorted(rel.value for _a, _b, rel in renumbered.graph.links())
        assert original == mapped


class TestStubGrowth:
    @pytest.mark.parametrize("seed", (2, 17))
    def test_stub_leaf_changes_nothing_upstream(self, seed):
        scenario = generate_scenario(seed)
        engine = GaoRexfordEngine(
            scenario.graph, partial_transit=scenario.partial_transit
        )
        grown = scenario.graph.copy()
        stub = max(grown.asns()) + 1
        host = min(scenario.graph.asns())
        grown.add_link(host, stub, Relationship.CUSTOMER)
        grown_engine = GaoRexfordEngine(
            grown, partial_transit=scenario.partial_transit
        )
        for destination in scenario.destinations:
            before = engine.routing_info(destination, None)
            after = grown_engine.routing_info(destination, None)
            assert after.customer_dist == before.customer_dist
            assert after.peer_dist == before.peer_dist
            trimmed = {
                asn: d for asn, d in after.provider_dist.items() if asn != stub
            }
            assert trimmed == before.provider_dist
