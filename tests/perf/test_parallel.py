"""ParallelClassifier: worker resolution, precompute dedup, pool path.

The pool path is forced with ``workers=2, min_parallel_trees=1`` on a
small graph so the test exercises real pickling and cross-process tree
construction without needing a many-core machine; results must be
identical to the serial fallback.
"""

import os

import pytest

from repro.core.classification import (
    Decision,
    LayerConfig,
    classify_decisions_serial,
    label_decisions_serial,
)
from repro.core.gao_rexford import GaoRexfordEngine
from repro.net.ip import Prefix
from repro.perf.parallel import (
    DEFAULT_MIN_PARALLEL_TREES,
    WORKERS_ENV,
    ParallelClassifier,
    worker_count,
)
from repro.topology import ASGraph, Relationship

pytestmark = pytest.mark.tier1

PFX = Prefix.parse("198.51.100.0/24")


def _ladder_graph(rungs=6):
    """Two provider chains joined by peer rungs; destination at 1."""
    graph = ASGraph()
    for i in range(1, rungs):
        graph.add_link(2 * i + 1, 2 * i - 1, Relationship.CUSTOMER)
        graph.add_link(2 * i + 2, 2 * i, Relationship.CUSTOMER)
        graph.add_link(2 * i - 1, 2 * i, Relationship.PEER)
    graph.add_link(2, 1, Relationship.CUSTOMER)
    return graph


def _decisions(graph, destinations):
    asns = sorted(graph.asns())
    decisions = []
    for destination in destinations:
        for asn in asns:
            for next_hop in asns:
                if asn in (next_hop, destination) or next_hop == destination:
                    continue
                decisions.append(
                    Decision(
                        asn=asn,
                        next_hop=next_hop,
                        destination=destination,
                        prefix=PFX,
                        measured_len=2,
                        source_asn=asn,
                    )
                )
    return decisions


class TestWorkerCount:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert worker_count() == 3
        assert worker_count(default=7) == 3

    def test_negative_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ValueError, match=rf"{WORKERS_ENV} must be >= 0"):
            worker_count()

    def test_zero_and_one_still_mean_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert worker_count() == 0
        monkeypatch.setenv(WORKERS_ENV, "1")
        assert worker_count() == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            worker_count()

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert worker_count(default=5) == 5
        assert worker_count() >= 1

    def test_classifier_reads_env_clamped_to_cpus(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert ParallelClassifier().workers == min(2, os.cpu_count() or 1)
        # An explicit argument is the caller's decision — never clamped.
        assert ParallelClassifier(workers=6).workers == 6

    def test_default_workers_clamped_to_cpus(self, monkeypatch):
        """An oversubscribed env default cannot outnumber the cores."""
        monkeypatch.setenv(WORKERS_ENV, "64")
        assert ParallelClassifier().workers == min(64, os.cpu_count() or 1)

    def test_pool_skipped_when_one_effective_worker(self):
        """workers=1 grades serially — no pool spawn for a lone worker."""
        graph = _ladder_graph()
        engine = GaoRexfordEngine(graph)
        layer = LayerConfig(engine=engine)
        classifier = ParallelClassifier(workers=1, min_parallel_trees=1)
        decisions = _decisions(graph, destinations=[1, 3, 5])
        report = classifier.precompute(decisions, [layer])
        assert not report.parallel
        assert report.trees_computed == 3


class TestPrecompute:
    def test_serial_fallback_below_threshold(self):
        graph = _ladder_graph()
        engine = GaoRexfordEngine(graph)
        layer = LayerConfig(engine=engine)
        classifier = ParallelClassifier(workers=8)
        decisions = _decisions(graph, destinations=[1])
        report = classifier.precompute(decisions, [layer])
        assert not report.parallel  # 1 tree < DEFAULT_MIN_PARALLEL_TREES
        assert report.trees_computed == 1
        assert DEFAULT_MIN_PARALLEL_TREES > 1

    def test_warm_cache_counts_as_reuse(self):
        graph = _ladder_graph()
        engine = GaoRexfordEngine(graph)
        layer = LayerConfig(engine=engine)
        classifier = ParallelClassifier(workers=1)
        decisions = _decisions(graph, destinations=[1, 2])
        first = classifier.precompute(decisions, [layer])
        assert first.trees_computed == 2
        second = classifier.precompute(decisions, [layer])
        assert second.trees_computed == 0
        assert second.trees_reused == 2

    def test_shared_engine_collected_once(self):
        graph = _ladder_graph()
        engine = GaoRexfordEngine(graph)
        layers = [LayerConfig(engine=engine), LayerConfig(engine=engine)]
        classifier = ParallelClassifier(workers=1)
        decisions = _decisions(graph, destinations=[1])
        report = classifier.precompute(decisions, layers)
        # The second layer's identical tree needs are deduplicated.
        assert report.trees_computed == 1
        assert report.trees_reused == 1


class TestPoolPath:
    def test_forced_pool_matches_serial(self):
        graph = _ladder_graph()
        destinations = sorted(graph.asns())[:4]
        decisions = _decisions(graph, destinations)

        serial_engine = GaoRexfordEngine(graph)
        expected_counts = classify_decisions_serial(decisions, serial_engine)
        expected_labels = label_decisions_serial(decisions, serial_engine)

        pool_engine = GaoRexfordEngine(graph)
        layer = LayerConfig(engine=pool_engine)
        classifier = ParallelClassifier(workers=2, min_parallel_trees=1)
        counts = classifier.classify_layers(decisions, {"Simple": layer})

        assert classifier.last_report is not None
        assert classifier.last_report.parallel
        assert classifier.last_report.trees_computed == len(destinations)
        assert counts["Simple"].counts == expected_counts.counts
        # Pool-built trees were installed into the local engine cache.
        assert pool_engine.cache_stats().size == len(destinations)
        assert classifier.label_layer(decisions, layer) == expected_labels

    def test_pool_respects_first_hop_restrictions(self):
        graph = _ladder_graph()
        decisions = _decisions(graph, destinations=[1, 2])
        first_hops = {PFX: frozenset({2, 3})}

        serial_engine = GaoRexfordEngine(graph)
        expected = label_decisions_serial(
            decisions, serial_engine, first_hops_for=first_hops
        )

        pool_engine = GaoRexfordEngine(graph)
        layer = LayerConfig(engine=pool_engine, first_hops_for=first_hops)
        classifier = ParallelClassifier(workers=2, min_parallel_trees=1)
        assert classifier.label_layer(decisions, layer) == expected
        assert classifier.last_report is not None
        assert classifier.last_report.parallel
