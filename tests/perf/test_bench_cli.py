"""The benchmark CLI's hotpath section and its speedup gate.

Runs ``repro.perf.bench.main`` in-process on the quick scenario (shared
with the session study fixture, so the study build is cached) and
checks the machine-readable contract CI depends on: ``--json`` emits
parseable sections on stdout, the hotpath section asserts
``results_identical``, and ``--check-hotpath-speedup`` turns a missed
floor into a nonzero exit.
"""

import json

import pytest

from repro.perf.bench import main as bench_main

pytestmark = pytest.mark.tier1


def _run(tmp_path, capsys, *extra):
    out = tmp_path / "BENCH_pipeline.json"
    code = bench_main(
        [
            "--quick",
            "--section",
            "hotpath",
            "--repeats",
            "1",
            "--json",
            "--out",
            str(out),
            *extra,
        ]
    )
    stdout = capsys.readouterr().out
    return code, stdout, out


class TestBenchHotpathCLI:
    def test_json_report_and_identical_results(self, tmp_path, capsys, study):
        code, stdout, out = _run(tmp_path, capsys)
        assert code == 0
        payload = json.loads(stdout)  # stdout is pure JSON under --json
        hotpath = payload["hotpath"]
        assert hotpath["results_identical"] is True
        assert hotpath["speedup"] is None or hotpath["speedup"] > 0
        assert hotpath["backends"] == ["dict", "array"]
        assert hotpath["decisions_graded"] == len(study.decisions) * 7
        # The sections written this run also landed in the bench file.
        recorded = json.loads(out.read_text())
        assert recorded["hotpath"]["results_identical"] is True
        assert "classification" in recorded and "cache" in recorded

    def test_speedup_gate_failure_exits_nonzero(self, tmp_path, capsys, study):
        code, _stdout, _out = _run(
            tmp_path, capsys, "--check-hotpath-speedup", "1000000"
        )
        assert code != 0

    def test_speedup_gate_passes_at_low_floor(self, tmp_path, capsys, study):
        code, _stdout, _out = _run(
            tmp_path, capsys, "--check-hotpath-speedup", "0.0001"
        )
        assert code == 0
