"""StageTimer behavior."""

import pytest

from repro.perf.timing import StageRecord, StageTimer

pytestmark = pytest.mark.tier1


class TestStageTimer:
    def test_stage_records_elapsed_time(self):
        timer = StageTimer()
        with timer.stage("work"):
            pass
        assert "work" in timer
        assert timer.seconds("work") >= 0.0

    def test_records_even_on_exception(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("boom"):
                raise RuntimeError("stage failed")
        assert "boom" in timer

    def test_repeated_stages_accumulate(self):
        timer = StageTimer()
        with timer.stage("loop"):
            pass
        with timer.stage("loop"):
            pass
        records = {record.name: record for record in timer.records()}
        assert records["loop"].calls == 2
        assert len(timer) == 1

    def test_record_accumulates_manually(self):
        timer = StageTimer()
        timer.record("manual", 1.5)
        timer.record("manual", 0.5)
        assert timer.seconds("manual") == 2.0
        assert timer.total() == 2.0
        assert timer.records()[0] == StageRecord("manual", seconds=2.0, calls=2)

    def test_as_dict_preserves_insertion_order(self):
        timer = StageTimer()
        for name in ("c", "a", "b"):
            timer.record(name, 0.1)
        assert list(timer.as_dict()) == ["c", "a", "b"]

    def test_unknown_stage_is_zero(self):
        assert StageTimer().seconds("never-ran") == 0.0
