"""Daemon integration tests over real HTTP on an ephemeral port.

One module-scoped daemon (2 workers, manifests in a temp run dir)
backs the happy-path tests; admission-control tests spin up small
dedicated daemons, with the workload handler stubbed out where the
test is about queueing rather than studies.
"""

import glob
import json
import os
import threading
import time

import pytest

import repro.serve.daemon as daemon_module
from repro.check.golden import serialize, snapshot_study
from repro.obs.export import PROMETHEUS_CONTENT_TYPE
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeConfig, start_in_thread

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("serve-run"))


@pytest.fixture(scope="module")
def handle(run_dir):
    handle = start_in_thread(
        ServeConfig(port=0, workers=2, run_dir=run_dir)
    )
    yield handle
    handle.shutdown()


@pytest.fixture(scope="module")
def client(handle):
    return ServeClient(handle.host, handle.port)


class TestHappyPath:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["protocol"] == 1
        assert health["workers"] == 2

    def test_study_response_is_byte_identical_to_cli_path(self, client, study):
        """The tentpole differential: daemon bytes == CLI bytes."""
        expected = serialize(snapshot_study(study))
        payload = client.submit("study", tenant="alice")
        client.expect_protocol(payload)
        assert payload["ok"] is True
        assert payload["result"]["snapshot_json"] == expected

    def test_second_tenant_reuses_first_tenants_artifacts(self, client):
        """Cross-tenant warm-cache reuse, observable via /metrics."""
        client.submit("study", tenant="alice")
        before = client.healthz()["artifacts"]
        payload = client.submit("classify", tenant="bob")
        assert payload["ok"] is True
        figure1 = payload["result"]["figure1"]
        assert "Simple" in figure1 and "All-1" in figure1
        after = client.healthz()["artifacts"]
        # Bob's classify reran no pipeline: the study memo and both
        # routing engines (simple + partial-transit) came from Alice's
        # study request.
        assert after["study_hits"] == before["study_hits"] + 1
        assert after["engine_hits"] >= before["engine_hits"] + 2
        metrics = client.metrics()
        assert metrics["content_type"] == PROMETHEUS_CONTENT_TYPE
        text = metrics["text"]
        hits = {}
        for line in text.splitlines():
            for name in ("serve_study_cache_hits", "serve_engine_cache_hits"):
                if line.startswith(name + " "):
                    hits[name] = float(line.split()[-1])
        assert hits["serve_study_cache_hits"] == after["study_hits"]
        assert hits["serve_engine_cache_hits"] == after["engine_hits"]
        assert (
            'serve_requests_total{status="ok",tenant="bob",workload="classify"}'
            in text
        )

    def test_requests_write_manifests_into_run_dir(self, client, run_dir):
        manifests = glob.glob(os.path.join(run_dir, "manifests", "req-*.json"))
        assert manifests, "expected per-request manifests under run_dir"
        with open(manifests[0], "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["kind"] == "serve"
        assert document["meta"]["tenant"] in {"alice", "bob"}

    def test_streaming_check_yields_events_then_result(self, client):
        docs = list(
            client.stream("check", tenant="alice", params={"seeds": 2})
        )
        kinds = [doc["kind"] for doc in docs]
        assert kinds[-1] == "result"
        assert kinds.count("result") == 1
        assert "event" in kinds
        events = [doc["event"]["name"] for doc in docs if doc["kind"] == "event"]
        assert "request.start" in events
        assert "request.finish" in events
        result = docs[-1]
        assert result["ok"] is True
        assert result["result"]["ok"] is True

    def test_bad_request_is_400_not_500(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit("study", params={"turbo": True})
        assert excinfo.value.status == 400
        assert "unknown" in str(excinfo.value)

    def test_unknown_path_is_404(self, client, handle):
        import http.client

        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
        try:
            conn.request("GET", "/v2/nope")
            response = conn.getresponse()
            assert response.status == 404
            response.read()
        finally:
            conn.close()


class TestAdmissionControl:
    def test_exhausted_budget_draws_429_with_retry_after(self):
        # Budget 50 < the study cost of 60: rejected before any work.
        handle = start_in_thread(
            ServeConfig(port=0, workers=1, tenant_budget=50)
        )
        try:
            client = ServeClient(handle.host, handle.port)
            with pytest.raises(ServeError) as excinfo:
                client.submit("study", tenant="cheap")
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 60
        finally:
            handle.shutdown()

    def test_full_queue_draws_429_with_retry_after(self, monkeypatch):
        """workers=1, max_queue=0: a second in-flight request is shed."""
        release = threading.Event()

        def slow_workload(request, artifacts):
            release.wait(timeout=30)
            return {"slept": True}

        monkeypatch.setattr(daemon_module, "run_workload", slow_workload)
        handle = start_in_thread(ServeConfig(port=0, workers=1, max_queue=0))
        try:
            client = ServeClient(handle.host, handle.port)
            blocker_result = {}

            def blocker():
                blocker_result.update(client.submit("bench", tenant="slow"))

            thread = threading.Thread(target=blocker)
            thread.start()
            deadline = time.time() + 10
            while client.healthz()["inflight"] < 1:
                assert time.time() < deadline, "blocker never became in-flight"
                time.sleep(0.01)
            with pytest.raises(ServeError) as excinfo:
                client.submit("bench", tenant="shed")
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 2
            assert excinfo.value.payload["error"] == "request queue is full"
            release.set()
            thread.join(timeout=30)
            assert blocker_result["ok"] is True
        finally:
            release.set()
            handle.shutdown()

    def test_drain_rejects_new_work_and_finishes_inflight(self, monkeypatch):
        """SIGTERM semantics: 503 for new work, in-flight completes."""
        release = threading.Event()

        def slow_workload(request, artifacts):
            release.wait(timeout=30)
            return {"slept": True}

        monkeypatch.setattr(daemon_module, "run_workload", slow_workload)
        handle = start_in_thread(ServeConfig(port=0, workers=2))
        drained = False
        try:
            client = ServeClient(handle.host, handle.port)
            blocker_result = {}

            def blocker():
                blocker_result.update(client.submit("bench", tenant="slow"))

            thread = threading.Thread(target=blocker)
            thread.start()
            deadline = time.time() + 10
            while client.healthz()["inflight"] < 1:
                assert time.time() < deadline, "blocker never became in-flight"
                time.sleep(0.01)
            # Flip the draining flag on the loop thread without firing
            # the full drain (which also stops the listener, racing any
            # in-test connection against the accept loop): submits must
            # now be shed with 503 while in-flight work continues.
            handle.daemon._loop.call_soon_threadsafe(
                setattr, handle.daemon, "_draining", True
            )
            deadline = time.time() + 10
            while client.healthz()["status"] != "draining":
                assert time.time() < deadline, "drain flag never landed"
                time.sleep(0.01)
            with pytest.raises(ServeError) as excinfo:
                client.submit("bench", tenant="late")
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == 5
            release.set()
            thread.join(timeout=30)
            assert blocker_result["ok"] is True
            # Now the real drain: the daemon exits once in-flight work
            # is done, after which connections are refused outright.
            handle.shutdown()
            drained = True
            with pytest.raises(OSError):
                client.healthz()
        finally:
            release.set()
            if not drained:
                handle.shutdown()
