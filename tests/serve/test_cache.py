"""ArtifactStore unit tests: engine reuse, study memoization, LRU."""

import threading

import pytest

import repro.serve.cache as cache_module
from repro.serve.cache import ArtifactStore, _partial_fingerprint
from repro.topogen import generate_internet
from repro.topogen.config import small_config
from repro.topogen.inference import infer_topology

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def graphs():
    """Two structurally identical graphs built from separate objects."""
    first, _ = infer_topology(generate_internet(small_config(), seed=11))
    second, _ = infer_topology(generate_internet(small_config(), seed=11))
    other, _ = infer_topology(generate_internet(small_config(), seed=12))
    return first, second, other


class TestEngineCache:
    def test_identical_links_share_one_engine(self, graphs):
        """Cross-tenant reuse: distinct graph objects, one warm engine."""
        first, second, _ = graphs
        assert first is not second
        store = ArtifactStore()
        engine_a = store.engine_for(first)
        engine_b = store.engine_for(second)
        assert engine_a is engine_b
        stats = store.stats()
        assert stats["engine_misses"] == 1
        assert stats["engine_hits"] == 1
        assert stats["engine_hit_rate"] == 0.5

    def test_different_links_get_different_engines(self, graphs):
        first, _, other = graphs
        store = ArtifactStore()
        assert store.engine_for(first) is not store.engine_for(other)
        assert store.stats()["engines"] == 2

    def test_backend_and_partial_transit_partition_the_key(self, graphs):
        first, _, _ = graphs
        partial = frozenset([(1, 2)])
        store = ArtifactStore()
        plain = store.engine_for(first)
        assert store.engine_for(first, backend="array") is not plain
        assert store.engine_for(first, partial_transit=partial) is not plain
        assert store.stats()["engines"] == 3

    def test_handed_out_engines_are_thread_safe(self, graphs):
        first, _, _ = graphs
        engine = ArtifactStore().engine_for(first)
        assert engine._cache._lock is not None

    def test_empty_partial_fingerprint_is_stable(self):
        assert _partial_fingerprint(None) == "-"
        assert _partial_fingerprint(frozenset()) == "-"
        assert _partial_fingerprint(frozenset([(1, 2)])) != "-"
        assert _partial_fingerprint(
            frozenset([(1, 2), (3, 4)])
        ) == _partial_fingerprint(frozenset([(3, 4), (1, 2)]))


class _FakeStudy:
    """Stands in for the pipeline: counts builds, returns a sentinel."""

    builds = 0
    build_lock = threading.Lock()
    #: When set, builders block here until the event fires (used to
    #: hold a build open while concurrent requests pile up).
    gate = None

    def __init__(self, config, artifacts=None):
        self.config = config

    def run(self):
        if _FakeStudy.gate is not None:
            _FakeStudy.gate.wait(timeout=30)
        with _FakeStudy.build_lock:
            _FakeStudy.builds += 1
        return ("results", self.config.seed, self.config.backend)


@pytest.fixture
def fake_pipeline(monkeypatch):
    monkeypatch.setattr(cache_module, "Study", _FakeStudy)
    _FakeStudy.builds = 0
    _FakeStudy.gate = None
    yield _FakeStudy
    _FakeStudy.gate = None


class TestStudyMemoization:
    def test_same_key_builds_once(self, fake_pipeline):
        store = ArtifactStore()
        first = store.study(0, "small", "dict")
        second = store.study(0, "small", "dict")
        assert first is second
        assert fake_pipeline.builds == 1
        stats = store.stats()
        assert stats["study_misses"] == 1
        assert stats["study_hits"] == 1

    def test_distinct_keys_build_separately(self, fake_pipeline):
        store = ArtifactStore()
        store.study(0, "small", "dict")
        store.study(1, "small", "dict")
        store.study(0, "small", "array")
        assert fake_pipeline.builds == 3

    def test_concurrent_identical_requests_collapse_to_one_build(
        self, fake_pipeline
    ):
        """N racing tenants asking for the same study compute it once."""
        store = ArtifactStore()
        fake_pipeline.gate = threading.Event()
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(store.study(5, "small", "dict"))
            )
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        fake_pipeline.gate.set()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == 6
        assert all(item is results[0] for item in results)
        assert fake_pipeline.builds == 1

    def test_results_lru_is_bounded(self, fake_pipeline):
        store = ArtifactStore(max_results=2)
        store.study(0, "small", "dict")
        store.study(1, "small", "dict")
        store.study(2, "small", "dict")
        assert store.stats()["studies"] == 2
        # Seed 0 was evicted: asking again rebuilds.
        store.study(0, "small", "dict")
        assert fake_pipeline.builds == 4
