"""Tenant-registry tests: budgets, isolation, admission accounting."""

import threading

import pytest

from repro.serve.protocol import SERVE_COSTS
from repro.serve.tenants import BudgetExceeded, TenantRegistry

pytestmark = pytest.mark.serve


class TestTenantRegistry:
    def test_charges_accumulate_per_tenant(self):
        registry = TenantRegistry(daily_budget=200)
        registry.charge("alice", "study")
        registry.charge("alice", "classify")
        registry.charge("bob", "bench")
        rows = dict(
            (name, (spent, remaining))
            for name, spent, remaining in registry.tenants()
        )
        assert rows["alice"] == (80, 120)
        assert rows["bob"] == (10, 190)

    def test_budgets_are_isolated_between_tenants(self):
        registry = TenantRegistry(daily_budget=SERVE_COSTS["study"])
        registry.charge("alice", "study")
        with pytest.raises(BudgetExceeded):
            registry.charge("alice", "study")
        # Alice exhausting her ledger must not affect Bob's.
        registry.charge("bob", "study")

    def test_rejected_charge_debits_nothing(self):
        registry = TenantRegistry(daily_budget=50)
        with pytest.raises(BudgetExceeded):
            registry.charge("alice", "study")
        assert registry.remaining("alice") == 50

    def test_remaining_for_unseen_tenant_is_full_budget(self):
        assert TenantRegistry(daily_budget=77).remaining("nobody") == 77

    def test_concurrent_charges_never_oversubscribe(self):
        """The serve admission path: many threads, one tenant ledger.

        Budget covers exactly 10 bench admissions; 40 racing attempts
        must yield exactly 10 successes — an unlocked check-then-debit
        would let several threads pass the same affordability check.
        """
        registry = TenantRegistry(daily_budget=10 * SERVE_COSTS["bench"])
        admitted = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(5):
                try:
                    registry.charge("shared", "bench")
                except BudgetExceeded:
                    pass
                else:
                    admitted.append(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(admitted) == 10
        assert registry.remaining("shared") == 0
