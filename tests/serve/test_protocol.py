"""Wire-protocol unit tests: request parsing and config equivalence."""

import json

import pytest

from repro.core.pipeline import StudyConfig
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    SERVE_COSTS,
    WORKLOADS,
    ProtocolError,
    ServeRequest,
    build_study_config,
    parse_request,
    request_to_dict,
)
from repro.topogen.config import small_config

pytestmark = pytest.mark.serve


def _body(**fields) -> bytes:
    return json.dumps(fields).encode("utf-8")


class TestBuildStudyConfig:
    def test_small_matches_cli_small_path(self):
        """The daemon's quick config must equal `repro study --small`.

        This equality is what makes the daemon-vs-CLI byte-identity
        differential meaningful: both paths feed the pipeline the same
        StudyConfig, so any response divergence is daemon plumbing.
        """
        expected = StudyConfig(
            topology=small_config(), seed=7, backend="array"
        )
        expected.num_probes = 400
        expected.probes_per_continent = 25
        expected.active_vp_budget = 40
        expected.max_discovery_targets = 20
        assert build_study_config(seed=7, scale="small", backend="array") == expected

    def test_full_scale_keeps_defaults(self):
        config = build_study_config(seed=3, scale="full", backend="dict")
        assert config == StudyConfig(seed=3, backend="dict")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ProtocolError, match="scale"):
            build_study_config(seed=0, scale="medium", backend="dict")


class TestParseRequest:
    def test_minimal_study(self):
        request = parse_request(_body(workload="study"))
        assert request == ServeRequest(workload="study")
        assert request.tenant == "anonymous"
        assert request.scale == "small"

    def test_full_request_round_trips_to_dict(self):
        request = parse_request(
            _body(
                workload="check",
                tenant="alice",
                seed=9,
                scale="small",
                backend="array",
                stream=True,
                seeds=5,
            )
        )
        assert request.tenant == "alice"
        assert request.stream is True
        assert request.params == {"seeds": 5}
        doc = request_to_dict(request)
        assert doc["workload"] == "check"
        assert doc["tenant"] == "alice"
        assert doc["seeds"] == 5

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError):
            parse_request(b"not json")

    def test_rejects_unknown_workload(self):
        with pytest.raises(ProtocolError, match="workload"):
            parse_request(_body(workload="mine-bitcoin"))

    def test_rejects_unknown_field(self):
        with pytest.raises(ProtocolError, match="unknown"):
            parse_request(_body(workload="study", turbo=True))

    def test_rejects_unknown_backend(self):
        with pytest.raises(ProtocolError, match="backend"):
            parse_request(_body(workload="study", backend="gpu"))

    def test_rejects_out_of_range_seed(self):
        with pytest.raises(ProtocolError, match="seed"):
            parse_request(_body(workload="study", seed=-1))
        with pytest.raises(ProtocolError, match="seed"):
            parse_request(_body(workload="study", seed=2**31))

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ProtocolError, match="seed"):
            parse_request(_body(workload="study", seed="zero"))

    def test_check_seeds_bounded(self):
        with pytest.raises(ProtocolError, match="seeds"):
            parse_request(_body(workload="check", seeds=0))
        with pytest.raises(ProtocolError, match="seeds"):
            parse_request(_body(workload="check", seeds=10_000))


class TestCosts:
    def test_every_workload_has_a_cost(self):
        assert set(SERVE_COSTS) == set(WORKLOADS)
        assert all(cost > 0 for cost in SERVE_COSTS.values())

    def test_protocol_version_is_stable(self):
        assert PROTOCOL_VERSION == 1
