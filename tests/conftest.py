"""Shared fixtures for the test suite."""

import pytest

from repro.experiments.scenario import quick_study


@pytest.fixture(scope="session")
def study():
    """A small but complete study shared by integration tests."""
    return quick_study()
