"""Shared fixtures for the test suite."""

import pytest

from repro.experiments.scenario import DEFAULT_SEED, quick_study

#: The canonical seed; goldens under tests/golden/ are blessed at it.
STUDY_SEED = DEFAULT_SEED


@pytest.fixture(scope="session")
def study():
    """A small but complete study shared by integration tests."""
    return quick_study(STUDY_SEED)
