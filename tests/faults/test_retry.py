"""Tests for the seeded retry policy and its virtual clock."""

import random

import pytest

from repro.faults import (
    DnsServfail,
    DnsTimeout,
    MalformedResultError,
    RetryExhausted,
    RetryPolicy,
    RetryStats,
)

pytestmark = pytest.mark.faults


def _fail_times(n, error_factory=DnsTimeout):
    """A callable that fails the first ``n`` attempts, then succeeds."""

    def fn(attempt):
        if attempt <= n:
            raise error_factory(f"attempt {attempt} failed")
        return f"ok@{attempt}"

    return fn


class TestExecute:
    def test_success_first_try(self):
        stats = RetryStats()
        policy = RetryPolicy(max_attempts=3)
        assert policy.execute(_fail_times(0), key=("k",), stats=stats) == "ok@1"
        assert stats.attempts == 1
        assert stats.retries == 0
        assert stats.succeeded_after_retry == 0

    def test_transient_fault_recovers(self):
        stats = RetryStats()
        policy = RetryPolicy(max_attempts=4)
        assert policy.execute(_fail_times(2), key=("k",), stats=stats) == "ok@3"
        assert stats.attempts == 3
        assert stats.retries == 2
        assert stats.succeeded_after_retry == 1
        assert stats.retries_by_site == {"atlas/dns": 2}

    def test_exhaustion_raises_with_last_error(self):
        stats = RetryStats()
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(RetryExhausted) as excinfo:
            policy.execute(_fail_times(99, DnsServfail), key=("k",), stats=stats)
        assert isinstance(excinfo.value.last_error, DnsServfail)
        assert excinfo.value.attempts == 3
        assert excinfo.value.reason == "exhausted:dns-servfail"
        assert stats.exhausted == 1
        assert stats.exhausted_by_reason == {"dns-servfail": 1}

    def test_non_retryable_propagates_immediately(self):
        stats = RetryStats()
        policy = RetryPolicy(max_attempts=5)

        def fn(attempt):
            raise MalformedResultError("garbage")

        with pytest.raises(MalformedResultError):
            policy.execute(fn, key=("k",), stats=stats)
        assert stats.attempts == 1
        assert stats.retries == 0

    def test_other_exceptions_not_swallowed(self):
        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(ZeroDivisionError):
            policy.execute(lambda attempt: 1 // 0)

    def test_deadline_cuts_retries_short(self):
        stats = RetryStats()
        # Each failed attempt costs 10 virtual seconds; deadline of 15
        # cannot fit a second full attempt + backoff.
        policy = RetryPolicy(
            max_attempts=10,
            attempt_timeout_s=10.0,
            base_delay_s=8.0,
            multiplier=1.0,
            deadline_s=15.0,
        )
        with pytest.raises(RetryExhausted):
            policy.execute(_fail_times(99), key=("k",), stats=stats)
        assert stats.attempts < 10

    def test_deterministic_given_key(self):
        policy = RetryPolicy(max_attempts=5, seed=7)
        s1, s2 = RetryStats(), RetryStats()
        with pytest.raises(RetryExhausted):
            policy.execute(_fail_times(99), key=("pair", 1), stats=s1)
        with pytest.raises(RetryExhausted):
            policy.execute(_fail_times(99), key=("pair", 1), stats=s2)
        assert s1.as_dict() == s2.as_dict()


class TestBackoff:
    def test_full_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=8.0, multiplier=2.0)
        rng = random.Random(0)
        for attempt in range(1, 8):
            cap = min(8.0, 1.0 * 2.0 ** (attempt - 1))
            for _ in range(20):
                delay = policy.backoff(attempt, rng)
                assert 0.0 <= delay <= cap

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)


class TestStats:
    def test_merge_accumulates(self):
        a, b = RetryStats(), RetryStats()
        a.calls, a.attempts, a.retries = 1, 3, 2
        a.retries_by_site["atlas/dns"] = 2
        b.calls, b.attempts, b.exhausted = 2, 4, 1
        b.retries_by_site["atlas/dns"] = 1
        b.exhausted_by_reason["exhausted:dns-timeout"] = 1
        a.merge(b)
        assert a.calls == 3
        assert a.attempts == 7
        assert a.retries_by_site == {"atlas/dns": 3}
        assert a.exhausted_by_reason == {"exhausted:dns-timeout": 1}
