"""Supervised shard executor: crash, hang, and corruption drills.

The generic-executor tests drive :class:`SupervisedShardExecutor` with
a tiny echo worker whose faults are scripted per ``(shard, attempt)``,
so every rung of the degradation ladder (retry -> respawn ->
quarantine -> serial, plus breaker-driven full degradation) is
exercised deterministically.  The classifier tests then run the real
routing-tree pool under seeded :class:`FaultPlan` injection and assert
the supervised results are identical to the fault-free serial path —
the contract the whole subsystem exists to keep.
"""

import json
import os
import signal
import time

import pytest

from repro.core.classification import Decision, LayerConfig, label_decisions_serial
from repro.core.gao_rexford import GaoRexfordEngine
from repro.faults import (
    CampaignInterrupted,
    CircuitBreaker,
    FaultPlan,
    FaultSite,
    JournalCorrupted,
    RetryPolicy,
    Shard,
    ShardExecutionError,
    ShardJournal,
    SupervisedShardExecutor,
)
from repro.faults.storage import decode_line
from repro.net.ip import Prefix
from repro.perf.parallel import ParallelClassifier

pytestmark = pytest.mark.faults

PFX = Prefix.parse("198.51.100.0/24")


# ---------------------------------------------------------------------------
# Scripted echo worker (module level for picklability)
# ---------------------------------------------------------------------------


def _echo_worker(task, shard_id="", attempt=1):
    """Doubles ``value``; faults are scripted as ``{attempt: action}``."""
    value, faults = task
    action = faults.get(attempt)
    if action == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        time.sleep(30.0)
    elif action == "raise":
        raise RuntimeError("worker exploded")
    elif action == "corrupt":
        return ("corrupt", value)
    return ("ok", value * 2)


def _shards(count, faults=None):
    """``count`` echo shards; ``faults`` maps ordinal -> attempt script."""
    faults = faults or {}
    return [
        Shard(shard_id=f"s{i}", task=(i, faults.get(i, {})), keys=(i,))
        for i in range(count)
    ]


def _run(shards, *, retry=None, breaker=None, timeout=60.0, journal=None,
         fingerprint="", abort_after=None, serial_fn=None):
    results = {}
    executor = SupervisedShardExecutor(
        _echo_worker,
        workers=2,
        retry=retry if retry is not None else RetryPolicy(seed=7),
        breaker=breaker,
        shard_timeout_s=timeout,
        journal=journal,
        context_fingerprint=fingerprint,
        abort_after=abort_after,
    )
    report = executor.run(
        shards,
        serial_fn=serial_fn or (lambda shard: ("ok", shard.task[0] * 2)),
        install_fn=lambda shard, result: results.__setitem__(
            shard.shard_id, result
        ),
        validate_fn=lambda shard, result: (
            None if result[0] == "ok" else "corruption marker"
        ),
    )
    return results, report


def _expected(count):
    return {f"s{i}": ("ok", i * 2) for i in range(count)}


class TestExecutorGuards:
    def test_fewer_than_two_workers_rejected(self):
        with pytest.raises(ValueError, match="needs >= 2 workers"):
            SupervisedShardExecutor(_echo_worker, workers=1)

    def test_duplicate_shard_ids_rejected(self):
        shards = [
            Shard(shard_id="dup", task=(0, {}), keys=(0,)),
            Shard(shard_id="dup", task=(1, {}), keys=(1,)),
        ]
        with pytest.raises(ValueError, match="unique"):
            _run(shards)


class TestDegradationLadder:
    def test_zero_fault_round(self):
        results, report = _run(_shards(5))
        assert results == _expected(5)
        assert report.accounted()
        assert report.completed_parallel == 5
        assert report.retries == 0
        assert report.completed_serial == 0
        assert not report.degraded_serial_mode

    def test_crash_retried_on_respawned_pool(self):
        results, report = _run(_shards(5, faults={0: {1: "crash"}}))
        assert results == _expected(5)
        assert report.accounted()
        assert report.worker_crashes >= 1
        assert report.respawns >= 1
        assert report.retries >= 1
        # The crash cleared on retry: nothing fell through to serial.
        assert report.completed_parallel == 5
        assert report.quarantined == []

    def test_hang_detected_under_deadline(self):
        results, report = _run(
            _shards(4, faults={1: {1: "hang"}}), timeout=1.0
        )
        assert results == _expected(4)
        assert report.accounted()
        assert report.worker_hangs == 1
        assert report.respawns >= 1

    def test_corrupt_result_rejected_and_retried(self):
        results, report = _run(_shards(4, faults={2: {1: "corrupt"}}))
        assert results == _expected(4)
        assert report.accounted()
        assert report.corrupt_results == 1
        assert report.retries >= 1
        # Corruption is parent-detected: the pool never broke.
        assert report.respawns == 0
        assert report.completed_parallel == 4

    def test_worker_exception_counted_separately(self):
        results, report = _run(_shards(3, faults={0: {1: "raise"}}))
        assert results == _expected(3)
        assert report.accounted()
        assert report.worker_errors == 1
        assert report.worker_crashes == 0
        assert report.retry.retries_by_site

    def test_persistent_crash_quarantined_to_serial(self):
        script = {attempt: "crash" for attempt in range(1, 10)}
        results, report = _run(_shards(3, faults={1: script}))
        assert results == _expected(3)
        assert report.accounted()
        assert "s1" in report.quarantined
        assert report.completed_serial == 1
        assert report.completed_parallel == 2
        assert report.retry.exhausted == 1

    def test_breaker_trip_degrades_remaining_to_serial(self):
        script = {attempt: "crash" for attempt in range(1, 20)}
        breaker = CircuitBreaker(failure_threshold=2, cooldown=100)
        results, report = _run(
            _shards(4, faults={i: script for i in range(4)}),
            retry=RetryPolicy(max_attempts=8, deadline_s=None, seed=3),
            breaker=breaker,
        )
        assert results == _expected(4)
        assert report.accounted()
        assert report.degraded_serial_mode
        assert report.completed_serial == 4
        assert report.completed_parallel == 0
        assert report.breaker is not None

    def test_serial_failure_is_a_structured_error(self):
        script = {attempt: "crash" for attempt in range(1, 10)}

        def broken_serial(shard):
            raise RuntimeError("serial path broken too")

        with pytest.raises(ShardExecutionError) as info:
            _run(_shards(2, faults={0: script}), serial_fn=broken_serial)
        assert info.value.shard_id == "s0"
        assert info.value.keys == (0,)


class TestShardJournal:
    """Torn-line recovery on the shard journal (crash-drill semantics)."""

    def _journaled_run(self, path, count=4):
        results, report = _run(
            _shards(count), journal=ShardJournal(path), fingerprint="fp-1"
        )
        assert results == _expected(count)
        assert report.completed_parallel == count
        return path

    def test_torn_tail_dropped_and_replayed(self, tmp_path):
        path = self._journaled_run(str(tmp_path / "run.shards"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "shard", "shard": "s9", "pay')  # torn
        results, report = _run(
            _shards(4), journal=ShardJournal(path), fingerprint="fp-1"
        )
        assert results == _expected(4)
        assert report.resumed == 4
        assert report.journal_torn_lines == 1
        assert report.attempts == 0  # nothing re-dispatched

    def test_interior_corruption_refuses_to_load(self, tmp_path):
        path = self._journaled_run(str(tmp_path / "run.shards"))
        lines = open(path, encoding="utf-8").read().splitlines()
        lines.insert(2, "corrupted interior line")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalCorrupted):
            _run(_shards(4), journal=ShardJournal(path), fingerprint="fp-1")

    def test_invalid_payload_recomputed_not_trusted(self, tmp_path):
        path = self._journaled_run(str(tmp_path / "run.shards"))
        lines = open(path, encoding="utf-8").read().splitlines()
        record = json.loads(decode_line(lines[1])[0])
        record["payload"] = "!!! not base64 pickle !!!"
        # Written unframed (legacy format) — loaders accept both.
        lines[1] = json.dumps(record, sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        results, report = _run(
            _shards(4), journal=ShardJournal(path), fingerprint="fp-1"
        )
        assert results == _expected(4)
        assert report.journal_invalid_records == 1
        assert report.resumed == 3
        assert report.completed_parallel == 1

    def test_foreign_journal_refused(self, tmp_path):
        path = self._journaled_run(str(tmp_path / "run.shards"))
        with pytest.raises(ValueError, match="refusing to resume"):
            _run(_shards(4), journal=ShardJournal(path), fingerprint="fp-2")


# ---------------------------------------------------------------------------
# The real routing-tree pool under seeded fault injection
# ---------------------------------------------------------------------------


def _ladder_graph(rungs=6):
    """Two provider chains joined by peer rungs; destination at 1."""
    from repro.topology import ASGraph, Relationship

    graph = ASGraph()
    for i in range(1, rungs):
        graph.add_link(2 * i + 1, 2 * i - 1, Relationship.CUSTOMER)
        graph.add_link(2 * i + 2, 2 * i, Relationship.CUSTOMER)
        graph.add_link(2 * i - 1, 2 * i, Relationship.PEER)
    graph.add_link(2, 1, Relationship.CUSTOMER)
    return graph


def _decisions(graph, destinations):
    asns = sorted(graph.asns())
    decisions = []
    for destination in destinations:
        for asn in asns:
            for next_hop in asns:
                if asn in (next_hop, destination) or next_hop == destination:
                    continue
                decisions.append(
                    Decision(
                        asn=asn,
                        next_hop=next_hop,
                        destination=destination,
                        prefix=PFX,
                        measured_len=2,
                        source_asn=asn,
                    )
                )
    return decisions


def _reference_labels(graph, decisions, backend):
    return label_decisions_serial(
        decisions, GaoRexfordEngine(graph, backend=backend)
    )


class TestSupervisedClassifier:
    def test_chaos_plan_matches_fault_free_serial(self):
        """The ISSUE acceptance drill: >=3 crashes plus a hang, and the
        supervised pool still produces the serial fault-free labels."""
        graph = _ladder_graph()
        destinations = sorted(graph.asns())[:8]
        decisions = _decisions(graph, destinations)
        expected = _reference_labels(graph, decisions, "dict")

        plan = FaultPlan(
            seed=8,
            rates={
                FaultSite.POOL_WORKER_CRASH: 0.4,
                FaultSite.POOL_WORKER_HANG: 0.2,
            },
        )
        classifier = ParallelClassifier(
            workers=2,
            min_parallel_trees=1,
            chunk_size=1,
            fault_plan=plan,
            shard_timeout_s=1.0,
            hang_sleep_s=8.0,
        )
        engine = GaoRexfordEngine(graph)
        labels = classifier.label_layer(decisions, LayerConfig(engine=engine))

        assert labels == expected
        report = classifier.last_shard_report
        assert report is not None
        assert report.accounted()
        assert report.worker_crashes >= 3
        assert report.worker_hangs >= 1
        assert report.respawns >= 1

    def test_zero_fault_supervised_matches_raw(self):
        graph = _ladder_graph()
        decisions = _decisions(graph, sorted(graph.asns())[:6])
        expected = _reference_labels(graph, decisions, "dict")
        for supervised in (True, False):
            classifier = ParallelClassifier(
                workers=2, min_parallel_trees=1, supervised=supervised
            )
            engine = GaoRexfordEngine(graph)
            labels = classifier.label_layer(
                decisions, LayerConfig(engine=engine)
            )
            assert labels == expected
        # Only the supervised run carries a shard report.
        assert classifier.last_shard_report is None

    @pytest.mark.parametrize("backend", ["dict", "array"])
    def test_kill_mid_precompute_then_resume(self, backend, tmp_path):
        """Crash drill: abort after two journaled shards, tear the tail,
        resume — labels are identical and journaled work is not redone."""
        graph = _ladder_graph()
        decisions = _decisions(graph, sorted(graph.asns())[:6])
        expected = _reference_labels(graph, decisions, backend)
        checkpoint = str(tmp_path / f"{backend}.shards")

        first = ParallelClassifier(
            workers=2,
            min_parallel_trees=1,
            chunk_size=2,
            shard_checkpoint=checkpoint,
            abort_after_shards=2,
        )
        engine = GaoRexfordEngine(graph, backend=backend)
        with pytest.raises(CampaignInterrupted):
            first.label_layer(decisions, LayerConfig(engine=engine))
        with open(checkpoint, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "shard", "shard": "0:9')  # torn write

        second = ParallelClassifier(
            workers=2,
            min_parallel_trees=1,
            chunk_size=2,
            shard_checkpoint=checkpoint,
            resume=True,
        )
        engine = GaoRexfordEngine(graph, backend=backend)
        labels = second.label_layer(decisions, LayerConfig(engine=engine))

        assert labels == expected
        report = second.last_shard_report
        assert report is not None
        assert report.accounted()
        assert report.resumed == 2
        assert report.journal_torn_lines == 1

    def test_resume_refused_for_a_different_graph(self, tmp_path):
        checkpoint = str(tmp_path / "study.shards")
        graph = _ladder_graph()
        decisions = _decisions(graph, sorted(graph.asns())[:6])
        writer = ParallelClassifier(
            workers=2, min_parallel_trees=1, shard_checkpoint=checkpoint
        )
        writer.label_layer(
            decisions, LayerConfig(engine=GaoRexfordEngine(graph))
        )

        other_graph = _ladder_graph(rungs=7)
        other_decisions = _decisions(other_graph, sorted(other_graph.asns())[:6])
        reader = ParallelClassifier(
            workers=2,
            min_parallel_trees=1,
            shard_checkpoint=checkpoint,
            resume=True,
        )
        with pytest.raises(ValueError, match="refusing to resume"):
            reader.label_layer(
                other_decisions,
                LayerConfig(engine=GaoRexfordEngine(other_graph)),
            )
