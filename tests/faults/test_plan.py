"""Tests for seeded deterministic fault plans."""

import pytest

from repro.faults import FaultPlan, FaultSite, derive_seed

pytestmark = pytest.mark.faults


class TestRolls:
    def test_roll_is_deterministic(self):
        plan = FaultPlan(seed=42, rates={FaultSite.DNS_TIMEOUT: 0.5})
        first = plan.roll(FaultSite.DNS_TIMEOUT, 7, "cdn.example", 1)
        second = plan.roll(FaultSite.DNS_TIMEOUT, 7, "cdn.example", 1)
        assert first == second
        assert 0.0 <= first < 1.0

    def test_roll_independent_of_call_order(self):
        plan = FaultPlan(seed=42)
        a_then_b = (plan.roll(FaultSite.PROBE_FLAP, 1), plan.roll(FaultSite.PROBE_FLAP, 2))
        b_then_a = (plan.roll(FaultSite.PROBE_FLAP, 2), plan.roll(FaultSite.PROBE_FLAP, 1))
        assert a_then_b == (b_then_a[1], b_then_a[0])

    def test_sites_do_not_interfere(self):
        plan = FaultPlan(seed=42)
        assert plan.roll(FaultSite.DNS_TIMEOUT, 1) != plan.roll(
            FaultSite.DNS_SERVFAIL, 1
        )

    def test_seed_changes_rolls(self):
        a = FaultPlan(seed=1).roll(FaultSite.API_RATE_LIMIT, 3, "x")
        b = FaultPlan(seed=2).roll(FaultSite.API_RATE_LIMIT, 3, "x")
        assert a != b

    def test_fires_respects_rate(self):
        never = FaultPlan(seed=1, rates={})
        always = FaultPlan(seed=1, rates={FaultSite.MUX_RESET: 1.0})
        assert not never.fires(FaultSite.MUX_RESET, "p")
        assert always.fires(FaultSite.MUX_RESET, "p")

    def test_fire_frequency_tracks_rate(self):
        plan = FaultPlan(seed=9, rates={FaultSite.PROBE_DROPOUT: 0.3})
        fired = sum(
            1 for key in range(2000) if plan.fires(FaultSite.PROBE_DROPOUT, key)
        )
        assert 0.25 < fired / 2000 < 0.35


class TestValidationAndSerialization:
    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=0, rates={FaultSite.DNS_TIMEOUT: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(seed=0, rates={FaultSite.DNS_TIMEOUT: -0.1})

    def test_rejects_unknown_site_name(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(seed=0, rates={"atlas/dns:wat": 0.1})

    def test_string_site_names_accepted(self):
        plan = FaultPlan(seed=0, rates={"atlas/dns:timeout": 0.2})
        assert plan.rate(FaultSite.DNS_TIMEOUT) == 0.2

    def test_json_roundtrip(self):
        plan = FaultPlan(
            seed=5,
            rates={FaultSite.DNS_TIMEOUT: 0.1, FaultSite.API_RATE_LIMIT: 0.05},
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_file_roundtrip(self, tmp_path):
        plan = FaultPlan(seed=5, rates={FaultSite.TRACEROUTE_GARBLE: 0.02})
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_fingerprint_distinguishes_plans(self):
        a = FaultPlan(seed=1, rates={FaultSite.DNS_TIMEOUT: 0.1})
        b = FaultPlan(seed=1, rates={FaultSite.DNS_TIMEOUT: 0.2})
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == FaultPlan.from_json(a.to_json()).fingerprint()

    def test_none_plan_is_zero(self):
        assert FaultPlan.none(seed=3).is_zero()
        assert not FaultPlan(seed=3, rates={FaultSite.MUX_RESET: 0.5}).is_zero()


class TestDeriveSeed:
    def test_stable_and_distinct(self):
        assert derive_seed(1, "trace", 2, "x") == derive_seed(1, "trace", 2, "x")
        assert derive_seed(1, "trace", 2, "x") != derive_seed(1, "trace", 2, "y")
