"""Tests for the durable-storage primitives and the run ledger.

Covers the CRC32 line framing, durability policies, atomic replace,
the advisory run lock, the four injected filesystem fault sites, and
the fuzz property the journal recovery rests on: a journal truncated
at *any* byte offset loads as a strict prefix of the true records (or
raises ``JournalCorrupted``) — never as wrong records.
"""

import errno
import json
import os

import pytest

from repro.faults import CheckpointJournal, JournalCorrupted
from repro.faults.errors import CampaignInterrupted
from repro.faults.ledger import (
    STATUS_COMPLETED,
    STATUS_RUNNING,
    RunLedger,
)
from repro.faults.plan import FaultPlan, FaultSite
from repro.faults.storage import (
    DURABILITY_FLUSH,
    DURABILITY_FSYNC,
    DURABILITY_NONE,
    LockHeldError,
    RunLock,
    StoragePolicy,
    atomic_replace,
    decode_line,
    default_durability,
    durable_append,
    frame_line,
    plant_stale_lock,
    write_text_atomic,
)

pytestmark = pytest.mark.faults


def _plan(site, rate=1.0, seed=7):
    return FaultPlan(seed=seed, rates={site: rate})


# ----------------------------------------------------------------------
# CRC32 framing
# ----------------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self):
        payload = json.dumps({"kind": "pair", "probe": 3})
        line = frame_line(payload)
        decoded, crc_ok = decode_line(line)
        assert decoded == payload
        assert crc_ok is True

    def test_legacy_line_passes_through(self):
        payload = '{"kind": "pair", "probe": 3}'
        decoded, crc_ok = decode_line(payload)
        assert decoded == payload
        assert crc_ok is None

    def test_every_single_byte_flip_detected(self):
        payload = json.dumps({"kind": "pair", "probe": 3, "name": "a.example"})
        line = frame_line(payload)
        for index in range(len(line)):
            mutated = line[:index] + chr(ord(line[index]) ^ 0x01) + line[index + 1 :]
            decoded, crc_ok = decode_line(mutated)
            # Either the frame no longer parses (crc_ok None, payload is
            # the raw mutated line — not valid JSON of the original) or
            # the checksum flags it.  It must never verify.
            if crc_ok is None:
                assert decoded != payload
            else:
                assert crc_ok is False

    def test_empty_payload(self):
        line = frame_line("")
        decoded, crc_ok = decode_line(line)
        assert decoded == ""
        assert crc_ok is True


# ----------------------------------------------------------------------
# Durable writes
# ----------------------------------------------------------------------


class TestDurableAppend:
    @pytest.mark.parametrize(
        "durability", [DURABILITY_FSYNC, DURABILITY_FLUSH, DURABILITY_NONE]
    )
    def test_appends_under_every_policy(self, tmp_path, durability):
        path = str(tmp_path / "log.txt")
        with open(path, "a", encoding="utf-8") as handle:
            durable_append(handle, "one\n", durability)
            durable_append(handle, "two\n", durability)
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "one\ntwo\n"

    def test_default_durability_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_DURABILITY", "flush")
        assert default_durability() == DURABILITY_FLUSH

    def test_default_durability_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_DURABILITY", "lazy")
        with pytest.raises(ValueError):
            default_durability()

    def test_policy_rejects_unknown_durability(self):
        with pytest.raises(ValueError):
            StoragePolicy(durability="eventually")


class TestAtomicReplace:
    def test_creates_and_replaces(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_replace(path, "old\n")
        atomic_replace(path, "new\n")
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "new\n"
        assert not os.path.exists(path + ".tmp")

    def test_creates_missing_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "doc.json")
        write_text_atomic(path, "data\n")
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "data\n"

    def test_injected_crash_leaves_target_intact(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_replace(path, "old\n")
        storage = StoragePolicy(
            durability=DURABILITY_FLUSH,
            fault_plan=_plan(FaultSite.STORAGE_RENAME_CRASH),
        )
        with pytest.raises(CampaignInterrupted):
            atomic_replace(path, "new\n", storage, 1)
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "old\n"  # old content survives
        assert os.path.exists(path + ".tmp")  # the crash leaves the temp

    def test_crash_then_retry_succeeds(self, tmp_path):
        path = str(tmp_path / "doc.json")
        storage = StoragePolicy(
            durability=DURABILITY_FLUSH,
            fault_plan=_plan(FaultSite.STORAGE_RENAME_CRASH),
        )
        with pytest.raises(CampaignInterrupted):
            atomic_replace(path, "v1\n", storage, 1)
        # A different salt (next ledger generation) re-rolls the site.
        retried = StoragePolicy(
            durability=DURABILITY_FLUSH,
            fault_plan=FaultPlan(seed=7, rates={}),
        )
        atomic_replace(path, "v1\n", retried, 1)
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "v1\n"


class TestStoragePolicySalt:
    def test_salt_changes_fault_decisions(self):
        plan = _plan(FaultSite.STORAGE_TORN_APPEND, rate=0.5)
        decisions = set()
        for salt in range(8):
            policy = StoragePolicy(
                durability=DURABILITY_NONE, fault_plan=plan, salt=salt
            )
            decisions.add(
                tuple(
                    policy.fires(FaultSite.STORAGE_TORN_APPEND, "campaign.jsonl", n)
                    for n in range(16)
                )
            )
        # Different generations must not replay the same crash schedule.
        assert len(decisions) > 1

    def test_no_plan_never_fires(self):
        policy = StoragePolicy(durability=DURABILITY_NONE)
        assert policy.fires(FaultSite.STORAGE_ENOSPC, "x", 0) is False
        assert policy.roll(FaultSite.STORAGE_ENOSPC, "x", 0) == 0.0


# ----------------------------------------------------------------------
# Run lock
# ----------------------------------------------------------------------


class TestRunLock:
    def test_acquire_release(self, tmp_path):
        path = str(tmp_path / ".lock")
        with RunLock(path) as lock:
            assert lock.held
            assert os.path.exists(path)
            with open(path, encoding="utf-8") as handle:
                assert json.load(handle)["pid"] == os.getpid()
        assert not os.path.exists(path)

    def test_live_foreign_pid_refused(self, tmp_path):
        path = str(tmp_path / ".lock")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"pid": 1}))  # init: alive, not us
        with pytest.raises(LockHeldError):
            RunLock(path).acquire()

    def test_stale_dead_pid_broken(self, tmp_path):
        path = str(tmp_path / ".lock")
        plant_stale_lock(path)
        lock = RunLock(path).acquire()
        assert lock.held
        assert lock.stale_broken == 1
        lock.release()

    def test_own_pid_broken(self, tmp_path):
        # A run that crashed and resumed inside the same process must be
        # able to re-enter its own directory.
        path = str(tmp_path / ".lock")
        first = RunLock(path).acquire()
        second = RunLock(path).acquire()
        assert second.stale_broken == 1
        second.release()
        first.release()

    def test_unreadable_lockfile_broken(self, tmp_path):
        path = str(tmp_path / ".lock")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json")
        lock = RunLock(path).acquire()
        assert lock.stale_broken == 1
        lock.release()


# ----------------------------------------------------------------------
# Injected journal faults
# ----------------------------------------------------------------------


def _pair(probe, name):
    return {"probe": probe, "name": name, "status": "completed", "charged": 70}


def _journal(path, site=None, rate=1.0):
    plan = None if site is None else _plan(site, rate)
    storage = StoragePolicy(durability=DURABILITY_FLUSH, fault_plan=plan)
    return CheckpointJournal(path, storage=storage)


class TestInjectedJournalFaults:
    def test_enospc_raises_oserror(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with pytest.raises(OSError) as excinfo:
            with _journal(path, FaultSite.STORAGE_ENOSPC) as journal:
                journal.append(_pair(1, "a"))
        assert excinfo.value.errno == errno.ENOSPC

    def test_torn_append_recoverable(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with pytest.raises(CampaignInterrupted):
            with _journal(path, FaultSite.STORAGE_TORN_APPEND) as journal:
                journal.append(_pair(1, "a"))
        # The injected tear left a partial line with no newline; a
        # clean journal must load it as zero records, then repair it.
        torn = CheckpointJournal(path)
        _header, records = torn.load()
        assert records == []
        assert torn.torn_lines == 1
        with CheckpointJournal(path) as journal:
            journal.append(_pair(1, "a"))
        _header, records = CheckpointJournal(path).load()
        assert [(r["probe"], r["name"]) for r in records] == [(1, "a")]

    def test_zero_rate_never_fires(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with _journal(path, FaultSite.STORAGE_ENOSPC, rate=0.0) as journal:
            for n in range(20):
                journal.append(_pair(n, "x"))
        _header, records = CheckpointJournal(path).load()
        assert len(records) == 20


# ----------------------------------------------------------------------
# Truncation / corruption fuzz (the recovery property)
# ----------------------------------------------------------------------


def _build_journal(path, n_records=6):
    with CheckpointJournal(path) as journal:
        journal.write_header({"campaign_seed": 3, "plan_fingerprint": "fp"})
        for n in range(n_records):
            journal.append(_pair(n, f"name-{n}.example"))
    header, records = CheckpointJournal(path).load()
    assert len(records) == n_records
    return header, records


class TestTruncationFuzz:
    def test_truncate_at_every_byte_offset(self, tmp_path):
        """A journal cut at *any* byte loads as a prefix — never junk."""
        path = str(tmp_path / "campaign.jsonl")
        full_header, full_records = _build_journal(path)
        with open(path, "rb") as handle:
            raw = handle.read()
        for cut in range(len(raw) + 1):
            truncated = str(tmp_path / "cut.jsonl")
            with open(truncated, "wb") as handle:
                handle.write(raw[:cut])
            header, records = CheckpointJournal(truncated).load()
            # Strict prefix property: every surviving record is the
            # true record at its position.  No invented or reordered
            # records, ever.
            assert records == full_records[: len(records)]
            assert header is None or header == full_header

    def test_truncated_tail_repairs_on_append(self, tmp_path):
        """After any truncation, open_append + append yields a journal
        that loads cleanly (no interior corruption left behind)."""
        path = str(tmp_path / "campaign.jsonl")
        _full_header, full_records = _build_journal(path, n_records=4)
        with open(path, "rb") as handle:
            raw = handle.read()
        # Sample offsets: every 7th byte plus the exact line boundaries.
        offsets = set(range(0, len(raw) + 1, 7)) | {0, len(raw)}
        for cut in sorted(offsets):
            truncated = str(tmp_path / f"cut-{cut}.jsonl")
            with open(truncated, "wb") as handle:
                handle.write(raw[:cut])
            with CheckpointJournal(truncated) as journal:
                journal.append(_pair(99, "appended.example"))
            _header, records = CheckpointJournal(truncated).load()
            assert records[:-1] == full_records[: len(records) - 1]
            assert (records[-1]["probe"], records[-1]["name"]) == (
                99,
                "appended.example",
            )

    def test_interior_byte_flips_detected(self, tmp_path):
        """Flipping any single byte never yields a wrong record."""
        path = str(tmp_path / "campaign.jsonl")
        _full_header, full_records = _build_journal(path, n_records=4)
        with open(path, "rb") as handle:
            raw = handle.read()
        true_keys = {(r["probe"], r["name"]) for r in full_records}
        for index in range(len(raw)):
            mutated_path = str(tmp_path / "flip.jsonl")
            mutated = bytearray(raw)
            mutated[index] ^= 0x01
            with open(mutated_path, "wb") as handle:
                handle.write(bytes(mutated))
            try:
                _header, records = CheckpointJournal(mutated_path).load()
            except JournalCorrupted:
                continue  # detected: interior line refused
            for record in records:
                assert (record["probe"], record["name"]) in true_keys


# ----------------------------------------------------------------------
# Run ledger
# ----------------------------------------------------------------------


class TestRunLedger:
    def test_fresh_open_records_fingerprints(self, tmp_path):
        run_dir = str(tmp_path / "run")
        ledger = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        ledger.open({"config": "abc123"})
        ledger.record_graph("g-777")
        ledger.finalize()
        document = RunLedger.read(run_dir)
        assert document["status"] == STATUS_COMPLETED
        assert document["fingerprints"] == {"config": "abc123", "graph": "g-777"}
        assert document["runs"] == 1
        assert document["generation"] == 1
        assert not os.path.exists(ledger.lock_path)

    def test_resume_bumps_generation_and_runs(self, tmp_path):
        run_dir = str(tmp_path / "run")
        first = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        first.open({"config": "abc123"})
        first.close()  # crash: no finalize — ledger stays "running"
        assert RunLedger.read(run_dir)["status"] == STATUS_RUNNING
        second = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        second.open({"config": "abc123"}, resume=True)
        assert second.generation == 2
        assert second.runs == 2
        second.finalize()

    def test_open_without_resume_refused(self, tmp_path):
        run_dir = str(tmp_path / "run")
        ledger = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        ledger.open({"config": "abc123"})
        ledger.finalize()
        with pytest.raises(ValueError, match="--resume"):
            RunLedger(run_dir, durability=DURABILITY_FLUSH).open({"config": "abc123"})
        # The failed open must not leave the directory locked.
        assert not os.path.exists(ledger.lock_path)

    def test_resume_fingerprint_mismatch_refused(self, tmp_path):
        run_dir = str(tmp_path / "run")
        ledger = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        ledger.open({"config": "abc123"})
        ledger.finalize()
        with pytest.raises(ValueError, match="different study configuration"):
            RunLedger(run_dir, durability=DURABILITY_FLUSH).open(
                {"config": "OTHER"}, resume=True
            )

    def test_resume_keeps_recorded_graph_fingerprint(self, tmp_path):
        run_dir = str(tmp_path / "run")
        first = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        first.open({"config": "abc123"})
        first.record_graph("g-777")
        first.close()
        second = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        second.open({"config": "abc123"}, resume=True)
        with pytest.raises(ValueError, match="refusing to mix runs"):
            second.record_graph("g-DIFFERENT")
        second.record_graph("g-777")  # matching fingerprint is fine
        second.finalize()

    def test_graph_mismatch_refused_same_run(self, tmp_path):
        run_dir = str(tmp_path / "run")
        ledger = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        ledger.open({})
        ledger.record_graph("g-1")
        with pytest.raises(ValueError):
            ledger.record_graph("g-2")
        ledger.close()

    def test_stale_lock_injection_broken_on_open(self, tmp_path):
        run_dir = str(tmp_path / "run")
        plan = _plan(FaultSite.STORAGE_STALE_LOCK)
        ledger = RunLedger(run_dir, durability=DURABILITY_FLUSH, fault_plan=plan)
        ledger.open({"config": "abc123"})  # must break the planted lock
        assert ledger._lock is not None and ledger._lock.stale_broken >= 1
        ledger.finalize()

    def test_live_foreign_lock_refused(self, tmp_path):
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        ledger = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        with open(ledger.lock_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"pid": 1}))
        with pytest.raises(LockHeldError):
            ledger.open({})

    def test_storage_salted_by_generation(self, tmp_path):
        run_dir = str(tmp_path / "run")
        ledger = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        ledger.open({})
        assert ledger.storage().salt == 1
        ledger.close()
        resumed = RunLedger(run_dir, durability=DURABILITY_FLUSH)
        resumed.open({}, resume=True)
        assert resumed.storage().salt == 2
        resumed.finalize()
