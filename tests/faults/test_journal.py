"""Tests for the append-only checkpoint journal."""

import json

import pytest

from repro.faults import CheckpointJournal, JournalCorrupted, pair_key

pytestmark = pytest.mark.faults


def _record(probe, name, **extra):
    record = {"probe": probe, "name": name, "status": "completed", "charged": 70}
    record.update(extra)
    return record


class TestRoundtrip:
    def test_append_and_load(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.write_header({"campaign_seed": 1, "plan_fingerprint": "abc"})
            journal.append(_record(1, "cdn-a.example"))
            journal.append(_record(1, "cdn-b.example"))
        header, records = CheckpointJournal(path).load()
        assert header["campaign_seed"] == 1
        assert header["plan_fingerprint"] == "abc"
        assert [pair_key(r) for r in records] == [
            (1, "cdn-a.example"),
            (1, "cdn-b.example"),
        ]

    def test_missing_file_is_empty(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "nope.jsonl"))
        assert journal.load() == (None, [])
        assert not journal.exists()

    def test_append_after_load_preserves_existing(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append(_record(1, "a"))
        with CheckpointJournal(path) as journal:
            journal.append(_record(2, "b"))
        _header, records = CheckpointJournal(path).load()
        assert len(records) == 2


class TestTornLines:
    def test_torn_trailing_line_dropped(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append(_record(1, "a"))
            journal.append(_record(1, "b"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"probe": 1, "name": "c", "stat')  # torn write
        journal = CheckpointJournal(path)
        _header, records = journal.load()
        assert [pair_key(r) for r in records] == [(1, "a"), (1, "b")]
        assert journal.torn_lines == 1

    def test_multiple_torn_tail_lines_dropped(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append(_record(1, "a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"half"')
        journal = CheckpointJournal(path)
        _header, records = journal.load()
        assert len(records) == 1
        assert journal.torn_lines == 2

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(_record(1, "a")) + "\n")
            handle.write("corrupted line\n")
            handle.write(json.dumps(_record(1, "b")) + "\n")
        with pytest.raises(JournalCorrupted):
            CheckpointJournal(path).load()

    def test_torn_tail_truncated_before_append(self, tmp_path):
        """Regression: reopening a torn journal for append used to leave
        the partial line in place, so the next append glued onto it and
        produced an unparseable *interior* line on the following load."""
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append(_record(1, "a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"probe": 1, "name": "b", "stat')  # torn write
        with CheckpointJournal(path) as journal:
            journal.append(_record(1, "c"))
        journal = CheckpointJournal(path)
        _header, records = journal.load()  # must not raise JournalCorrupted
        assert [pair_key(r) for r in records] == [(1, "a"), (1, "c")]
        assert journal.torn_lines == 0  # the tear was repaired, not kept

    def test_torn_tail_physically_removed(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append(_record(1, "a"))
        clean_size = len(open(path, "rb").read())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage with no newline")
        journal = CheckpointJournal(path)
        journal.open_append()  # repair happens on reopen
        journal.close()
        assert len(open(path, "rb").read()) == clean_size

    def test_unterminated_final_line_treated_as_torn(self, tmp_path):
        # Even a line that *parses* is torn if it lacks its newline: the
        # write may have stopped mid-payload at a point that happens to
        # be valid JSON.  Only a terminated line is trusted.
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append(_record(1, "a"))
        with open(path, "rb+") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            handle.truncate(size - 1)  # strip the trailing newline
        journal = CheckpointJournal(path)
        _header, records = journal.load()
        assert records == []
        assert journal.torn_lines == 1

    def test_pair_record_without_key_raises(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "pair", "status": "completed"}) + "\n")
            handle.write(json.dumps(_record(1, "b", kind="pair")) + "\n")
        with pytest.raises(JournalCorrupted):
            CheckpointJournal(path).load()
