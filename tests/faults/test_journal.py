"""Tests for the append-only checkpoint journal."""

import json

import pytest

from repro.faults import CheckpointJournal, JournalCorrupted, pair_key

pytestmark = pytest.mark.faults


def _record(probe, name, **extra):
    record = {"probe": probe, "name": name, "status": "completed", "charged": 70}
    record.update(extra)
    return record


class TestRoundtrip:
    def test_append_and_load(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.write_header({"campaign_seed": 1, "plan_fingerprint": "abc"})
            journal.append(_record(1, "cdn-a.example"))
            journal.append(_record(1, "cdn-b.example"))
        header, records = CheckpointJournal(path).load()
        assert header["campaign_seed"] == 1
        assert header["plan_fingerprint"] == "abc"
        assert [pair_key(r) for r in records] == [
            (1, "cdn-a.example"),
            (1, "cdn-b.example"),
        ]

    def test_missing_file_is_empty(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "nope.jsonl"))
        assert journal.load() == (None, [])
        assert not journal.exists()

    def test_append_after_load_preserves_existing(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append(_record(1, "a"))
        with CheckpointJournal(path) as journal:
            journal.append(_record(2, "b"))
        _header, records = CheckpointJournal(path).load()
        assert len(records) == 2


class TestTornLines:
    def test_torn_trailing_line_dropped(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append(_record(1, "a"))
            journal.append(_record(1, "b"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"probe": 1, "name": "c", "stat')  # torn write
        journal = CheckpointJournal(path)
        _header, records = journal.load()
        assert [pair_key(r) for r in records] == [(1, "a"), (1, "b")]
        assert journal.torn_lines == 1

    def test_multiple_torn_tail_lines_dropped(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with CheckpointJournal(path) as journal:
            journal.append(_record(1, "a"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"half"')
        journal = CheckpointJournal(path)
        _header, records = journal.load()
        assert len(records) == 1
        assert journal.torn_lines == 2

    def test_interior_corruption_raises(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(_record(1, "a")) + "\n")
            handle.write("corrupted line\n")
            handle.write(json.dumps(_record(1, "b")) + "\n")
        with pytest.raises(JournalCorrupted):
            CheckpointJournal(path).load()

    def test_pair_record_without_key_raises(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "pair", "status": "completed"}) + "\n")
            handle.write(json.dumps(_record(1, "b", kind="pair")) + "\n")
        with pytest.raises(JournalCorrupted):
            CheckpointJournal(path).load()
