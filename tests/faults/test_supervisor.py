"""Unit tests for the circuit breaker and watchdog primitives."""

import pytest

from repro.faults import BreakerOpen, CircuitBreaker, Watchdog, WatchdogExpired
from repro.faults.supervisor import CLOSED, HALF_OPEN, OPEN


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=2)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.stats.trips == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_rejects_for_cooldown_then_half_opens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.state == HALF_OPEN
        assert breaker.stats.rejected == 2
        # The half-open probe is admitted.
        assert breaker.allow()
        assert breaker.stats.half_open_probes == 1

    def test_half_open_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        breaker.allow()  # burn the cooldown -> half-open
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        breaker.allow()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.stats.trips == 2

    def test_check_raises_breaker_open(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=5)
        breaker.record_failure()
        with pytest.raises(BreakerOpen):
            breaker.check("announcement")

    def test_serialization_round_trip(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3)
        breaker.record_failure()
        breaker.record_failure()  # tripped
        breaker.allow()  # one cooldown tick
        snapshot = breaker.as_dict()

        restored = CircuitBreaker(failure_threshold=2, cooldown=3)
        restored.restore(snapshot)
        assert restored.state == breaker.state
        assert restored.cooldown_left == breaker.cooldown_left
        assert restored.stats.as_dict() == breaker.stats.as_dict()
        # The restored breaker continues exactly where the original does.
        assert restored.allow() == breaker.allow()
        assert restored.state == breaker.state

    def test_restore_rejects_garbage_state(self):
        breaker = CircuitBreaker()
        with pytest.raises(ValueError):
            breaker.restore({"state": "molten"})

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)


class TestWatchdog:
    def test_charges_within_budget(self):
        watchdog = Watchdog(budget=3)
        for _ in range(3):
            watchdog.charge()
        assert watchdog.remaining == 0

    def test_expires_past_budget(self):
        watchdog = Watchdog(budget=2)
        watchdog.charge()
        watchdog.charge()
        with pytest.raises(WatchdogExpired):
            watchdog.charge()

    def test_bulk_charge(self):
        watchdog = Watchdog(budget=5)
        watchdog.charge(4)
        assert watchdog.remaining == 1
        with pytest.raises(WatchdogExpired):
            watchdog.charge(2)

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            Watchdog(budget=0)
