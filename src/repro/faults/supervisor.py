"""Supervision primitives for active control-plane experiments.

The passive campaign can shrug off a lost measurement; an active
experiment cannot shrug off a control plane that is actively failing —
every announcement costs real convergence time and pollutes routing
state for everyone downstream.  Two primitives bound the damage:

* :class:`CircuitBreaker` — classic closed/open/half-open breaker over
  announcement operations.  Consecutive failures open it; while open,
  operations are rejected (the caller quarantines the current target
  instead of hammering a broken substrate); after a cooldown one probe
  operation is allowed through, and its outcome decides whether the
  breaker closes again.
* :class:`Watchdog` — a per-target announcement budget, so one
  pathological target cannot burn the whole campaign's testbed calendar.

Both are deterministic: the breaker advances on operation counts (not
wall clock) and serializes its full state to/from JSON, so a resumed
run restores the exact breaker the killed run left behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.faults.errors import BreakerOpen, WatchdogExpired
from repro.obs.context import publish
from repro.obs.events import CATEGORY_BREAKER, CATEGORY_WATCHDOG

#: Breaker state names.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass
class BreakerStats:
    """Lifetime counters, independent of current breaker state."""

    successes: int = 0
    failures: int = 0
    trips: int = 0
    rejected: int = 0
    half_open_probes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "successes": self.successes,
            "failures": self.failures,
            "trips": self.trips,
            "rejected": self.rejected,
            "half_open_probes": self.half_open_probes,
        }


class CircuitBreaker:
    """Count-driven circuit breaker with full state serialization.

    ``failure_threshold`` consecutive failures trip the breaker open.
    While open, :meth:`allow` returns ``False`` for the next
    ``cooldown`` operations (each rejected operation counts down the
    cooldown — the analogue of elapsed time in a system with no
    clock), then the breaker goes half-open: one operation is let
    through as a probe.  Its success closes the breaker; its failure
    re-opens it for another full cooldown.
    """

    def __init__(self, failure_threshold: int = 3, cooldown: int = 4) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        self.cooldown_left = 0
        self.stats = BreakerStats()

    # ------------------------------------------------------------------
    # Operation protocol
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the next operation may proceed.

        Must be paired with exactly one :meth:`record_success` /
        :meth:`record_failure` when it returns ``True``.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            self.stats.rejected += 1
            self.cooldown_left -= 1
            if self.cooldown_left <= 0:
                self.state = HALF_OPEN
                publish(CATEGORY_BREAKER, "half_open")
            return False
        # Half-open: admit one probe operation.
        self.stats.half_open_probes += 1
        return True

    def check(self, operation: str = "operation") -> None:
        """Raise :class:`BreakerOpen` instead of returning ``False``."""
        if not self.allow():
            raise BreakerOpen(
                f"circuit breaker open; rejecting {operation} "
                f"(cooldown {max(self.cooldown_left, 0)} operation(s) left)"
            )

    def record_success(self) -> None:
        self.stats.successes += 1
        self.consecutive_failures = 0
        if self.state != CLOSED:
            publish(CATEGORY_BREAKER, "closed")
        self.state = CLOSED

    def record_failure(self) -> None:
        self.stats.failures += 1
        if self.state == HALF_OPEN:
            self._trip()
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.stats.trips += 1
        self.state = OPEN
        self.cooldown_left = self.cooldown
        self.consecutive_failures = 0
        publish(CATEGORY_BREAKER, "open", trips=self.stats.trips)

    # ------------------------------------------------------------------
    # Serialization (checkpoint/resume)
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown": self.cooldown,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "cooldown_left": self.cooldown_left,
            "stats": self.stats.as_dict(),
        }

    def restore(self, data: Dict) -> None:
        """Overwrite this breaker's state with a journaled snapshot."""
        state = data.get("state", CLOSED)
        if state not in (CLOSED, OPEN, HALF_OPEN):
            raise ValueError(f"unknown breaker state {state!r}")
        self.state = state
        self.consecutive_failures = int(data.get("consecutive_failures", 0))
        self.cooldown_left = int(data.get("cooldown_left", 0))
        stats = data.get("stats", {})
        self.stats = BreakerStats(
            successes=int(stats.get("successes", 0)),
            failures=int(stats.get("failures", 0)),
            trips=int(stats.get("trips", 0)),
            rejected=int(stats.get("rejected", 0)),
            half_open_probes=int(stats.get("half_open_probes", 0)),
        )


@dataclass
class Watchdog:
    """A per-target budget of announcement operations."""

    budget: int
    spent: int = 0

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError(f"watchdog budget must be >= 1, got {self.budget}")

    @property
    def remaining(self) -> int:
        return max(self.budget - self.spent, 0)

    def charge(self, amount: int = 1) -> None:
        """Spend budget; raises :class:`WatchdogExpired` when exhausted."""
        self.spent += amount
        if self.spent > self.budget:
            publish(
                CATEGORY_WATCHDOG, "expired", budget=self.budget, spent=self.spent
            )
            raise WatchdogExpired(
                f"target exceeded its {self.budget}-announcement watchdog budget"
            )
