"""Robustness accounting for fault-injected campaigns.

The report answers "where did every measurement go?": each attempted
(probe, dns-name) pair ends in exactly one disposition, so

``completed + degraded + quarantined + lost == total_pairs``

where ``total_pairs`` is what a fault-free campaign with the same seed
would have measured.  Per-destination-AS expected/observed counts show
which ASes lost coverage, and the embedded :class:`RetryStats` shows
how hard the campaign had to fight for what it kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.faults.retry import RetryStats

#: Disposition names, in reporting order.
DISPOSITIONS = ("completed", "degraded", "quarantined", "lost")


@dataclass
class RobustnessReport:
    """Full accounting of one campaign under faults."""

    #: (probe, name) pairs a fault-free run would have measured.
    total_pairs: int = 0
    #: Pairs that produced a clean, usable measurement.
    completed: int = 0
    #: Pairs that produced a measurement of degraded value (reason -> n),
    #: e.g. truncated or looping traceroutes.
    degraded: Dict[str, int] = field(default_factory=dict)
    #: Pairs whose result document was malformed (reason -> n).
    quarantined: Dict[str, int] = field(default_factory=dict)
    #: Pairs that produced nothing at all (reason -> n).
    lost: Dict[str, int] = field(default_factory=dict)
    #: Probes skipped whole because the credit budget ran out.
    budget_skipped_probes: List[int] = field(default_factory=list)
    #: Pairs restored from the checkpoint journal instead of re-run.
    resumed_pairs: int = 0
    retry: RetryStats = field(default_factory=RetryStats)
    #: Fault-free measurements per destination AS.
    per_as_expected: Dict[int, int] = field(default_factory=dict)
    #: Clean measurements per destination AS under faults.
    per_as_observed: Dict[int, int] = field(default_factory=dict)
    #: PEERING mux session resets survived (active experiments).
    mux_session_resets: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def expect(self, destination_asn: int) -> None:
        self.total_pairs += 1
        self.per_as_expected[destination_asn] = (
            self.per_as_expected.get(destination_asn, 0) + 1
        )

    def record_completed(self, destination_asn: int) -> None:
        self.completed += 1
        self.per_as_observed[destination_asn] = (
            self.per_as_observed.get(destination_asn, 0) + 1
        )

    def record_degraded(self, reason: str) -> None:
        self.degraded[reason] = self.degraded.get(reason, 0) + 1

    def record_quarantined(self, reason: str) -> None:
        self.quarantined[reason] = self.quarantined.get(reason, 0) + 1

    def record_lost(self, reason: str) -> None:
        self.lost[reason] = self.lost.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def degraded_total(self) -> int:
        return sum(self.degraded.values())

    def quarantined_total(self) -> int:
        return sum(self.quarantined.values())

    def lost_total(self) -> int:
        return sum(self.lost.values())

    def accounted(self) -> bool:
        """Every expected pair ended in exactly one disposition."""
        return (
            self.completed
            + self.degraded_total()
            + self.quarantined_total()
            + self.lost_total()
            == self.total_pairs
        )

    def coverage(self) -> float:
        """Fraction of the fault-free campaign that survived cleanly."""
        if self.total_pairs == 0:
            return 1.0
        return self.completed / self.total_pairs

    def as_coverage(self, asn: int) -> float:
        expected = self.per_as_expected.get(asn, 0)
        if expected == 0:
            return 1.0
        return self.per_as_observed.get(asn, 0) / expected

    def worst_covered_ases(self, count: int = 5) -> List[int]:
        """Destination ASes with the lowest coverage, worst first."""
        ranked = sorted(
            self.per_as_expected, key=lambda asn: (self.as_coverage(asn), asn)
        )
        return ranked[:count]

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "total_pairs": self.total_pairs,
            "completed": self.completed,
            "degraded": dict(sorted(self.degraded.items())),
            "quarantined": dict(sorted(self.quarantined.items())),
            "lost": dict(sorted(self.lost.items())),
            "budget_skipped_probes": list(self.budget_skipped_probes),
            "resumed_pairs": self.resumed_pairs,
            "coverage": round(self.coverage(), 4),
            "accounted": self.accounted(),
            "retry": self.retry.as_dict(),
            "mux_session_resets": self.mux_session_resets,
            "ases_expected": len(self.per_as_expected),
            "ases_fully_covered": sum(
                1 for asn in self.per_as_expected if self.as_coverage(asn) >= 1.0
            ),
        }

    def render(self) -> str:
        lines = [
            "Robustness report",
            f"  expected pairs:   {self.total_pairs}"
            + (f" ({self.resumed_pairs} restored from checkpoint)" if self.resumed_pairs else ""),
            f"  completed:        {self.completed} ({100.0 * self.coverage():.1f}% coverage)",
        ]
        for label, counts in (
            ("degraded", self.degraded),
            ("quarantined", self.quarantined),
            ("lost", self.lost),
        ):
            total = sum(counts.values())
            detail = ", ".join(
                f"{reason}={count}" for reason, count in sorted(counts.items())
            )
            lines.append(f"  {label + ':':<18}{total}" + (f" ({detail})" if detail else ""))
        if self.budget_skipped_probes:
            lines.append(
                f"  budget-skipped probes: {len(self.budget_skipped_probes)}"
            )
        retry = self.retry
        lines.append(
            f"  retries:          {retry.retries} "
            f"(recovered {retry.succeeded_after_retry}, exhausted {retry.exhausted}, "
            f"~{retry.simulated_wait_s:.0f}s simulated wait)"
        )
        if self.mux_session_resets:
            lines.append(f"  mux session resets survived: {self.mux_session_resets}")
        covered = sum(
            1 for asn in self.per_as_expected if self.as_coverage(asn) >= 1.0
        )
        lines.append(
            f"  destination ASes: {covered}/{len(self.per_as_expected)} fully covered"
        )
        lines.append(
            "  accounting:       "
            + ("balanced" if self.accounted() else "UNBALANCED (bug)")
        )
        return "\n".join(lines)
