"""Robustness accounting for fault-injected campaigns.

The report answers "where did every measurement go?": each attempted
(probe, dns-name) pair ends in exactly one disposition, so

``completed + degraded + quarantined + lost == total_pairs``

where ``total_pairs`` is what a fault-free campaign with the same seed
would have measured.  Per-destination-AS expected/observed counts show
which ASes lost coverage, and the embedded :class:`RetryStats` shows
how hard the campaign had to fight for what it kept.

:class:`ActiveRobustnessReport` is the control-plane mirror of the
same idea for the Section 3.2/4.4 active experiments: every discovery
target ends in exactly one of completed / censored / quarantined, and
every magnet round likewise, so partial data is visible instead of
silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.faults.retry import RetryStats
from repro.faults.supervisor import BreakerStats

#: Disposition names, in reporting order.
DISPOSITIONS = ("completed", "degraded", "quarantined", "lost")

#: Active-experiment disposition names, in reporting order.
ACTIVE_DISPOSITIONS = ("completed", "censored", "quarantined")


@dataclass
class RobustnessReport:
    """Full accounting of one campaign under faults."""

    #: (probe, name) pairs a fault-free run would have measured.
    total_pairs: int = 0
    #: Pairs that produced a clean, usable measurement.
    completed: int = 0
    #: Pairs that produced a measurement of degraded value (reason -> n),
    #: e.g. truncated or looping traceroutes.
    degraded: Dict[str, int] = field(default_factory=dict)
    #: Pairs whose result document was malformed (reason -> n).
    quarantined: Dict[str, int] = field(default_factory=dict)
    #: Pairs that produced nothing at all (reason -> n).
    lost: Dict[str, int] = field(default_factory=dict)
    #: Probes skipped whole because the credit budget ran out.
    budget_skipped_probes: List[int] = field(default_factory=list)
    #: Pairs restored from the checkpoint journal instead of re-run.
    resumed_pairs: int = 0
    retry: RetryStats = field(default_factory=RetryStats)
    #: Fault-free measurements per destination AS.
    per_as_expected: Dict[int, int] = field(default_factory=dict)
    #: Clean measurements per destination AS under faults.
    per_as_observed: Dict[int, int] = field(default_factory=dict)
    #: PEERING mux session resets survived (active experiments).
    mux_session_resets: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def expect(self, destination_asn: int) -> None:
        self.total_pairs += 1
        self.per_as_expected[destination_asn] = (
            self.per_as_expected.get(destination_asn, 0) + 1
        )

    def record_completed(self, destination_asn: int) -> None:
        self.completed += 1
        self.per_as_observed[destination_asn] = (
            self.per_as_observed.get(destination_asn, 0) + 1
        )

    def record_degraded(self, reason: str) -> None:
        self.degraded[reason] = self.degraded.get(reason, 0) + 1

    def record_quarantined(self, reason: str) -> None:
        self.quarantined[reason] = self.quarantined.get(reason, 0) + 1

    def record_lost(self, reason: str) -> None:
        self.lost[reason] = self.lost.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def degraded_total(self) -> int:
        return sum(self.degraded.values())

    def quarantined_total(self) -> int:
        return sum(self.quarantined.values())

    def lost_total(self) -> int:
        return sum(self.lost.values())

    def accounted(self) -> bool:
        """Every expected pair ended in exactly one disposition."""
        return (
            self.completed
            + self.degraded_total()
            + self.quarantined_total()
            + self.lost_total()
            == self.total_pairs
        )

    def coverage(self) -> float:
        """Fraction of the fault-free campaign that survived cleanly."""
        if self.total_pairs == 0:
            return 1.0
        return self.completed / self.total_pairs

    def as_coverage(self, asn: int) -> float:
        expected = self.per_as_expected.get(asn, 0)
        if expected == 0:
            return 1.0
        return self.per_as_observed.get(asn, 0) / expected

    def worst_covered_ases(self, count: int = 5) -> List[int]:
        """Destination ASes with the lowest coverage, worst first."""
        ranked = sorted(
            self.per_as_expected, key=lambda asn: (self.as_coverage(asn), asn)
        )
        return ranked[:count]

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "total_pairs": self.total_pairs,
            "completed": self.completed,
            "degraded": dict(sorted(self.degraded.items())),
            "quarantined": dict(sorted(self.quarantined.items())),
            "lost": dict(sorted(self.lost.items())),
            "budget_skipped_probes": list(self.budget_skipped_probes),
            "resumed_pairs": self.resumed_pairs,
            "coverage": round(self.coverage(), 4),
            "accounted": self.accounted(),
            "retry": self.retry.as_dict(),
            "mux_session_resets": self.mux_session_resets,
            "ases_expected": len(self.per_as_expected),
            "ases_fully_covered": sum(
                1 for asn in self.per_as_expected if self.as_coverage(asn) >= 1.0
            ),
        }

    def render(self) -> str:
        lines = [
            "Robustness report",
            f"  expected pairs:   {self.total_pairs}"
            + (f" ({self.resumed_pairs} restored from checkpoint)" if self.resumed_pairs else ""),
            f"  completed:        {self.completed} ({100.0 * self.coverage():.1f}% coverage)",
        ]
        for label, counts in (
            ("degraded", self.degraded),
            ("quarantined", self.quarantined),
            ("lost", self.lost),
        ):
            total = sum(counts.values())
            detail = ", ".join(
                f"{reason}={count}" for reason, count in sorted(counts.items())
            )
            lines.append(f"  {label + ':':<18}{total}" + (f" ({detail})" if detail else ""))
        if self.budget_skipped_probes:
            lines.append(
                f"  budget-skipped probes: {len(self.budget_skipped_probes)}"
            )
        retry = self.retry
        lines.append(
            f"  retries:          {retry.retries} "
            f"(recovered {retry.succeeded_after_retry}, exhausted {retry.exhausted}, "
            f"~{retry.simulated_wait_s:.0f}s simulated wait)"
        )
        if self.mux_session_resets:
            lines.append(f"  mux session resets survived: {self.mux_session_resets}")
        covered = sum(
            1 for asn in self.per_as_expected if self.as_coverage(asn) >= 1.0
        )
        lines.append(
            f"  destination ASes: {covered}/{len(self.per_as_expected)} fully covered"
        )
        lines.append(
            "  accounting:       "
            + ("balanced" if self.accounted() else "UNBALANCED (bug)")
        )
        return "\n".join(lines)


@dataclass
class ActiveRobustnessReport:
    """Per-target and per-round accounting for the active experiments.

    *Discovery* (iterative poisoning): every target ends in exactly one
    disposition — **completed** (full preference order discovered),
    **censored** (a fault ended discovery early; the partial preference
    order is kept and flagged), or **quarantined** (the control plane
    failed in a way that taints even the partial data — a convergence
    blowout or an open circuit breaker).

    *Magnet rounds*: same three dispositions per mux round, where
    "censored" means the round produced observations with a missing
    channel (e.g. a collector feed gap).
    """

    # --- discovery targets -------------------------------------------
    total_targets: int = 0
    completed: int = 0
    censored: Dict[str, int] = field(default_factory=dict)
    quarantined: Dict[str, int] = field(default_factory=dict)
    #: Targets restored from the checkpoint journal instead of re-run.
    resumed_targets: int = 0
    # --- magnet rounds -----------------------------------------------
    magnet_rounds: int = 0
    magnet_completed: int = 0
    magnet_censored: Dict[str, int] = field(default_factory=dict)
    magnet_quarantined: Dict[str, int] = field(default_factory=dict)
    resumed_magnet_rounds: int = 0
    # --- effort / fault counters -------------------------------------
    #: Supervised announcements that reached the testbed.
    announcements: int = 0
    withdrawals: int = 0
    feed_gaps: int = 0
    withdrawal_losses: int = 0
    damping_events: int = 0
    convergence_failures: int = 0
    #: Simulator soft-limit warnings surfaced to the supervisor.
    soft_limit_warnings: int = 0
    retry: RetryStats = field(default_factory=RetryStats)
    breaker: BreakerStats = field(default_factory=BreakerStats)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def expect_target(self) -> None:
        self.total_targets += 1

    def record_completed(self) -> None:
        self.completed += 1

    def record_censored(self, reason: str) -> None:
        self.censored[reason] = self.censored.get(reason, 0) + 1

    def record_quarantined(self, reason: str) -> None:
        self.quarantined[reason] = self.quarantined.get(reason, 0) + 1

    def expect_magnet_round(self) -> None:
        self.magnet_rounds += 1

    def record_magnet_completed(self) -> None:
        self.magnet_completed += 1

    def record_magnet_censored(self, reason: str) -> None:
        self.magnet_censored[reason] = self.magnet_censored.get(reason, 0) + 1

    def record_magnet_quarantined(self, reason: str) -> None:
        self.magnet_quarantined[reason] = (
            self.magnet_quarantined.get(reason, 0) + 1
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def censored_total(self) -> int:
        return sum(self.censored.values())

    def quarantined_total(self) -> int:
        return sum(self.quarantined.values())

    def magnet_censored_total(self) -> int:
        return sum(self.magnet_censored.values())

    def magnet_quarantined_total(self) -> int:
        return sum(self.magnet_quarantined.values())

    def accounted(self) -> bool:
        """Every target and round ended in exactly one disposition."""
        targets_ok = (
            self.completed + self.censored_total() + self.quarantined_total()
            == self.total_targets
        )
        rounds_ok = (
            self.magnet_completed
            + self.magnet_censored_total()
            + self.magnet_quarantined_total()
            == self.magnet_rounds
        )
        return targets_ok and rounds_ok

    def coverage(self) -> float:
        """Fraction of targets with a full (uncensored) preference order."""
        if self.total_targets == 0:
            return 1.0
        return self.completed / self.total_targets

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "total_targets": self.total_targets,
            "completed": self.completed,
            "censored": dict(sorted(self.censored.items())),
            "quarantined": dict(sorted(self.quarantined.items())),
            "resumed_targets": self.resumed_targets,
            "magnet_rounds": self.magnet_rounds,
            "magnet_completed": self.magnet_completed,
            "magnet_censored": dict(sorted(self.magnet_censored.items())),
            "magnet_quarantined": dict(sorted(self.magnet_quarantined.items())),
            "resumed_magnet_rounds": self.resumed_magnet_rounds,
            "announcements": self.announcements,
            "withdrawals": self.withdrawals,
            "feed_gaps": self.feed_gaps,
            "withdrawal_losses": self.withdrawal_losses,
            "damping_events": self.damping_events,
            "convergence_failures": self.convergence_failures,
            "soft_limit_warnings": self.soft_limit_warnings,
            "coverage": round(self.coverage(), 4),
            "accounted": self.accounted(),
            "retry": self.retry.as_dict(),
            "breaker": self.breaker.as_dict(),
        }

    def render(self) -> str:
        lines = [
            "Active robustness report",
            f"  discovery targets: {self.total_targets}"
            + (
                f" ({self.resumed_targets} restored from checkpoint)"
                if self.resumed_targets
                else ""
            ),
            f"  completed:         {self.completed} "
            f"({100.0 * self.coverage():.1f}% full preference orders)",
        ]
        for label, counts in (
            ("censored", self.censored),
            ("quarantined", self.quarantined),
        ):
            total = sum(counts.values())
            detail = ", ".join(
                f"{reason}={count}" for reason, count in sorted(counts.items())
            )
            lines.append(
                f"  {label + ':':<19}{total}" + (f" ({detail})" if detail else "")
            )
        magnet_bits = [f"{self.magnet_completed}/{self.magnet_rounds} completed"]
        if self.magnet_censored:
            magnet_bits.append(f"{self.magnet_censored_total()} censored")
        if self.magnet_quarantined:
            magnet_bits.append(f"{self.magnet_quarantined_total()} quarantined")
        if self.resumed_magnet_rounds:
            magnet_bits.append(f"{self.resumed_magnet_rounds} resumed")
        lines.append(f"  magnet rounds:     {', '.join(magnet_bits)}")
        lines.append(
            f"  announcements:     {self.announcements} "
            f"(+{self.withdrawals} withdrawals)"
        )
        retry = self.retry
        lines.append(
            f"  retries:           {retry.retries} "
            f"(recovered {retry.succeeded_after_retry}, exhausted {retry.exhausted}, "
            f"~{retry.simulated_wait_s:.0f}s simulated wait)"
        )
        breaker = self.breaker
        lines.append(
            f"  breaker:           {breaker.trips} trip(s), "
            f"{breaker.rejected} rejected, "
            f"{breaker.half_open_probes} half-open probe(s)"
        )
        fault_bits = []
        for label, count in (
            ("damping", self.damping_events),
            ("feed gaps", self.feed_gaps),
            ("withdrawal losses", self.withdrawal_losses),
            ("convergence failures", self.convergence_failures),
            ("soft-limit warnings", self.soft_limit_warnings),
        ):
            if count:
                fault_bits.append(f"{label}={count}")
        if fault_bits:
            lines.append(f"  control-plane faults: {', '.join(fault_bits)}")
        lines.append(
            "  accounting:        "
            + ("balanced" if self.accounted() else "UNBALANCED (bug)")
        )
        return "\n".join(lines)
