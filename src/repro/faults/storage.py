"""Durable-storage primitives: crash-consistent writes for run state.

Measurement campaigns run for days against rate-limited external
infrastructure, so the on-disk run state (checkpoint journals, golden
snapshots, run manifests) must survive the failure modes real
filesystems produce: torn appends (partial line, no newline), ENOSPC
mid-write, power loss between a write and its rename, and lockfiles
abandoned by dead processes.  This module provides the primitives every
persistent artifact in the repo is written through:

* :func:`durable_append` — write + flush + fsync under a configurable
  :data:`durability <DURABILITY_FSYNC>` policy,
* :func:`frame_line` / :func:`decode_line` — per-record CRC32 framing
  for journal lines, so a flipped byte is detected instead of silently
  parsed into a wrong record,
* :func:`atomic_replace` — temp file + fsync + ``os.replace`` +
  directory fsync, so readers only ever see the old or the new content,
* :class:`RunLock` — an advisory pidfile lock guarding a run directory
  against concurrent writers, with stale-lock (dead owner) recovery,
* :class:`StoragePolicy` — the bundle of durability knobs plus the
  seeded :class:`~repro.faults.plan.FaultPlan` hooks that let the chaos
  harness inject all four failure modes deterministically.

Fault keys are salted with the run-ledger *generation* (bumped on every
open of a run directory), so an injected crash point fires, the study
dies, and the very same append succeeds on resume — the drill makes
progress instead of crash-looping.
"""

from __future__ import annotations

import errno
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.faults.errors import CampaignInterrupted
from repro.faults.plan import FaultPlan, FaultSite

#: fsync before every rename and group-commit journal appends (fsync
#: every :attr:`StoragePolicy.fsync_interval` records and on close) —
#: the default.  A crash loses at most the trailing unsynced batch,
#: which the torn-tail repair sheds and resume re-executes.
DURABILITY_FSYNC = "fsync"
#: flush to the OS but skip fsync (survives process crash, not power
#: loss) — the pre-ledger behaviour, kept for benchmark baselines.
DURABILITY_FLUSH = "flush"
#: no flush at all; only for throwaway test runs.
DURABILITY_NONE = "none"

DURABILITY_POLICIES = (DURABILITY_FSYNC, DURABILITY_FLUSH, DURABILITY_NONE)

#: Environment override for the process-wide default policy.
DURABILITY_ENV = "REPRO_DURABILITY"

_CRC_WIDTH = 8
_HEX_DIGITS = set("0123456789abcdef")


def default_durability() -> str:
    """The process default: :data:`DURABILITY_ENV` or ``fsync``."""
    policy = os.environ.get(DURABILITY_ENV, DURABILITY_FSYNC)
    if policy not in DURABILITY_POLICIES:
        raise ValueError(
            f"{DURABILITY_ENV}={policy!r} is not one of {DURABILITY_POLICIES}"
        )
    return policy


class LockHeldError(OSError):
    """The run directory is locked by another live process."""


@dataclass
class StoragePolicy:
    """Durability policy plus the fault-injection hooks for one run.

    ``salt`` is folded into every storage fault key; the run ledger
    sets it to the run-directory generation (bumped per open) so a
    deterministic injected crash clears on the next resume instead of
    firing at the same byte forever.
    """

    durability: str = field(default_factory=default_durability)
    fault_plan: Optional[FaultPlan] = None
    salt: int = 0
    #: Group-commit width under ``fsync``: journal appends are flushed
    #: every record but fsynced once per this many records (and on
    #: close), keeping the durability window bounded without paying a
    #: disk sync per pair.
    fsync_interval: int = 128

    def __post_init__(self) -> None:
        if self.durability not in DURABILITY_POLICIES:
            raise ValueError(
                f"durability must be one of {DURABILITY_POLICIES}, "
                f"got {self.durability!r}"
            )
        if self.fsync_interval < 1:
            raise ValueError(
                f"fsync_interval must be >= 1, got {self.fsync_interval}"
            )

    def fires(self, site: FaultSite, *key: Union[int, str]) -> bool:
        plan = self.fault_plan
        if plan is None:
            return False
        return plan.fires(site, *key, self.salt)

    def roll(self, site: FaultSite, *key: Union[int, str]) -> float:
        plan = self.fault_plan
        if plan is None:
            return 0.0
        return plan.roll(site, *key, self.salt)


# ----------------------------------------------------------------------
# CRC32 line framing
# ----------------------------------------------------------------------


def frame_line(payload: str) -> str:
    """Prefix ``payload`` with the CRC32 of its UTF-8 bytes.

    Framed lines look like ``deadbeef {"kind": ...}``; legacy journals
    (bare JSON lines) stay loadable because :func:`decode_line` treats
    anything without a valid frame prefix as unframed.
    """
    checksum = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{checksum:0{_CRC_WIDTH}x} {payload}"


def decode_line(line: str) -> Tuple[str, Optional[bool]]:
    """Split a journal line into ``(payload, crc_ok)``.

    ``crc_ok`` is ``True``/``False`` for framed lines and ``None`` for
    legacy unframed lines (no checksum to verify).
    """
    if (
        len(line) > _CRC_WIDTH
        and line[_CRC_WIDTH] == " "
        and all(ch in _HEX_DIGITS for ch in line[:_CRC_WIDTH])
    ):
        payload = line[_CRC_WIDTH + 1 :]
        expected = int(line[:_CRC_WIDTH], 16)
        actual = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        return payload, actual == expected
    return line, None


# ----------------------------------------------------------------------
# Durable writes
# ----------------------------------------------------------------------


def durable_append(handle, text: str, durability: str = DURABILITY_FSYNC) -> None:
    """Append ``text`` and push it as far down the stack as the policy
    requires before returning."""
    handle.write(text)
    if durability == DURABILITY_NONE:
        return
    handle.flush()
    if durability == DURABILITY_FSYNC:
        os.fsync(handle.fileno())


def fsync_directory(path: str) -> None:
    """fsync a directory so a rename inside it survives power loss.

    Silently skipped where directories cannot be opened for reading
    (some platforms/filesystems); the rename itself is still atomic.
    """
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_replace(
    path: str,
    data: str,
    storage: Optional[StoragePolicy] = None,
    *key: Union[int, str],
) -> str:
    """Atomically replace ``path`` with ``data``.

    Writes to ``path + ".tmp"``, flushes and fsyncs it (per the
    policy), renames it over ``path`` with ``os.replace``, then fsyncs
    the directory.  A crash at any instant leaves either the complete
    old file or the complete new file — never a torn mix.

    When the policy's fault plan arms
    :attr:`~repro.faults.plan.FaultSite.STORAGE_RENAME_CRASH` for this
    ``key``, the function dies *between* the temp-file write and the
    rename — the worst-case real crash point — leaving the temp file
    behind and ``path`` untouched.
    """
    storage = storage or StoragePolicy()
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(data)
        if storage.durability != DURABILITY_NONE:
            handle.flush()
            if storage.durability == DURABILITY_FSYNC:
                os.fsync(handle.fileno())
    if storage.fires(FaultSite.STORAGE_RENAME_CRASH, os.path.basename(path), *key):
        raise CampaignInterrupted(
            f"injected crash between write and rename of {path}"
        )
    os.replace(tmp_path, path)
    if storage.durability == DURABILITY_FSYNC:
        fsync_directory(directory)
    return path


def write_text_atomic(path: str, data: str) -> str:
    """:func:`atomic_replace` under the process-default policy.

    The drop-in replacement for ``open(path, "w").write(data)`` used by
    exporters (golden snapshots, run manifests) that have no run-scoped
    policy of their own.
    """
    return atomic_replace(path, data, StoragePolicy())


# ----------------------------------------------------------------------
# Advisory run-directory lock
# ----------------------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we could conflict with."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    except (OverflowError, OSError):
        return False
    return True


def plant_stale_lock(path: str) -> None:
    """Write a lockfile owned by a pid that cannot be alive.

    Used by the stale-lock fault site (and tests) to simulate the lock
    a crashed run leaves behind.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps({"pid": 2**30, "owner": "injected-stale"}))


class RunLock:
    """Advisory pidfile lock for one run directory.

    Acquisition is ``O_CREAT | O_EXCL`` (atomic on POSIX).  A lockfile
    whose recorded pid is dead — or is *this* process (a crashed phase
    of the same run resuming in-process) — is stale and gets broken;
    a lock held by another live process raises :class:`LockHeldError`.
    The lock is advisory: it guards cooperating ``repro`` runs, not
    arbitrary writers.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.held = False
        #: Stale lockfiles broken while acquiring (dead or self pid).
        self.stale_broken = 0

    def acquire(self) -> "RunLock":
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                owner = self._read_owner()
                if owner is not None and owner != os.getpid() and _pid_alive(owner):
                    raise LockHeldError(
                        errno.EEXIST,
                        f"run directory locked by live pid {owner}",
                        self.path,
                    )
                # Dead owner, unreadable lockfile, or our own earlier
                # (crashed-and-resumed-in-process) run: break and retry.
                try:
                    os.unlink(self.path)
                except FileNotFoundError:
                    pass
                self.stale_broken += 1
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps({"pid": os.getpid()}))
                handle.flush()
                os.fsync(handle.fileno())
            self.held = True
            return self

    def _read_owner(self) -> Optional[int]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return int(json.loads(handle.read()).get("pid", -1))
        except (OSError, ValueError):
            return None

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "RunLock":
        return self.acquire()

    def __exit__(self, *_exc) -> None:
        self.release()
