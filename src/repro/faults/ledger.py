"""The durable run ledger: one directory holding a whole study's state.

Before the ledger, a resumable study was three uncoordinated
checkpoint files (passive campaign, active experiments, precompute
shards) whose paths the operator had to thread through flags
individually.  A :class:`RunLedger` scopes them all to one run
directory:

.. code-block:: text

    <run>/
      ledger.json       # schema, fingerprints, status, run count
      campaign.jsonl    # passive DNS campaign checkpoint
      active.jsonl      # active poisoning/magnet checkpoint
      shards.jsonl      # precompute shard journal
      .lock             # advisory pidfile (repro.faults.storage.RunLock)
      .generation       # one byte appended per open; size = generation

``ledger.json`` is rewritten atomically
(:func:`~repro.faults.storage.atomic_replace`) and records the config
and fault-plan fingerprints on open plus the graph fingerprint once the
topology stage has run — resuming into a directory whose fingerprints
do not match the current invocation is refused rather than silently
producing a franken-run.

The ``.generation`` file is the anti-livelock mechanism for injected
storage crashes: fault decisions are pure hashes, so a crash keyed only
by (file, record) would fire identically on every resume and the study
would never finish.  Every :meth:`open` appends one byte to
``.generation`` with plain (never fault-injected) I/O and uses the
resulting size as the :class:`~repro.faults.storage.StoragePolicy`
salt, so each resume re-rolls every remaining crash point — the drill
stays deterministic given the crash history while guaranteeing
progress.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.faults.plan import FaultPlan, FaultSite
from repro.faults.storage import (
    RunLock,
    StoragePolicy,
    atomic_replace,
    default_durability,
    plant_stale_lock,
)

LEDGER_SCHEMA = 1

LEDGER_FILE = "ledger.json"
CAMPAIGN_JOURNAL = "campaign.jsonl"
ACTIVE_JOURNAL = "active.jsonl"
SHARD_JOURNAL = "shards.jsonl"
TEMPORAL_JOURNAL = "temporal.jsonl"
LOCK_FILE = ".lock"
GENERATION_FILE = ".generation"

STATUS_RUNNING = "running"
STATUS_COMPLETED = "completed"


class RunLedger:
    """Crash-consistent bookkeeping for one study run directory."""

    def __init__(
        self,
        run_dir: str,
        durability: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.run_dir = run_dir
        self.durability = durability or default_durability()
        self.fault_plan = fault_plan
        self.generation = 0
        self.fingerprints: Dict[str, str] = {}
        self.runs = 0
        self._lock: Optional[RunLock] = None
        self._write_seq = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def ledger_path(self) -> str:
        return os.path.join(self.run_dir, LEDGER_FILE)

    @property
    def campaign_path(self) -> str:
        return os.path.join(self.run_dir, CAMPAIGN_JOURNAL)

    @property
    def active_path(self) -> str:
        return os.path.join(self.run_dir, ACTIVE_JOURNAL)

    @property
    def shards_path(self) -> str:
        return os.path.join(self.run_dir, SHARD_JOURNAL)

    @property
    def temporal_path(self) -> str:
        return os.path.join(self.run_dir, TEMPORAL_JOURNAL)

    @property
    def lock_path(self) -> str:
        return os.path.join(self.run_dir, LOCK_FILE)

    @property
    def generation_path(self) -> str:
        return os.path.join(self.run_dir, GENERATION_FILE)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def storage(self) -> StoragePolicy:
        """The policy every journal and ledger write runs under."""
        return StoragePolicy(
            durability=self.durability,
            fault_plan=self.fault_plan,
            salt=self.generation,
        )

    def open(self, fingerprints: Dict[str, str], resume: bool = False) -> "RunLedger":
        """Acquire the run directory and stamp/verify its identity.

        A directory that already holds a ledger requires ``resume=True``
        (anything else risks silently interleaving two different runs);
        resuming verifies that every fingerprint recorded by the
        original run matches this invocation.  Resuming an empty
        directory is allowed and degrades to a fresh start.
        """
        os.makedirs(self.run_dir, exist_ok=True)
        self._bump_generation()
        if self.storage().fires(FaultSite.STORAGE_STALE_LOCK, self.generation):
            # Simulate the lockfile a crashed run leaves behind; the
            # RunLock below must detect the dead owner and break it.
            if not os.path.exists(self.lock_path):
                plant_stale_lock(self.lock_path)
        self._lock = RunLock(self.lock_path).acquire()
        try:
            existing = self.read(self.run_dir)
            if existing is not None:
                if not resume:
                    raise ValueError(
                        f"{self.run_dir} already contains a run ledger "
                        f"(status {existing.get('status')!r}); pass --resume "
                        "to continue it or choose a fresh --run-dir"
                    )
                self._verify_fingerprints(existing.get("fingerprints", {}), fingerprints)
                # Keep fingerprints the original run recorded that this
                # invocation has not (re)computed yet — e.g. the graph
                # fingerprint, verified later by record_graph.
                merged = dict(existing.get("fingerprints", {}))
                merged.update(fingerprints)
                fingerprints = merged
                self.runs = int(existing.get("runs", 0))
            self.fingerprints = dict(fingerprints)
            self.runs += 1
            self._write_ledger(STATUS_RUNNING)
        except BaseException:
            self._release_lock()
            raise
        return self

    def record_graph(self, fingerprint: str) -> None:
        """Record (or verify, on resume) the topology fingerprint."""
        previous = self.fingerprints.get("graph")
        if previous is not None and previous != fingerprint:
            raise ValueError(
                f"{self.run_dir}: graph fingerprint {fingerprint} does not "
                f"match the ledger's {previous}; refusing to mix runs"
            )
        if previous == fingerprint:
            return
        self.fingerprints["graph"] = fingerprint
        self._write_ledger(STATUS_RUNNING)

    def finalize(self, status: str = STATUS_COMPLETED) -> None:
        """Mark the run finished and release the directory lock.

        Only called on clean completion — a crash leaves the ledger
        ``running`` and the lock in place, which is exactly the state
        resume-with-stale-lock recovery handles.
        """
        self._write_ledger(status)
        self._release_lock()

    def close(self) -> None:
        self._release_lock()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def read(run_dir: str) -> Optional[Dict]:
        """The parsed ``ledger.json``, or ``None`` if absent."""
        path = os.path.join(run_dir, LEDGER_FILE)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None

    def _bump_generation(self) -> None:
        # Plain I/O on purpose: the generation file is what guarantees
        # injected crashes make progress, so it must never crash itself.
        with open(self.generation_path, "ab") as handle:
            handle.write(b".")
            handle.flush()
            os.fsync(handle.fileno())
        self.generation = os.path.getsize(self.generation_path)

    @staticmethod
    def _verify_fingerprints(recorded: Dict, offered: Dict[str, str]) -> None:
        for name, value in offered.items():
            expected = recorded.get(name)
            if expected is not None and expected != value:
                raise ValueError(
                    f"refusing to resume: {name} fingerprint {value} does not "
                    f"match the ledger's {expected} — this run directory "
                    "belongs to a different study configuration"
                )

    def _write_ledger(self, status: str) -> None:
        self._write_seq += 1
        document = {
            "schema": LEDGER_SCHEMA,
            "status": status,
            "fingerprints": dict(sorted(self.fingerprints.items())),
            "runs": self.runs,
            "generation": self.generation,
            "durability": self.durability,
        }
        atomic_replace(
            self.ledger_path,
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            self.storage(),
            self._write_seq,
        )

    def _release_lock(self) -> None:
        if self._lock is not None:
            self._lock.release()
            self._lock = None
