"""Seeded, deterministic fault plans.

A :class:`FaultPlan` decides, for every substrate boundary, whether a
given operation fails — *without consuming any sequential RNG stream*.
Every decision is a pure hash of ``(plan seed, site, key)``, so:

* injection at one site never perturbs another site's randomness,
* a resumed campaign that skips checkpointed work sees exactly the
  same faults on the remaining work as an uninterrupted run, and
* transient faults (keyed by attempt number) can clear on retry while
  persistent faults (keyed without it) exhaust the retry budget.

Plans serialize to/from JSON so campaigns can be driven by
``repro study --fault-plan plan.json``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Union

from repro.obs.context import publish
from repro.obs.events import CATEGORY_FAULT


class FaultSite(str, Enum):
    """Every boundary where the plan can inject a failure."""

    PROBE_DROPOUT = "atlas/probes:dropout"
    PROBE_FLAP = "atlas/probes:flap"
    DNS_SERVFAIL = "atlas/dns:servfail"
    DNS_TIMEOUT = "atlas/dns:timeout"
    TRACEROUTE_TRUNCATE = "dataplane/traceroute:truncate"
    TRACEROUTE_LOOP = "dataplane/traceroute:loop"
    TRACEROUTE_GARBLE = "dataplane/traceroute:garble"
    API_RATE_LIMIT = "atlas/api:rate-limit"
    API_SERVER_ERROR = "atlas/api:server-error"
    MUX_RESET = "peering/testbed:session-reset"
    # Active control-plane sites (poisoning / magnet experiments).
    POISON_FILTERED = "bgp/poison:filtered"
    LONG_PATH_REJECTED = "bgp/poison:long-path"
    ROUTE_FLAP_DAMPING = "bgp/announce:damping"
    CONVERGENCE_STALL = "bgp/announce:stall"
    COLLECTOR_FEED_GAP = "peering/collectors:feed-gap"
    MUX_WITHDRAWAL_LOSS = "peering/testbed:withdrawal-loss"
    # Parallel-execution sites (the precompute process pool).  Keyed by
    # (shard_id, attempt) so crashes/hangs can clear on retry.
    POOL_WORKER_CRASH = "perf/pool:worker-crash"
    POOL_WORKER_HANG = "perf/pool:worker-hang"
    POOL_RESULT_CORRUPT = "perf/pool:result-corrupt"
    # Filesystem sites (the durable-storage layer).  Keyed by
    # (file basename, record ordinal, ledger generation) so a crash
    # drill clears on the next resume instead of firing forever.
    STORAGE_TORN_APPEND = "faults/storage:torn-append"
    STORAGE_ENOSPC = "faults/storage:enospc"
    STORAGE_RENAME_CRASH = "faults/storage:crash-before-rename"
    STORAGE_STALE_LOCK = "faults/storage:stale-lock"


_SITE_BY_VALUE = {site.value: site for site in FaultSite}


def derive_seed(*parts: Union[int, str]) -> int:
    """A stable 64-bit sub-seed from arbitrary key parts.

    Used to build per-measurement RNGs so that each (probe, name) pair
    draws from its own stream regardless of iteration order — the
    property checkpoint/resume determinism rests on.
    """
    text = "|".join(str(part) for part in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class FaultPlan:
    """Fault rates per site plus the seed that makes them deterministic."""

    seed: int = 0
    rates: Mapping[FaultSite, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        normalized: Dict[FaultSite, float] = {}
        for site, rate in dict(self.rates).items():
            if not isinstance(site, FaultSite):
                site = self._parse_site(site)
            rate = float(rate)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {site.value} must be in [0, 1], got {rate}")
            normalized[site] = rate
        object.__setattr__(self, "rates", normalized)

    @staticmethod
    def _parse_site(name: str) -> FaultSite:
        site = _SITE_BY_VALUE.get(str(name))
        if site is None:
            valid = ", ".join(sorted(_SITE_BY_VALUE))
            raise ValueError(f"unknown fault site {name!r}; valid sites: {valid}")
        return site

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """A plan that injects nothing (the fault-free reference)."""
        return cls(seed=seed, rates={})

    def is_zero(self) -> bool:
        return all(rate == 0.0 for rate in self.rates.values())

    def rate(self, site: FaultSite) -> float:
        return self.rates.get(site, 0.0)

    # ------------------------------------------------------------------
    # Deterministic decisions
    # ------------------------------------------------------------------
    def roll(self, site: FaultSite, *key: Union[int, str]) -> float:
        """A uniform [0, 1) draw fully determined by (seed, site, key)."""
        value = derive_seed(self.seed, site.value, *key)
        return value / 2.0 ** 64

    def fires(self, site: FaultSite, *key: Union[int, str]) -> bool:
        """Whether the fault at ``site`` fires for this key.

        Firings are published to the observability event stream (when
        one is enabled) under the site's value, so a run manifest can
        list exactly which faults fired.  Publishing consumes no
        randomness: the decision is a pure hash either way.
        """
        rate = self.rate(site)
        if rate <= 0.0:
            return False
        fired = self.roll(site, *key) < rate
        if fired:
            publish(
                CATEGORY_FAULT,
                site.value,
                key="/".join(str(part) for part in key),
            )
        return fired

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "rates": {site.value: rate for site, rate in sorted(self.rates.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ValueError(f"fault plan must be an object, got {type(data).__name__}")
        rates = data.get("rates", {})
        if not isinstance(rates, Mapping):
            raise ValueError("fault plan 'rates' must be an object")
        return cls(seed=int(data.get("seed", 0)), rates=dict(rates))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def fingerprint(self) -> str:
        """Stable digest used to guard checkpoint resumption."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()
