"""Seeded retry with exponential backoff and full jitter.

The campaign runner wraps every fallible measurement step in a
:class:`RetryPolicy`.  Delays follow AWS-style full jitter
(``uniform(0, min(cap, base * multiplier^(attempt-1)))``) but elapse on
a *virtual* clock: the simulation never sleeps, it only accounts the
time a real campaign would have waited, and enforces the per-attempt
timeout and overall deadline against that clock.

Jitter randomness is derived per ``(policy seed, call key)`` — not from
a shared sequential stream — so a resumed campaign retries the
remaining work exactly as an uninterrupted run would have.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple, Union

from repro.faults.errors import FaultError, RetryExhausted
from repro.faults.plan import derive_seed
from repro.obs.context import publish
from repro.obs.events import CATEGORY_RETRY


@dataclass
class RetryStats:
    """Attempt/exhaustion counters, aggregated across a campaign."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    succeeded_after_retry: int = 0
    exhausted: int = 0
    #: Simulated seconds spent waiting in backoff + timed-out attempts.
    simulated_wait_s: float = 0.0
    #: Retries per fault site, e.g. ``{"atlas/dns": 12}``.
    retries_by_site: Dict[str, int] = field(default_factory=dict)
    #: Exhaustions per fault reason, e.g. ``{"dns-servfail": 3}``.
    exhausted_by_reason: Dict[str, int] = field(default_factory=dict)

    def record_retry(self, error: FaultError) -> None:
        self.retries += 1
        self.retries_by_site[error.site] = self.retries_by_site.get(error.site, 0) + 1

    def record_exhaustion(self, error: FaultError) -> None:
        self.exhausted += 1
        self.exhausted_by_reason[error.reason] = (
            self.exhausted_by_reason.get(error.reason, 0) + 1
        )

    def merge(self, other: "RetryStats") -> None:
        self.calls += other.calls
        self.attempts += other.attempts
        self.retries += other.retries
        self.succeeded_after_retry += other.succeeded_after_retry
        self.exhausted += other.exhausted
        self.simulated_wait_s += other.simulated_wait_s
        for site, count in other.retries_by_site.items():
            self.retries_by_site[site] = self.retries_by_site.get(site, 0) + count
        for reason, count in other.exhausted_by_reason.items():
            self.exhausted_by_reason[reason] = (
                self.exhausted_by_reason.get(reason, 0) + count
            )

    def as_dict(self) -> Dict:
        return {
            "calls": self.calls,
            "attempts": self.attempts,
            "retries": self.retries,
            "succeeded_after_retry": self.succeeded_after_retry,
            "exhausted": self.exhausted,
            "simulated_wait_s": round(self.simulated_wait_s, 3),
            "retries_by_site": dict(sorted(self.retries_by_site.items())),
            "exhausted_by_reason": dict(sorted(self.exhausted_by_reason.items())),
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter on a virtual clock."""

    max_attempts: int = 4
    base_delay_s: float = 0.5
    max_delay_s: float = 30.0
    multiplier: float = 2.0
    #: Virtual cost charged for every failed attempt (models the
    #: per-attempt timeout a real client would wait out).
    attempt_timeout_s: float = 5.0
    #: Overall virtual deadline; ``None`` disables it.
    deadline_s: Optional[float] = 300.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter delay before attempt ``attempt + 1``."""
        cap = min(self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1))
        return rng.uniform(0.0, cap)

    def execute(
        self,
        fn: Callable[[int], object],
        *,
        key: Tuple[Union[int, str], ...] = (),
        stats: Optional[RetryStats] = None,
    ):
        """Run ``fn(attempt_number)`` with retries on retryable faults.

        Non-retryable :class:`FaultError`\\ s propagate immediately;
        retryable ones are re-attempted until ``max_attempts`` or the
        virtual ``deadline_s`` runs out, at which point a
        :class:`RetryExhausted` wrapping the last error is raised.
        """
        stats = stats if stats is not None else RetryStats()
        stats.calls += 1
        rng = random.Random(derive_seed(self.seed, "retry", *key))
        elapsed = 0.0
        attempt = 0
        while True:
            attempt += 1
            stats.attempts += 1
            try:
                result = fn(attempt)
            except FaultError as error:
                if not error.retryable:
                    raise
                elapsed += self.attempt_timeout_s
                delay = self.backoff(attempt, rng)
                out_of_attempts = attempt >= self.max_attempts
                out_of_time = (
                    self.deadline_s is not None and elapsed + delay > self.deadline_s
                )
                if out_of_attempts or out_of_time:
                    stats.simulated_wait_s += elapsed
                    stats.record_exhaustion(error)
                    limit = "deadline" if out_of_time and not out_of_attempts else "attempts"
                    publish(
                        CATEGORY_RETRY,
                        "exhausted",
                        site=error.site,
                        reason=error.reason,
                        attempts=attempt,
                        limit=limit,
                    )
                    raise RetryExhausted(
                        f"gave up after {attempt} attempt(s) ({limit} exhausted): {error}",
                        last_error=error,
                        attempts=attempt,
                    ) from error
                stats.record_retry(error)
                publish(
                    CATEGORY_RETRY,
                    "attempt",
                    site=error.site,
                    reason=error.reason,
                    attempt=attempt,
                )
                elapsed += delay
            else:
                stats.simulated_wait_s += elapsed
                if attempt > 1:
                    stats.succeeded_after_retry += 1
                return result
