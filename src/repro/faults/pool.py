"""Supervised shard executor: crash-tolerant parallel fan-out.

A bare ``ProcessPoolExecutor`` turns one worker OOM/segfault into an
opaque ``BrokenProcessPool`` that aborts the whole computation and
throws away every completed result.  :class:`SupervisedShardExecutor`
replaces that failure mode with supervised, journaled shard execution:

* work arrives as deterministic :class:`Shard`\\ s (stable ids over
  stable-sorted chunks), so two runs dispatch identically;
* a supervisor waits on every shard future under a per-shard deadline:
  dead workers (``BrokenProcessPool``) and hung shards (deadline
  expiry) are detected, the pool is torn down and respawned, and the
  failed shard is retried with full-jitter backoff accounted on the
  :class:`~repro.faults.retry.RetryPolicy`'s virtual clock;
* a :class:`~repro.faults.supervisor.CircuitBreaker` watches pool
  failures — when it trips, the executor stops respawning pools and
  degrades the remaining shards to serial in-process execution;
* a shard that exhausts its retry budget is quarantined and recomputed
  serially, so one poisoned shard cannot stall the run — the
  degradation ladder (retry -> respawn -> quarantine -> serial)
  guarantees the run always completes;
* completed shards are journaled to a :class:`ShardJournal`
  (``<checkpoint>.shards``), so a killed run resumes byte-identical
  without recomputing finished shards.

The executor is deliberately generic: it knows nothing about routing
trees.  Callers provide the picklable pool worker plus small callbacks
(validate / install / serial-recompute / journal codecs), which keeps
this package free of measurement-layer imports and lets any fan-out
workload sit on top of the same supervision.

Determinism contract: *results* are identical whether shards complete
in the pool, after retries, serially after quarantine, or from the
journal — every path computes or replays the same pure function of the
shard task.  Recovery *accounting* (retry counts, event order) depends
on which real faults fired and is reported, not replayed.
"""

from __future__ import annotations

import base64
import pickle
import random
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.errors import (
    CampaignInterrupted,
    FaultError,
    PoolResultCorrupt,
    PoolWorkerCrash,
    PoolWorkerHang,
    ShardExecutionError,
)
from repro.faults.journal import CheckpointJournal
from repro.faults.plan import derive_seed
from repro.faults.retry import RetryPolicy, RetryStats
from repro.faults.supervisor import OPEN, CircuitBreaker
from repro.obs.context import get_obs, publish
from repro.obs.events import CATEGORY_POOL

#: Default wall-clock deadline per shard attempt.  Generous — it only
#: needs to be smaller than "forever" to turn a wedged worker into a
#: retryable fault.
DEFAULT_SHARD_TIMEOUT_S = 300.0

KIND_SHARD = "shard"


@dataclass(frozen=True)
class Shard:
    """One deterministic unit of pool work.

    ``shard_id`` must be stable across runs *and* content-addressed
    (derived from the work itself), so a journal replay can only ever
    restore a result onto the exact work that produced it.
    """

    shard_id: str
    #: Picklable payload handed to the pool worker.
    task: object
    #: The work items the shard covers — carried into error reports.
    keys: Tuple = ()


class ShardJournal(CheckpointJournal):
    """``<checkpoint>.shards`` — append-only journal of finished shards.

    Inherits the pair journal's torn-tail recovery: a crash mid-append
    loses at most the trailing record (that shard simply recomputes on
    resume), while interior corruption raises
    :class:`~repro.faults.journal.JournalCorrupted`.
    """

    record_kind = KIND_SHARD
    required_fields = ("shard", "payload")


@dataclass
class ShardExecutionReport:
    """Where every shard went, plus every recovery action taken."""

    shards_total: int = 0
    #: Completed in a pool worker (possibly after retries).
    completed_parallel: int = 0
    #: Completed by in-process recomputation (quarantine or degrade).
    completed_serial: int = 0
    #: Restored from the shard journal without recomputation.
    resumed: int = 0
    attempts: int = 0
    retries: int = 0
    worker_crashes: int = 0
    worker_hangs: int = 0
    corrupt_results: int = 0
    #: Exceptions raised *by* the worker function (not pool plumbing).
    worker_errors: int = 0
    #: Pools torn down and replaced after a crash or hang.
    respawns: int = 0
    #: Shard ids that exhausted their retry budget.
    quarantined: List[str] = field(default_factory=list)
    #: The breaker tripped and the remaining shards ran serially.
    degraded_serial_mode: bool = False
    workers: int = 0
    journal_torn_lines: int = 0
    #: Journal records whose payload failed to decode (recomputed).
    journal_invalid_records: int = 0
    retry: RetryStats = field(default_factory=RetryStats)
    #: Breaker snapshot at the end of the run (``None`` without one).
    breaker: Optional[Dict] = None

    def accounted(self) -> bool:
        """Every shard must land in exactly one completion bucket."""
        return (
            self.completed_parallel + self.completed_serial + self.resumed
            == self.shards_total
        )

    def merge(self, other: "ShardExecutionReport") -> None:
        self.shards_total += other.shards_total
        self.completed_parallel += other.completed_parallel
        self.completed_serial += other.completed_serial
        self.resumed += other.resumed
        self.attempts += other.attempts
        self.retries += other.retries
        self.worker_crashes += other.worker_crashes
        self.worker_hangs += other.worker_hangs
        self.corrupt_results += other.corrupt_results
        self.worker_errors += other.worker_errors
        self.respawns += other.respawns
        self.quarantined.extend(other.quarantined)
        self.degraded_serial_mode = (
            self.degraded_serial_mode or other.degraded_serial_mode
        )
        self.workers = max(self.workers, other.workers)
        self.journal_torn_lines += other.journal_torn_lines
        self.journal_invalid_records += other.journal_invalid_records
        self.retry.merge(other.retry)
        if other.breaker is not None:
            self.breaker = other.breaker

    def as_dict(self) -> Dict:
        return {
            "shards_total": self.shards_total,
            "completed_parallel": self.completed_parallel,
            "completed_serial": self.completed_serial,
            "resumed": self.resumed,
            "attempts": self.attempts,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "worker_hangs": self.worker_hangs,
            "corrupt_results": self.corrupt_results,
            "worker_errors": self.worker_errors,
            "respawns": self.respawns,
            "quarantined": list(self.quarantined),
            "degraded_serial_mode": self.degraded_serial_mode,
            "workers": self.workers,
            "journal_torn_lines": self.journal_torn_lines,
            "journal_invalid_records": self.journal_invalid_records,
            "retry": self.retry.as_dict(),
            "breaker": self.breaker,
            "accounted": self.accounted(),
        }


def _pickle_encode(result: object) -> str:
    raw = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(raw).decode("ascii")


def _pickle_decode(payload: str) -> object:
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


class SupervisedShardExecutor:
    """Round-based supervised dispatch of shards to a process pool.

    ``worker_fn(task, shard_id, attempt)`` must be a module-level
    (picklable) function; the extra arguments let seeded fault plans
    key injected crashes per ``(shard_id, attempt)`` so a retried
    attempt can clear.  The parent-side callbacks passed to :meth:`run`
    stay in-process and may close over live objects.
    """

    def __init__(
        self,
        worker_fn: Callable,
        *,
        workers: int,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        shard_timeout_s: Optional[float] = DEFAULT_SHARD_TIMEOUT_S,
        journal: Optional[ShardJournal] = None,
        context_fingerprint: str = "",
        abort_after: Optional[int] = None,
    ) -> None:
        if workers < 2:
            raise ValueError(f"supervised pool needs >= 2 workers, got {workers}")
        self.worker_fn = worker_fn
        self.workers = workers
        self.initializer = initializer
        self.initargs = initargs
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker
        self.shard_timeout_s = shard_timeout_s
        self.journal = journal
        self.context_fingerprint = context_fingerprint
        #: Crash-drill knob: raise :class:`CampaignInterrupted` after
        #: this many shards have been journaled (``None`` disables).
        self.abort_after = abort_after

    # ------------------------------------------------------------------
    # Journal plumbing
    # ------------------------------------------------------------------
    def _load_replayable(self, report: ShardExecutionReport) -> Dict[str, str]:
        """Journaled ``shard_id -> payload``, after the resume guards."""
        journal = self.journal
        if journal is None or not journal.exists():
            return {}
        header, records = journal.load()
        report.journal_torn_lines += journal.torn_lines
        if (
            header is not None
            and self.context_fingerprint
            and header.get("fingerprint") not in (None, self.context_fingerprint)
        ):
            raise ValueError(
                f"refusing to resume from {journal.path}: journal was "
                f"written for a different study "
                f"(fingerprint {header.get('fingerprint')!r} != "
                f"{self.context_fingerprint!r})"
            )
        payloads: Dict[str, str] = {}
        for record in records:
            payloads[str(record["shard"])] = str(record["payload"])
        return payloads

    def _journal_start(self) -> None:
        journal = self.journal
        if journal is None:
            return
        fresh = not journal.exists()
        journal.open_append()
        if fresh:
            journal.write_header({"fingerprint": self.context_fingerprint})

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(
        self,
        shards: Sequence[Shard],
        *,
        serial_fn: Callable[[Shard], object],
        install_fn: Callable[[Shard, object], None],
        validate_fn: Optional[Callable[[Shard, object], Optional[str]]] = None,
        encode_result: Callable[[object], str] = _pickle_encode,
        decode_result: Callable[[str], object] = _pickle_decode,
    ) -> ShardExecutionReport:
        """Execute every shard; returns the full accounting report.

        ``serial_fn(shard)`` recomputes one shard in-process (the
        degradation target); ``install_fn(shard, result)`` lands a
        result wherever it belongs; ``validate_fn(shard, result)``
        returns a rejection reason or ``None`` — the cheap always-on
        corruption check applied to pool results before installation.
        """
        shards = list(shards)
        ids = [shard.shard_id for shard in shards]
        if len(set(ids)) != len(ids):
            raise ValueError("shard ids must be unique within one run")
        report = ShardExecutionReport(
            shards_total=len(shards), workers=self.workers
        )
        metrics = get_obs().metrics

        def count_shard(status: str) -> None:
            if metrics.enabled:
                metrics.counter(
                    "repro_pool_shards_total",
                    "Supervised shards, by completion status.",
                ).labels(status=status).inc()

        def count_recovery(action: str) -> None:
            if metrics.enabled:
                metrics.counter(
                    "repro_pool_recovery_total",
                    "Supervisor recovery actions on the precompute pool.",
                ).labels(action=action).inc()

        # -- Resume: replay journaled results before any dispatch. ------
        replayable = self._load_replayable(report)
        self._journal_start()
        journaled = 0

        def journal_result(shard: Shard, result: object) -> None:
            nonlocal journaled
            if self.journal is None:
                return
            self.journal.append(
                {"shard": shard.shard_id, "payload": encode_result(result)}
            )
            journaled += 1
            if self.abort_after is not None and journaled >= self.abort_after:
                raise CampaignInterrupted(
                    f"pool aborted after {journaled} journaled shard(s) "
                    "(crash drill)",
                    completed_pairs=journaled,
                )

        pending: List[Shard] = []
        for shard in shards:
            payload = replayable.get(shard.shard_id)
            if payload is None:
                pending.append(shard)
                continue
            try:
                result = decode_result(payload)
            except Exception:
                report.journal_invalid_records += 1
                pending.append(shard)
                continue
            install_fn(shard, result)
            report.resumed += 1
            count_shard("resumed")
        if report.resumed:
            publish(CATEGORY_POOL, "resumed", shards=report.resumed)

        # -- Per-shard retry bookkeeping on the virtual clock. ----------
        attempts: Dict[str, int] = {shard.shard_id: 0 for shard in pending}
        elapsed: Dict[str, float] = {shard.shard_id: 0.0 for shard in pending}
        report.retry.calls += len(pending)

        def complete(shard: Shard, result: object, mode: str) -> None:
            install_fn(shard, result)
            if mode == "parallel":
                report.completed_parallel += 1
            else:
                report.completed_serial += 1
            count_shard(mode)
            if self.breaker is not None and mode == "parallel":
                self.breaker.record_success()
            if mode == "parallel" and attempts[shard.shard_id] > 1:
                report.retry.succeeded_after_retry += 1
            report.retry.simulated_wait_s += elapsed[shard.shard_id]
            journal_result(shard, result)

        def complete_serial(shard: Shard) -> None:
            try:
                result = serial_fn(shard)
            except Exception as exc:
                raise ShardExecutionError(
                    f"shard {shard.shard_id} failed serial recomputation: "
                    f"{exc!r}",
                    shard_id=shard.shard_id,
                    keys=shard.keys,
                ) from exc
            complete(shard, result, "serial")

        def fail_attempt(
            shard: Shard,
            attempt: int,
            error: FaultError,
            retry_round: List[Shard],
            charge_breaker: bool = True,
        ) -> None:
            """One failed attempt: retry with backoff or quarantine.

            ``charge_breaker=False`` marks collateral losses — shards
            torn down with a pool they did not break.  They still burn
            a retry attempt (conservative: their worker state is gone)
            but must not push the breaker toward serial degradation,
            or one hang would count as ``workers``-many offenses.
            """
            name = {
                "pool-worker-crash": "worker_crash",
                "pool-worker-hang": "worker_hang",
                "pool-result-corrupt": "result_corrupt",
            }.get(error.reason, "worker_error")
            publish(
                CATEGORY_POOL, name, shard=shard.shard_id, attempt=attempt
            )
            count_recovery(name)
            if name == "worker_crash":
                report.worker_crashes += 1
            elif name == "worker_hang":
                report.worker_hangs += 1
            elif name == "result_corrupt":
                report.corrupt_results += 1
            else:
                report.worker_errors += 1
            if self.breaker is not None and charge_breaker:
                self.breaker.record_failure()
            policy = self.retry
            elapsed[shard.shard_id] += policy.attempt_timeout_s
            rng = random.Random(
                derive_seed(policy.seed, "shard", shard.shard_id, attempt)
            )
            delay = policy.backoff(attempt, rng)
            out_of_attempts = attempt >= policy.max_attempts
            out_of_time = (
                policy.deadline_s is not None
                and elapsed[shard.shard_id] + delay > policy.deadline_s
            )
            if out_of_attempts or out_of_time:
                report.retry.record_exhaustion(error)
                report.retry.simulated_wait_s += elapsed[shard.shard_id]
                elapsed[shard.shard_id] = 0.0
                report.quarantined.append(shard.shard_id)
                publish(
                    CATEGORY_POOL,
                    "quarantine",
                    shard=shard.shard_id,
                    reason=error.reason,
                    attempts=attempt,
                )
                count_recovery("quarantine")
                count_shard("quarantined")
                complete_serial(shard)
                return
            report.retry.record_retry(error)
            report.retries += 1
            elapsed[shard.shard_id] += delay
            publish(
                CATEGORY_POOL,
                "retry",
                shard=shard.shard_id,
                attempt=attempt,
                reason=error.reason,
            )
            count_recovery("retry")
            retry_round.append(shard)

        pool: Optional[ProcessPoolExecutor] = None
        serial_only = False
        try:
            while pending:
                # Breaker tripped -> stop respawning pools entirely.
                if (
                    not serial_only
                    and self.breaker is not None
                    and self.breaker.state == OPEN
                ):
                    serial_only = True
                    report.degraded_serial_mode = True
                    publish(
                        CATEGORY_POOL, "degrade_serial", shards=len(pending)
                    )
                    count_recovery("degrade_serial")
                if serial_only:
                    for shard in pending:
                        complete_serial(shard)
                    pending = []
                    break
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=self.initializer,
                        initargs=self.initargs,
                    )
                # One round: submit every pending shard, then harvest
                # in submission order under the per-shard deadline.
                submitted: List[Tuple[Shard, int, Optional[Future]]] = []
                for shard in pending:
                    attempts[shard.shard_id] += 1
                    report.attempts += 1
                    report.retry.attempts += 1
                    attempt = attempts[shard.shard_id]
                    try:
                        future = pool.submit(
                            self.worker_fn, shard.task, shard.shard_id, attempt
                        )
                    except (BrokenExecutor, RuntimeError):
                        future = None
                    submitted.append((shard, attempt, future))
                retry_round: List[Shard] = []
                pool_broken = False
                for shard, attempt, future in submitted:
                    if future is None:
                        first_offense = not pool_broken
                        pool_broken = True
                        fail_attempt(
                            shard,
                            attempt,
                            PoolWorkerCrash(
                                f"pool rejected shard {shard.shard_id}"
                            ),
                            retry_round,
                            charge_breaker=first_offense,
                        )
                        continue
                    # Once the pool is known broken, only salvage
                    # results that already finished — never block on a
                    # future the dead pool can no longer complete.
                    timeout = 0.0 if pool_broken else self.shard_timeout_s
                    try:
                        result = future.result(timeout=timeout)
                    except FutureTimeout:
                        if pool_broken:
                            fail_attempt(
                                shard,
                                attempt,
                                PoolWorkerCrash(
                                    f"shard {shard.shard_id} lost to a "
                                    "pool teardown"
                                ),
                                retry_round,
                                charge_breaker=False,
                            )
                            continue
                        # Hung shard: kill the pool's workers so the
                        # wedged one cannot hold the run hostage.
                        pool_broken = True
                        self._kill_workers(pool)
                        fail_attempt(
                            shard,
                            attempt,
                            PoolWorkerHang(
                                f"shard {shard.shard_id} missed its "
                                f"{self.shard_timeout_s}s deadline"
                            ),
                            retry_round,
                        )
                        continue
                    except BrokenExecutor:
                        first_offense = not pool_broken
                        pool_broken = True
                        fail_attempt(
                            shard,
                            attempt,
                            PoolWorkerCrash(
                                f"worker died executing shard {shard.shard_id}"
                            ),
                            retry_round,
                            charge_breaker=first_offense,
                        )
                        continue
                    except Exception as exc:
                        fail_attempt(
                            shard,
                            attempt,
                            PoolWorkerCrash(
                                f"shard {shard.shard_id} raised {exc!r}",
                                reason="pool-worker-error",
                            ),
                            retry_round,
                        )
                        continue
                    reason = (
                        validate_fn(shard, result)
                        if validate_fn is not None
                        else None
                    )
                    if reason is not None:
                        fail_attempt(
                            shard,
                            attempt,
                            PoolResultCorrupt(
                                f"shard {shard.shard_id}: {reason}"
                            ),
                            retry_round,
                        )
                        continue
                    complete(shard, result, "parallel")
                if pool_broken:
                    self._teardown(pool)
                    pool = None
                    if retry_round:
                        report.respawns += 1
                        publish(CATEGORY_POOL, "respawn")
                        count_recovery("respawn")
                pending = retry_round
        finally:
            if pool is not None:
                self._teardown(pool)
            if self.journal is not None:
                self.journal.close()
        report.breaker = (
            self.breaker.as_dict() if self.breaker is not None else None
        )
        return report

    # ------------------------------------------------------------------
    # Pool teardown
    # ------------------------------------------------------------------
    @staticmethod
    def _kill_workers(pool: ProcessPoolExecutor) -> None:
        """Terminate every worker process (hang recovery)."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass

    @staticmethod
    def _teardown(pool: ProcessPoolExecutor) -> None:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass
