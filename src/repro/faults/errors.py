"""Structured fault taxonomy for every substrate boundary.

Real measurement campaigns fail in typed, recognisable ways: probes go
dark or flap, resolvers answer SERVFAIL or time out, the Atlas API
throttles (429) or hiccups (5xx), PEERING mux sessions reset, and
result documents arrive torn or garbled.  Each failure mode gets its
own exception carrying a ``site`` (which substrate boundary raised it),
a ``reason`` slug (stable key for quarantine/loss accounting) and a
``retryable`` flag consumed by :class:`repro.faults.retry.RetryPolicy`.
"""

from __future__ import annotations

from typing import Optional


class FaultError(Exception):
    """Base class for injected or observed measurement faults."""

    #: Substrate boundary the fault belongs to (overridden per class).
    site: str = "unknown"
    #: Whether a retry can plausibly succeed.
    retryable: bool = False

    def __init__(
        self,
        message: str,
        *,
        site: Optional[str] = None,
        reason: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        if site is not None:
            self.site = site
        #: Stable accounting slug, e.g. ``dns-servfail``.
        self.reason = reason if reason is not None else self.default_reason()

    @classmethod
    def default_reason(cls) -> str:
        return cls.__name__


class ProbeDownError(FaultError):
    """The probe went dark for the whole campaign (permanent dropout)."""

    site = "atlas/probes"
    retryable = False

    @classmethod
    def default_reason(cls) -> str:
        return "probe-dropout"


class ProbeFlapError(FaultError):
    """The probe missed this scheduling round but is expected back."""

    site = "atlas/probes"
    retryable = True

    @classmethod
    def default_reason(cls) -> str:
        return "probe-flap"


class DnsServfail(FaultError):
    """The resolver answered SERVFAIL for this name.

    Retryable in principle, but injected SERVFAILs are keyed per
    (probe, name) — persistent — so retries exhaust, exercising the
    exhaustion accounting path.
    """

    site = "atlas/dns"
    retryable = True

    @classmethod
    def default_reason(cls) -> str:
        return "dns-servfail"


class DnsTimeout(FaultError):
    """The DNS query timed out (transient; retries can succeed)."""

    site = "atlas/dns"
    retryable = True

    @classmethod
    def default_reason(cls) -> str:
        return "dns-timeout"


class AtlasApiError(FaultError):
    """Transient HTTP-level failure fetching results from the API."""

    site = "atlas/api"
    retryable = True
    #: HTTP status the simulated API answered with.
    status: int = 500

    def __init__(self, message: str, *, status: Optional[int] = None, **kwargs) -> None:
        super().__init__(message, **kwargs)
        if status is not None:
            self.status = status


class ApiRateLimit(AtlasApiError):
    """HTTP 429: the platform throttled the result fetch."""

    status = 429

    @classmethod
    def default_reason(cls) -> str:
        return "api-rate-limit"


class ApiServerError(AtlasApiError):
    """HTTP 5xx: the platform failed transiently."""

    status = 503

    @classmethod
    def default_reason(cls) -> str:
        return "api-server-error"


class MuxSessionReset(FaultError):
    """A PEERING mux BGP session reset mid-announcement."""

    site = "peering/testbed"
    retryable = True

    @classmethod
    def default_reason(cls) -> str:
        return "mux-session-reset"


class PoisonFiltered(FaultError):
    """An intermediate AS filtered the poisoned announcement.

    Smith et al. document transit ASes dropping announcements whose
    AS-path carries unexpected AS-sets; the filter is a standing policy,
    so the same poison set fails every attempt.  Keyed per
    (target, round) — persistent — so retries exhaust and the target's
    discovery ends with a *censored* partial preference order.
    """

    site = "bgp/poison"
    retryable = True

    @classmethod
    def default_reason(cls) -> str:
        return "poison-filtered"


class LongPathRejected(FaultError):
    """A transit AS rejected the announcement for an over-long AS path.

    Iterative poisoning grows the path by one AS-set member per round;
    real networks enforce maximum-length import filters, so deep
    iterations stop being propagatable.  Non-retryable: the path only
    gets longer from here.
    """

    site = "bgp/poison"
    retryable = False

    @classmethod
    def default_reason(cls) -> str:
        return "long-path-rejected"


class RouteFlapDamped(FaultError):
    """Route-flap damping suppressed the announcement at an upstream.

    The paper spaces announcements 90 minutes apart precisely to dodge
    this; when it fires anyway the suppression decays, so a (virtual)
    backoff retry can succeed.  Keyed per attempt — transient.
    """

    site = "bgp/announce"
    retryable = True

    @classmethod
    def default_reason(cls) -> str:
        return "route-flap-damped"


class ConvergenceStall(FaultError):
    """The control plane failed to settle within the observation window.

    Models slow convergence (path hunting, MRAI timers) rather than a
    true dispute wheel: waiting and re-announcing can succeed, so the
    fault is transient/retryable.  A genuine
    :class:`repro.bgp.simulator.ConvergenceError` (hard event-budget
    blowout) is *not* retryable and quarantines the target instead.
    """

    site = "bgp/announce"
    retryable = True

    @classmethod
    def default_reason(cls) -> str:
        return "convergence-stall"


class CollectorFeedGap(FaultError):
    """The route collectors produced no feed for this observation round.

    RouteViews/RIS dumps arrive on a schedule and sometimes not at all;
    the magnet round still happened, so the observation is kept but its
    feed channel is censored rather than the round re-run.
    """

    site = "peering/collectors"
    retryable = False

    @classmethod
    def default_reason(cls) -> str:
        return "feed-gap"


class WithdrawalLost(FaultError):
    """A mux lost the withdrawal message; the prefix stayed announced.

    Dangerous in the real world (the testbed keeps polluting the
    control plane), so the supervisor retries until the withdrawal is
    confirmed.  Keyed per attempt — transient.
    """

    site = "peering/testbed"
    retryable = True

    @classmethod
    def default_reason(cls) -> str:
        return "withdrawal-lost"


class BreakerOpen(FaultError):
    """The supervisor's circuit breaker rejected the operation.

    Raised instead of attempting an announcement while the breaker is
    open; the current target is quarantined rather than retried (the
    breaker exists to stop hammering a failing control plane).
    """

    site = "supervisor"
    retryable = False

    @classmethod
    def default_reason(cls) -> str:
        return "breaker-open"


class WatchdogExpired(FaultError):
    """A target exhausted its per-target announcement budget.

    Bounds how much testbed time one pathological target can burn; the
    routes discovered so far are kept as a censored partial order.
    """

    site = "supervisor"
    retryable = False

    @classmethod
    def default_reason(cls) -> str:
        return "watchdog-budget"


class MalformedResultError(FaultError, ValueError):
    """A result document that cannot be parsed into a traceroute.

    Subclasses :class:`ValueError` so pre-existing strict callers that
    catch ``ValueError`` keep working; resilient callers catch this type
    and quarantine the document instead of crashing.
    """

    site = "atlas/api"
    retryable = False

    def __init__(self, message: str, *, document=None, **kwargs) -> None:
        super().__init__(message, **kwargs)
        #: The offending document (may be ``None`` for raw-text input).
        self.document = document

    @classmethod
    def default_reason(cls) -> str:
        return "malformed-result"


class PoolError(FaultError):
    """Base class for precompute process-pool faults."""

    site = "perf/pool"
    retryable = True


class PoolWorkerCrash(PoolError):
    """A pool worker died mid-shard (SIGKILL, OOM, segfault).

    Surfaces as ``BrokenProcessPool`` on the parent's future; the
    supervisor respawns the pool and retries the shard, so the fault is
    transient from the shard's point of view.
    """

    @classmethod
    def default_reason(cls) -> str:
        return "pool-worker-crash"


class PoolWorkerHang(PoolError):
    """A shard missed its per-shard deadline (worker wedged or livelocked).

    The supervisor kills the pool's workers, respawns, and retries the
    shard — the analogue of a watchdog-driven process restart.
    """

    @classmethod
    def default_reason(cls) -> str:
        return "pool-worker-hang"


class PoolResultCorrupt(PoolError):
    """A shard's result failed the parent-side validation check.

    The cheap always-on check (did the worker return exactly the trees
    that were asked for?) catches truncated or garbled result payloads
    before they can be installed into an engine cache.
    """

    @classmethod
    def default_reason(cls) -> str:
        return "pool-result-corrupt"


class ShardExecutionError(PoolError):
    """A shard failed even the serial in-process recomputation.

    Terminal: carries the shard id and the tree keys it covered so the
    caller sees *which* work is unrecoverable instead of a bare
    ``concurrent.futures`` traceback.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        shard_id: str = "",
        keys: tuple = (),
        **kwargs,
    ) -> None:
        super().__init__(message, **kwargs)
        self.shard_id = shard_id
        #: The work items (e.g. ``TreeKey``s) the failed shard covered.
        self.keys = tuple(keys)

    @classmethod
    def default_reason(cls) -> str:
        return "shard-execution-failed"


class RetryExhausted(FaultError):
    """A retryable operation failed on every allowed attempt."""

    retryable = False

    def __init__(
        self,
        message: str,
        *,
        last_error: Optional[FaultError] = None,
        attempts: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(message, **kwargs)
        self.last_error = last_error
        self.attempts = attempts
        if last_error is not None:
            self.site = last_error.site
            self.reason = f"exhausted:{last_error.reason}"


class CampaignInterrupted(RuntimeError):
    """The campaign was killed mid-run (crash drill / operator abort).

    Raised by the runner's ``abort_after`` crash-injection knob after
    the checkpoint journal has been flushed, so tests can verify that a
    resumed campaign reproduces the uninterrupted one.
    """

    def __init__(self, message: str, completed_pairs: int = 0) -> None:
        super().__init__(message)
        self.completed_pairs = completed_pairs
