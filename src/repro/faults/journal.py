"""Append-only JSONL checkpoint journal for resumable campaigns.

Every finalized (probe, dns-name) pair — completed, degraded,
quarantined or lost — is appended as one JSON line together with the
credits it charged, so a resumed campaign can skip the pair *and*
restore the ledger spend without double-charging.

Writes go through the durable-storage layer
(:mod:`repro.faults.storage`): each line is CRC32-framed and pushed to
disk under the journal's :class:`~repro.faults.storage.StoragePolicy`,
so a flipped byte is detected on load instead of being parsed into a
wrong record.  Under the default ``fsync`` policy appends are
group-committed — flushed per record, fsynced every
``fsync_interval`` records and on close — bounding the data a power
loss can take to one trailing batch.  Legacy unframed journals remain
loadable.

A crash can tear the trailing line (partial write, possibly without the
terminating newline).  ``load`` detects the torn tail and drops it —
the pair simply re-runs on resume — and ``open_append`` truncates the
torn bytes before appending, so the next record starts on a clean line
instead of gluing onto the fragment and corrupting the *interior* of
the file.  Corruption before the tail (which a crash cannot produce on
an append-only log) raises :class:`JournalCorrupted`.
"""

from __future__ import annotations

import errno
import json
import os
from typing import IO, Dict, List, Optional, Tuple

from repro.faults.errors import CampaignInterrupted
from repro.faults.plan import FaultSite
from repro.faults.storage import (
    DURABILITY_FLUSH,
    DURABILITY_FSYNC,
    StoragePolicy,
    decode_line,
    durable_append,
    frame_line,
)

JOURNAL_SCHEMA = 1

KIND_HEADER = "header"
KIND_PAIR = "pair"


class JournalCorrupted(ValueError):
    """Unparseable journal content *before* the trailing line."""


def pair_key(record: Dict) -> Tuple[int, str]:
    """The (probe_id, dns_name) identity of a journaled pair."""
    return int(record["probe"]), str(record["name"])


class CheckpointJournal:
    """One campaign's checkpoint file.

    Subclasses may override ``record_kind`` (the ``kind`` tag stamped
    on appended records and selected by ``load``) and
    ``required_fields`` (keys every record must carry — a record
    missing one raises :class:`JournalCorrupted`); the defaults keep
    the original (probe, name) pair-journal behavior.
    """

    #: ``kind`` tag for data records (header records are always
    #: ``KIND_HEADER``).
    record_kind = KIND_PAIR
    #: Keys every data record must carry.
    required_fields = ("probe", "name")

    def __init__(self, path: str, storage: Optional[StoragePolicy] = None) -> None:
        self.path = path
        self.storage = storage or StoragePolicy()
        self._handle: Optional[IO[str]] = None
        #: Torn trailing lines dropped by the last ``load`` call.
        self.torn_lines = 0
        #: Byte offset just past the last intact line seen by ``load``;
        #: ``None`` until a load (or after an append) — ``open_append``
        #: truncates the file here to shed a torn tail.
        self._valid_bytes: Optional[int] = None
        #: Records appended through this instance (fault-key ordinal).
        self._appended = 0
        #: Appends since the last fsync (group commit under ``fsync``).
        self._unsynced = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Tuple[Optional[Dict], List[Dict]]:
        """Parse the journal into ``(header, pair records)``.

        Returns ``(None, [])`` when the file does not exist.  Torn
        trailing lines — unparseable, failing their CRC frame, or
        missing the terminating newline — are dropped (counted in
        ``torn_lines``); corrupt interior lines raise
        :class:`JournalCorrupted`.
        """
        self.torn_lines = 0
        self._valid_bytes = 0
        if not self.exists():
            return None, []
        with open(self.path, "rb") as handle:
            raw = handle.read()
        pieces = raw.split(b"\n")
        if pieces and pieces[-1] == b"":
            pieces.pop()
            final_terminated = True
        else:
            final_terminated = not pieces
        # (line number, parsed document or None, byte offset past the
        # line).  A document of None marks an unusable line; blank lines
        # parse to the {} sentinel and are skipped later.
        parsed: List[Tuple[int, Optional[Dict], int]] = []
        offset = 0
        for index, piece in enumerate(pieces):
            terminated = index < len(pieces) - 1 or final_terminated
            offset += len(piece) + (1 if terminated else 0)
            document: Optional[Dict]
            text = piece.decode("utf-8", errors="replace")
            if not text.strip():
                document = {}
            elif not terminated:
                # No newline: the write was torn mid-line.  Even if the
                # fragment happens to parse, it cannot be trusted.
                document = None
            else:
                payload, crc_ok = decode_line(text)
                if crc_ok is False:
                    document = None
                else:
                    try:
                        document = json.loads(payload)
                        if not isinstance(document, dict):
                            document = None
                    except json.JSONDecodeError:
                        document = None
            parsed.append((index + 1, document, offset))
        # Only a trailing run of unusable lines is crash-consistent.
        while parsed and parsed[-1][1] is None:
            parsed.pop()
            self.torn_lines += 1
        bad = [number for number, document, _ in parsed if document is None]
        if bad:
            raise JournalCorrupted(
                f"{self.path}: unparseable journal line(s) {bad} before the tail"
            )
        self._valid_bytes = parsed[-1][2] if parsed else 0
        header: Optional[Dict] = None
        records: List[Dict] = []
        for number, document, _ in parsed:
            assert document is not None
            kind = document.get("kind")
            if kind == KIND_HEADER:
                if header is None:
                    header = document
                continue
            if kind == self.record_kind:
                missing = [
                    name for name in self.required_fields if name not in document
                ]
                if missing:
                    raise JournalCorrupted(
                        f"{self.path}: line {number} lacks required "
                        f"key(s) {missing}"
                    )
                records.append(document)
        return header, records

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def open_append(self) -> None:
        if self._handle is not None:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._repair_tail()
        self._handle = open(self.path, "a", encoding="utf-8")

    def _repair_tail(self) -> None:
        """Truncate a torn trailing line before appending.

        Without this, the first append after a torn write glues onto
        the partial line, turning a recoverable torn *tail* into an
        interior corrupt line that poisons every future load.
        """
        if not self.exists():
            return
        if self._valid_bytes is None:
            self.load()
        assert self._valid_bytes is not None
        size = os.path.getsize(self.path)
        if self._valid_bytes >= size:
            return
        with open(self.path, "r+b") as handle:
            handle.truncate(self._valid_bytes)
            if self.storage.durability == DURABILITY_FSYNC:
                os.fsync(handle.fileno())

    def write_header(self, header: Dict) -> None:
        record = dict(header)
        record["kind"] = KIND_HEADER
        record["schema"] = JOURNAL_SCHEMA
        self._append_line(record)

    def append(self, record: Dict) -> None:
        line = dict(record)
        line["kind"] = self.record_kind
        self._append_line(line)

    def _append_line(self, record: Dict) -> None:
        if self._handle is None:
            self.open_append()
        assert self._handle is not None
        line = frame_line(json.dumps(record, sort_keys=True))
        ordinal = self._appended
        basename = os.path.basename(self.path)
        if self.storage.fires(FaultSite.STORAGE_ENOSPC, basename, ordinal):
            raise OSError(
                errno.ENOSPC, f"injected ENOSPC appending to {self.path}"
            )
        if self.storage.fires(FaultSite.STORAGE_TORN_APPEND, basename, ordinal):
            # A torn write: part of the line lands on disk, no newline,
            # and the process dies.  ``load``/``open_append`` on resume
            # must shed exactly this fragment.
            fragment = line[: max(1, len(line) // 2)]
            self._handle.write(fragment)
            self._handle.flush()
            self.close()
            self._valid_bytes = None
            raise CampaignInterrupted(
                f"injected torn append to {self.path} at record {ordinal}"
            )
        if self.storage.durability == DURABILITY_FSYNC:
            # Group commit: every append is flushed to the OS, but the
            # disk sync is amortized over ``fsync_interval`` records
            # (plus one on close).  A crash loses at most the trailing
            # unsynced batch, which loads as a clean shorter prefix and
            # simply re-runs on resume.
            durable_append(self._handle, line + "\n", DURABILITY_FLUSH)
            self._unsynced += 1
            if self._unsynced >= self.storage.fsync_interval:
                os.fsync(self._handle.fileno())
                self._unsynced = 0
        else:
            durable_append(self._handle, line + "\n", self.storage.durability)
        self._appended += 1
        self._valid_bytes = None

    def close(self) -> None:
        if self._handle is not None:
            if self._unsynced and self.storage.durability == DURABILITY_FSYNC:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._unsynced = 0
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        self.open_append()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
