"""Append-only JSONL checkpoint journal for resumable campaigns.

Every finalized (probe, dns-name) pair — completed, degraded,
quarantined or lost — is appended as one JSON line together with the
credits it charged, so a resumed campaign can skip the pair *and*
restore the ledger spend without double-charging.

A crash can tear the trailing line (partial write).  ``load`` detects
unparseable lines at the tail and drops them — the pair simply re-runs
on resume — while corruption in the middle of the file (which a crash
cannot produce on an append-only log) raises :class:`JournalCorrupted`.
"""

from __future__ import annotations

import json
import os
from typing import IO, Dict, List, Optional, Tuple

JOURNAL_SCHEMA = 1

KIND_HEADER = "header"
KIND_PAIR = "pair"


class JournalCorrupted(ValueError):
    """Unparseable journal content *before* the trailing line."""


def pair_key(record: Dict) -> Tuple[int, str]:
    """The (probe_id, dns_name) identity of a journaled pair."""
    return int(record["probe"]), str(record["name"])


class CheckpointJournal:
    """One campaign's checkpoint file.

    Subclasses may override ``record_kind`` (the ``kind`` tag stamped
    on appended records and selected by ``load``) and
    ``required_fields`` (keys every record must carry — a record
    missing one raises :class:`JournalCorrupted`); the defaults keep
    the original (probe, name) pair-journal behavior.
    """

    #: ``kind`` tag for data records (header records are always
    #: ``KIND_HEADER``).
    record_kind = KIND_PAIR
    #: Keys every data record must carry.
    required_fields = ("probe", "name")

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: Optional[IO[str]] = None
        #: Torn trailing lines dropped by the last ``load`` call.
        self.torn_lines = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> Tuple[Optional[Dict], List[Dict]]:
        """Parse the journal into ``(header, pair records)``.

        Returns ``(None, [])`` when the file does not exist.  Torn
        trailing lines are dropped (counted in ``torn_lines``); corrupt
        interior lines raise :class:`JournalCorrupted`.
        """
        self.torn_lines = 0
        if not self.exists():
            return None, []
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        parsed: List[Tuple[int, Optional[Dict]]] = []
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                document = json.loads(line)
                if not isinstance(document, dict):
                    document = None
            except json.JSONDecodeError:
                document = None
            parsed.append((number, document))
        # Only a trailing run of unparseable lines is crash-consistent.
        while parsed and parsed[-1][1] is None:
            parsed.pop()
            self.torn_lines += 1
        bad = [number for number, document in parsed if document is None]
        if bad:
            raise JournalCorrupted(
                f"{self.path}: unparseable journal line(s) {bad} before the tail"
            )
        header: Optional[Dict] = None
        records: List[Dict] = []
        for number, document in parsed:
            kind = document.get("kind")
            if kind == KIND_HEADER:
                if header is None:
                    header = document
                continue
            if kind == self.record_kind:
                missing = [
                    name for name in self.required_fields if name not in document
                ]
                if missing:
                    raise JournalCorrupted(
                        f"{self.path}: line {number} lacks required "
                        f"key(s) {missing}"
                    )
                records.append(document)
        return header, records

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def open_append(self) -> None:
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")

    def write_header(self, header: Dict) -> None:
        record = dict(header)
        record["kind"] = KIND_HEADER
        record["schema"] = JOURNAL_SCHEMA
        self._append_line(record)

    def append(self, record: Dict) -> None:
        line = dict(record)
        line["kind"] = self.record_kind
        self._append_line(line)

    def _append_line(self, record: Dict) -> None:
        if self._handle is None:
            self.open_append()
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        self.open_append()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
