"""Fault injection and resilience machinery.

The measurement substrate the paper runs on is lossy: probes go dark,
DNS fails, traceroutes truncate or loop, the Atlas API throttles, and
PEERING mux sessions reset.  This package provides the generic pieces
the campaign and analysis layers use to survive all of that:

* :class:`FaultPlan` — seeded, hash-keyed deterministic fault injection
  per substrate boundary (:class:`FaultSite`),
* :class:`RetryPolicy` / :class:`RetryStats` — seeded exponential
  backoff with full jitter on a virtual clock,
* :class:`CheckpointJournal` — append-only JSONL checkpointing with
  torn-tail recovery for resumable campaigns,
* :class:`RobustnessReport` — full where-did-every-measurement-go
  accounting, and
* the structured fault taxonomy in :mod:`repro.faults.errors`.

This package deliberately imports nothing from the measurement layers,
so any of them can depend on it without cycles.
"""

from repro.faults.errors import (
    ApiRateLimit,
    ApiServerError,
    AtlasApiError,
    CampaignInterrupted,
    DnsServfail,
    DnsTimeout,
    FaultError,
    MalformedResultError,
    MuxSessionReset,
    ProbeDownError,
    ProbeFlapError,
    RetryExhausted,
)
from repro.faults.journal import CheckpointJournal, JournalCorrupted, pair_key
from repro.faults.plan import FaultPlan, FaultSite, derive_seed
from repro.faults.report import RobustnessReport
from repro.faults.retry import RetryPolicy, RetryStats

__all__ = [
    "ApiRateLimit",
    "ApiServerError",
    "AtlasApiError",
    "CampaignInterrupted",
    "CheckpointJournal",
    "DnsServfail",
    "DnsTimeout",
    "FaultError",
    "FaultPlan",
    "FaultSite",
    "JournalCorrupted",
    "MalformedResultError",
    "MuxSessionReset",
    "ProbeDownError",
    "ProbeFlapError",
    "RetryExhausted",
    "RetryPolicy",
    "RetryStats",
    "RobustnessReport",
    "derive_seed",
    "pair_key",
]
