"""Fault injection and resilience machinery.

The measurement substrate the paper runs on is lossy: probes go dark,
DNS fails, traceroutes truncate or loop, the Atlas API throttles, and
PEERING mux sessions reset.  The control plane the active experiments
drive is lossy too: poisoned announcements get filtered, long paths get
rejected, route-flap damping suppresses updates, convergence stalls,
collector feeds gap, and withdrawals get lost.  This package provides
the generic pieces the campaign, experiment and analysis layers use to
survive all of that:

* :class:`FaultPlan` — seeded, hash-keyed deterministic fault injection
  per substrate boundary (:class:`FaultSite`),
* :class:`RetryPolicy` / :class:`RetryStats` — seeded exponential
  backoff with full jitter on a virtual clock,
* :class:`CircuitBreaker` / :class:`Watchdog` — supervision primitives
  that stop an active experiment from hammering a failing control
  plane (see :mod:`repro.faults.supervisor`),
* :class:`CheckpointJournal` — append-only JSONL checkpointing with
  torn-tail recovery for resumable campaigns,
* :class:`StoragePolicy` / :func:`durable_append` /
  :func:`atomic_replace` / :class:`RunLock` — the crash-consistent
  storage primitives every persistent artifact is written through
  (see :mod:`repro.faults.storage`),
* :class:`RunLedger` — one run directory unifying the passive, active
  and shard checkpoints behind ``repro study --run-dir`` (see
  :mod:`repro.faults.ledger`),
* :class:`SupervisedShardExecutor` / :class:`ShardJournal` —
  crash-tolerant process-pool fan-out with shard checkpointing and
  graceful degradation to serial execution (see
  :mod:`repro.faults.pool`),
* :class:`RobustnessReport` / :class:`ActiveRobustnessReport` — full
  where-did-every-measurement-go accounting for the passive campaign
  and the active experiments, and
* the structured fault taxonomy in :mod:`repro.faults.errors`.

This package deliberately imports nothing from the measurement layers,
so any of them can depend on it without cycles.
"""

from repro.faults.errors import (
    ApiRateLimit,
    ApiServerError,
    AtlasApiError,
    BreakerOpen,
    CampaignInterrupted,
    CollectorFeedGap,
    ConvergenceStall,
    DnsServfail,
    DnsTimeout,
    FaultError,
    LongPathRejected,
    MalformedResultError,
    MuxSessionReset,
    PoisonFiltered,
    PoolError,
    PoolResultCorrupt,
    PoolWorkerCrash,
    PoolWorkerHang,
    ProbeDownError,
    ProbeFlapError,
    RetryExhausted,
    RouteFlapDamped,
    ShardExecutionError,
    WatchdogExpired,
    WithdrawalLost,
)
from repro.faults.journal import CheckpointJournal, JournalCorrupted, pair_key
from repro.faults.ledger import RunLedger
from repro.faults.plan import FaultPlan, FaultSite, derive_seed
from repro.faults.pool import (
    Shard,
    ShardExecutionReport,
    ShardJournal,
    SupervisedShardExecutor,
)
from repro.faults.report import ActiveRobustnessReport, RobustnessReport
from repro.faults.retry import RetryPolicy, RetryStats
from repro.faults.storage import (
    LockHeldError,
    RunLock,
    StoragePolicy,
    atomic_replace,
    durable_append,
    write_text_atomic,
)
from repro.faults.supervisor import BreakerStats, CircuitBreaker, Watchdog

__all__ = [
    "ActiveRobustnessReport",
    "ApiRateLimit",
    "ApiServerError",
    "AtlasApiError",
    "BreakerOpen",
    "BreakerStats",
    "CampaignInterrupted",
    "CheckpointJournal",
    "CircuitBreaker",
    "CollectorFeedGap",
    "ConvergenceStall",
    "DnsServfail",
    "DnsTimeout",
    "FaultError",
    "FaultPlan",
    "FaultSite",
    "JournalCorrupted",
    "LockHeldError",
    "LongPathRejected",
    "MalformedResultError",
    "MuxSessionReset",
    "PoisonFiltered",
    "PoolError",
    "PoolResultCorrupt",
    "PoolWorkerCrash",
    "PoolWorkerHang",
    "ProbeDownError",
    "ProbeFlapError",
    "RetryExhausted",
    "RetryPolicy",
    "RetryStats",
    "RobustnessReport",
    "RouteFlapDamped",
    "RunLedger",
    "RunLock",
    "Shard",
    "ShardExecutionError",
    "ShardExecutionReport",
    "ShardJournal",
    "StoragePolicy",
    "SupervisedShardExecutor",
    "Watchdog",
    "WatchdogExpired",
    "WithdrawalLost",
    "atomic_replace",
    "derive_seed",
    "durable_append",
    "pair_key",
    "write_text_atomic",
]
