"""Fault injection and resilience machinery.

The measurement substrate the paper runs on is lossy: probes go dark,
DNS fails, traceroutes truncate or loop, the Atlas API throttles, and
PEERING mux sessions reset.  The control plane the active experiments
drive is lossy too: poisoned announcements get filtered, long paths get
rejected, route-flap damping suppresses updates, convergence stalls,
collector feeds gap, and withdrawals get lost.  This package provides
the generic pieces the campaign, experiment and analysis layers use to
survive all of that:

* :class:`FaultPlan` — seeded, hash-keyed deterministic fault injection
  per substrate boundary (:class:`FaultSite`),
* :class:`RetryPolicy` / :class:`RetryStats` — seeded exponential
  backoff with full jitter on a virtual clock,
* :class:`CircuitBreaker` / :class:`Watchdog` — supervision primitives
  that stop an active experiment from hammering a failing control
  plane (see :mod:`repro.faults.supervisor`),
* :class:`CheckpointJournal` — append-only JSONL checkpointing with
  torn-tail recovery for resumable campaigns,
* :class:`SupervisedShardExecutor` / :class:`ShardJournal` —
  crash-tolerant process-pool fan-out with shard checkpointing and
  graceful degradation to serial execution (see
  :mod:`repro.faults.pool`),
* :class:`RobustnessReport` / :class:`ActiveRobustnessReport` — full
  where-did-every-measurement-go accounting for the passive campaign
  and the active experiments, and
* the structured fault taxonomy in :mod:`repro.faults.errors`.

This package deliberately imports nothing from the measurement layers,
so any of them can depend on it without cycles.
"""

from repro.faults.errors import (
    ApiRateLimit,
    ApiServerError,
    AtlasApiError,
    BreakerOpen,
    CampaignInterrupted,
    CollectorFeedGap,
    ConvergenceStall,
    DnsServfail,
    DnsTimeout,
    FaultError,
    LongPathRejected,
    MalformedResultError,
    MuxSessionReset,
    PoisonFiltered,
    PoolError,
    PoolResultCorrupt,
    PoolWorkerCrash,
    PoolWorkerHang,
    ProbeDownError,
    ProbeFlapError,
    RetryExhausted,
    RouteFlapDamped,
    ShardExecutionError,
    WatchdogExpired,
    WithdrawalLost,
)
from repro.faults.journal import CheckpointJournal, JournalCorrupted, pair_key
from repro.faults.plan import FaultPlan, FaultSite, derive_seed
from repro.faults.pool import (
    Shard,
    ShardExecutionReport,
    ShardJournal,
    SupervisedShardExecutor,
)
from repro.faults.report import ActiveRobustnessReport, RobustnessReport
from repro.faults.retry import RetryPolicy, RetryStats
from repro.faults.supervisor import BreakerStats, CircuitBreaker, Watchdog

__all__ = [
    "ActiveRobustnessReport",
    "ApiRateLimit",
    "ApiServerError",
    "AtlasApiError",
    "BreakerOpen",
    "BreakerStats",
    "CampaignInterrupted",
    "CheckpointJournal",
    "CircuitBreaker",
    "CollectorFeedGap",
    "ConvergenceStall",
    "DnsServfail",
    "DnsTimeout",
    "FaultError",
    "FaultPlan",
    "FaultSite",
    "JournalCorrupted",
    "LongPathRejected",
    "MalformedResultError",
    "MuxSessionReset",
    "PoisonFiltered",
    "PoolError",
    "PoolResultCorrupt",
    "PoolWorkerCrash",
    "PoolWorkerHang",
    "ProbeDownError",
    "ProbeFlapError",
    "RetryExhausted",
    "RetryPolicy",
    "RetryStats",
    "RobustnessReport",
    "RouteFlapDamped",
    "Shard",
    "ShardExecutionError",
    "ShardExecutionReport",
    "ShardJournal",
    "SupervisedShardExecutor",
    "Watchdog",
    "WatchdogExpired",
    "WithdrawalLost",
    "derive_seed",
    "pair_key",
]
