"""Synthetic Internet generation.

The paper measures the real Internet; offline we cannot.  This
subpackage builds a synthetic Internet with the structural features the
paper's analysis keys on — a tier-1 clique, regional transit
hierarchies, a rich edge peering mesh, content providers with off-net
caches, sibling organizations, hybrid and partial-transit
relationships, prefix-specific export policies, domestic-path
preferences, and undersea-cable ASes — plus an inference-error model
that derives CAIDA-like *inferred* relationship snapshots from the
ground truth, mirroring the real pipeline's blind spots.
"""

from repro.topogen.geography import City, Country, World, build_world
from repro.topogen.config import TopologyConfig
from repro.topogen.internet import Internet, Interconnect, ContentProvider, Replica
from repro.topogen.generator import generate_internet
from repro.topogen.inference import InferenceConfig, infer_topology, inferred_snapshots
from repro.topogen.serialization import (
    internet_from_dict,
    internet_to_dict,
    load_internet,
    save_internet,
)

__all__ = [
    "City",
    "Country",
    "World",
    "build_world",
    "TopologyConfig",
    "Internet",
    "Interconnect",
    "ContentProvider",
    "Replica",
    "generate_internet",
    "InferenceConfig",
    "infer_topology",
    "inferred_snapshots",
    "internet_from_dict",
    "internet_to_dict",
    "load_internet",
    "save_internet",
]
