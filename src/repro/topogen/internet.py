"""The synthetic Internet container.

:class:`Internet` holds everything the measurement and analysis layers
need: the ground-truth AS graph and policies, prefix originations,
router-level detail (interconnect subnets and router addresses),
geolocation ground truth, the whois registry, content-provider
deployments, cable and complex-relationship ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bgp.policy import Policy
from repro.net.ip import IPAddress, Prefix
from repro.net.trie import PrefixTrie
from repro.topogen.geography import City, World
from repro.topology.cables import CableRegistry
from repro.topology.complex_rel import ComplexRelationships
from repro.topology.graph import ASGraph
from repro.whois.registry import WhoisRegistry
from repro.whois.soa import SOADatabase


@dataclass(frozen=True)
class Interconnect:
    """Router-level detail of one inter-AS adjacency.

    The /30 ``subnet`` is carved from ``owner``'s address space (usually
    the provider side), which reproduces the classic traceroute
    artifact: the ingress interface of the *other* AS answers from an
    address that IP-to-AS maps to ``owner``.
    """

    a: int
    b: int
    city: City
    subnet: Prefix
    ip_a: IPAddress
    ip_b: IPAddress
    owner: int

    def ip_of(self, asn: int) -> IPAddress:
        if asn == self.a:
            return self.ip_a
        if asn == self.b:
            return self.ip_b
        raise ValueError(f"AS{asn} is not an endpoint of this interconnect")


@dataclass(frozen=True)
class Replica:
    """One content replica: a serving address inside some AS."""

    ip: IPAddress
    asn: int
    city: City


@dataclass
class ContentProvider:
    """A content provider with DNS names resolving to replicas.

    Off-net replicas (CDN caches inside eyeball ISPs) have ``asn`` set
    to the hosting ISP, which is why the paper's 34 DNS names resolve
    into hundreds of distinct destination ASes.
    """

    name: str
    asns: Tuple[int, ...]
    dns_names: Tuple[str, ...]
    replicas: Dict[str, List[Replica]] = field(default_factory=dict)

    def all_replicas(self) -> List[Replica]:
        return [replica for group in self.replicas.values() for replica in group]


@dataclass
class Internet:
    """Ground truth for one generated Internet."""

    world: World
    graph: ASGraph
    policies: Dict[int, Policy]
    #: Prefixes originated by each AS; index 0 is the infrastructure
    #: prefix that numbers routers and interconnects.
    prefixes: Dict[int, List[Prefix]]
    #: Keyed (min ASN, max ASN).
    interconnects: Dict[Tuple[int, int], Interconnect]
    #: Loopback address per (ASN, city name).
    router_ips: Dict[Tuple[int, str], IPAddress]
    #: Ground-truth location of every infrastructure/host address.
    ip_locations: Dict[int, City]
    whois: WhoisRegistry
    soa: SOADatabase
    #: Ground-truth organization map: org id -> member ASNs.
    orgs: Dict[str, List[int]]
    cables: CableRegistry
    complex_truth: ComplexRelationships
    content: List[ContentProvider]
    #: ASes that plausibly host measurement probes (eyeballs).
    eyeball_asns: List[int]
    home_city: Dict[int, City]
    #: Cities where each AS operates routers.
    presence_cities: Dict[int, List[City]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Derived lookups
    # ------------------------------------------------------------------
    def origin_trie(self) -> PrefixTrie:
        """LPM trie mapping every originated prefix to its origin ASN."""
        trie: PrefixTrie = PrefixTrie()
        for asn, prefixes in self.prefixes.items():
            for prefix in prefixes:
                trie.insert(prefix, asn)
        return trie

    def interconnect(self, a: int, b: int) -> Optional[Interconnect]:
        return self.interconnects.get((min(a, b), max(a, b)))

    def country_of(self, asn: int) -> Optional[str]:
        """Whois registration country (what the analysis sees)."""
        return self.whois.country_of(asn)

    def continent_of(self, asn: int) -> Optional[str]:
        city = self.home_city.get(asn)
        return None if city is None else city.continent

    def location_of_ip(self, ip: IPAddress) -> Optional[City]:
        return self.ip_locations.get(ip.value)

    def all_asns(self) -> List[int]:
        return sorted(self.graph.asns())

    def content_asns(self) -> List[int]:
        return sorted({asn for provider in self.content for asn in provider.asns})
