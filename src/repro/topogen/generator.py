"""Builds a complete synthetic Internet.

The generator proceeds in layers: AS populations (tier-1 clique,
regional large ISPs, national small ISPs, stubs, content providers,
undersea-cable operators, sibling organizations), relationship wiring,
whois/SOA records, address allocation, router-level interconnect
detail, per-AS policies with injected deviations, and content replica
deployment.  Everything is driven by one :class:`random.Random` seeded
by the caller, so a given ``(config, seed)`` always yields the same
Internet.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.policy import Policy
from repro.net.ip import IPAddress, Prefix, PrefixAllocator
from repro.topogen.config import TopologyConfig
from repro.topogen.geography import City, World, build_world, distance_km
from repro.topogen.internet import ContentProvider, Interconnect, Internet, Replica
from repro.topology.asys import AS, ASRole
from repro.topology.cables import Cable, CableRegistry
from repro.topology.complex_rel import (
    ComplexRelationships,
    HybridEntry,
    PartialTransitEntry,
)
from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship
from repro.whois.registry import WhoisRecord, WhoisRegistry
from repro.whois.soa import SOADatabase

#: Address pool carved into per-AS prefixes.
_AS_POOL = Prefix.parse("16.0.0.0/6")

#: Continent pairs separated by ocean, eligible for undersea cables.
_OCEAN_PAIRS = [
    ("NA", "EU"),
    ("NA", "AS"),
    ("NA", "SA"),
    ("EU", "AS"),
    ("EU", "AF"),
    ("EU", "SA"),
    ("AS", "OC"),
    ("AF", "AS"),
]

_CONTENT_NAMES = [
    ("AcmeCDN", "cdn", 3),
    ("StreamFlix", "content", 2),
    ("VidTube", "content", 2),
    ("SocialGraph", "content", 2),
    ("CloudFront9", "cdn", 3),
    ("GameHub", "content", 1),
    ("NewsWire", "content", 1),
    ("PhotoShare", "content", 2),
    ("MusicCast", "content", 2),
    ("EdgeCast7", "cdn", 3),
    ("SearchCo", "content", 2),
    ("MarketPlace", "content", 1),
    ("FileLocker", "content", 1),
    ("LiveMeet", "content", 2),
]


class _Builder:
    """Internal mutable state while generating one Internet."""

    def __init__(self, config: TopologyConfig, seed: int) -> None:
        config.validate()
        self.config = config
        self.rng = random.Random(seed)
        self.world = build_world()
        self.graph = ASGraph()
        self.next_asn = 100
        self.prefixes: Dict[int, List[Prefix]] = {}
        self.pool = PrefixAllocator(_AS_POOL)
        self.infra_allocators: Dict[int, PrefixAllocator] = {}
        self.home_city: Dict[int, City] = {}
        self.presence_cities: Dict[int, List[City]] = {}
        self.interconnects: Dict[Tuple[int, int], Interconnect] = {}
        self.router_ips: Dict[Tuple[int, str], IPAddress] = {}
        self.ip_locations: Dict[int, City] = {}
        self.whois = WhoisRegistry()
        self.soa = SOADatabase()
        self.orgs: Dict[str, List[int]] = {}
        self.cables = CableRegistry()
        self.complex_truth = ComplexRelationships()
        self.policies: Dict[int, Policy] = {}
        self.content: List[ContentProvider] = []
        # Population bookkeeping.
        self.tier1s: List[int] = []
        self.large_isps: List[int] = []
        self.small_isps: List[int] = []
        self.stubs: List[int] = []
        self.cable_asns: List[int] = []
        self.content_asns: List[int] = []

    # ------------------------------------------------------------------
    # AS creation helpers
    # ------------------------------------------------------------------
    def _new_asn(self) -> int:
        asn = self.next_asn
        self.next_asn += 1
        return asn

    def _pick_cities(self, countries: Sequence[str], per_country: int) -> List[City]:
        cities: List[City] = []
        for code in countries:
            available = list(self.world.cities_in_country(code))
            self.rng.shuffle(available)
            cities.extend(available[:per_country])
        return cities

    def _create_as(
        self,
        name: str,
        org_id: str,
        countries: Sequence[str],
        role: ASRole,
        cities_per_country: int = 1,
    ) -> int:
        asn = self._new_asn()
        home_country = countries[0]
        cities = self._pick_cities(countries, cities_per_country)
        if not cities:
            raise ValueError(f"no cities available in {countries}")
        self.graph.add_as(
            AS(
                asn=asn,
                name=name,
                org_id=org_id,
                country=home_country,
                presence=frozenset(countries),
                role=role,
                continent=self.world.continent_of(home_country),
            )
        )
        self.home_city[asn] = cities[0]
        self.presence_cities[asn] = cities
        self.orgs.setdefault(org_id, []).append(asn)
        return asn

    def _register_whois(self, asn: int, org_name: str, domain: str) -> None:
        asys = self.graph.get_as(asn)
        self.whois.add(
            WhoisRecord(
                asn=asn,
                org_name=org_name,
                org_id=asys.org_id,
                email=f"noc@{domain}",
                phone=f"+{asn}",
                country=asys.country,
            )
        )

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def build_populations(self) -> None:
        self._build_tier1s()
        self._build_large_isps()
        self._build_small_isps()
        self._build_stubs()
        self._build_content_providers()
        self._build_cable_ases()

    def _build_tier1s(self) -> None:
        continents = ["NA", "EU", "AS", "SA", "AF", "OC"]
        for index in range(self.config.num_tier1):
            home = continents[index % 3]  # tier-1s concentrate in NA/EU/AS
            spread = self.rng.sample(continents, k=self.rng.randint(3, 5))
            if home not in spread:
                spread[0] = home
            countries = []
            for continent in [home] + [c for c in spread if c != home]:
                options = self.world.countries_in(continent)
                countries.append(self.rng.choice(options).code)
            asn = self._create_as(
                name=f"Tier1-{index}",
                org_id=f"ORG-T1-{index}",
                countries=countries,
                role=ASRole.TRANSIT,
                cities_per_country=2,
            )
            self.tier1s.append(asn)
            self._register_whois(asn, f"Tier1 Backbone {index}", f"tier1-{index}.example")

    def _build_large_isps(self) -> None:
        continents = ["NA", "EU", "AS", "SA", "AF", "OC"]
        org_index = 0
        built = 0
        while built < self.config.num_large_isps:
            continent = continents[built % len(continents)]
            options = self.world.countries_in(continent)
            num_countries = self.rng.randint(1, min(3, len(options)))
            countries = [c.code for c in self.rng.sample(options, k=num_countries)]
            # A minority are multinational across continents.
            if self.rng.random() < 0.15:
                other = self.rng.choice([c for c in continents if c != continent])
                countries.append(self.rng.choice(self.world.countries_in(other)).code)
            org_id = f"ORG-L-{org_index}"
            org_index += 1
            is_sibling_org = (
                self.rng.random() < self.config.sibling_org_rate
                and len(countries) >= 2
            )
            domain = f"large-{org_index}.example"
            public_email = self.rng.random() < self.config.sibling_public_email_rate
            if is_sibling_org:
                members = min(
                    self.rng.randint(2, self.config.max_siblings_per_org),
                    len(countries),
                )
                member_asns = []
                for member in range(members):
                    member_countries = countries[member::members]
                    asn = self._create_as(
                        name=f"LargeISP-{org_index}-{member}",
                        org_id=org_id,
                        countries=member_countries,
                        role=ASRole.TRANSIT,
                        cities_per_country=2,
                    )
                    member_asns.append(asn)
                    email_domain = "hotmail.com" if public_email else domain
                    self._register_whois(asn, f"Large ISP {org_index}", email_domain)
                    self.large_isps.append(asn)
                    built += 1
                # Sibling full mesh.
                for i, a in enumerate(member_asns):
                    for b in member_asns[i + 1:]:
                        self.graph.add_link(a, b, Relationship.SIBLING)
            else:
                asn = self._create_as(
                    name=f"LargeISP-{org_index}",
                    org_id=org_id,
                    countries=countries,
                    role=ASRole.TRANSIT,
                    cities_per_country=2,
                )
                email_domain = "hotmail.com" if public_email else domain
                self._register_whois(asn, f"Large ISP {org_index}", email_domain)
                self.large_isps.append(asn)
                built += 1

    def _build_small_isps(self) -> None:
        all_countries = list(self.world.countries.values())
        for index in range(self.config.num_small_isps):
            country = all_countries[index % len(all_countries)]
            asn = self._create_as(
                name=f"SmallISP-{index}",
                org_id=f"ORG-S-{index}",
                countries=[country.code],
                role=ASRole.TRANSIT,
                cities_per_country=2,
            )
            self.small_isps.append(asn)
            self._register_whois(asn, f"Small ISP {index}", f"small-{index}.example")

    def _build_stubs(self) -> None:
        all_countries = list(self.world.countries.values())
        weights = [3 if c.continent in ("NA", "EU") else 1 for c in all_countries]
        for index in range(self.config.num_stubs):
            country = self.rng.choices(all_countries, weights=weights, k=1)[0]
            role = ASRole.EYEBALL if self.rng.random() < 0.7 else ASRole.EDUCATION
            asn = self._create_as(
                name=f"Stub-{index}",
                org_id=f"ORG-E-{index}",
                countries=[country.code],
                role=role,
                cities_per_country=1,
            )
            self.stubs.append(asn)
            self._register_whois(asn, f"Edge Network {index}", f"stub-{index}.example")

    def _build_content_providers(self) -> None:
        for index in range(self.config.num_content_providers):
            name, kind, num_dns = _CONTENT_NAMES[index % len(_CONTENT_NAMES)]
            role = ASRole.CDN if kind == "cdn" else ASRole.CONTENT
            # Content providers are US/EU based, multinational presence.
            home = self.rng.choice(["US", "US", "NL", "DE", "GB"])
            extra = [
                self.rng.choice(self.world.countries_in(cont)).code
                for cont in self.rng.sample(["EU", "AS", "SA", "NA"], k=2)
            ]
            org_id = f"ORG-C-{index}"
            num_asns = 2 if (role is ASRole.CDN and self.rng.random() < 0.5) else 1
            asns = []
            domain = f"{name.lower()}.example"
            for member in range(num_asns):
                asn = self._create_as(
                    name=f"{name}-{member}" if num_asns > 1 else name,
                    org_id=org_id,
                    countries=[home] + extra,
                    role=role,
                    cities_per_country=2,
                )
                asns.append(asn)
                vanity = domain if member == 0 else f"{name.lower()}-net{member}.example"
                if vanity != domain:
                    self.soa.add(vanity, domain)
                self._register_whois(asn, name, vanity)
                self.content_asns.append(asn)
            for i, a in enumerate(asns):
                for b in asns[i + 1:]:
                    self.graph.add_link(a, b, Relationship.SIBLING)
            dns_names = tuple(
                f"{label}{i}.{name.lower()}.example"
                for i, label in zip(range(num_dns), ["www", "media", "edge", "api"])
            )
            self.content.append(
                ContentProvider(name=name, asns=tuple(asns), dns_names=dns_names)
            )

    def _build_cable_ases(self) -> None:
        for index in range(self.config.num_cable_ases):
            pair = _OCEAN_PAIRS[index % len(_OCEAN_PAIRS)]
            country_a = self.rng.choice(self.world.countries_in(pair[0])).code
            country_b = self.rng.choice(self.world.countries_in(pair[1])).code
            asn = self._create_as(
                name=f"Cable-{index}",
                org_id=f"ORG-CBL-{index}",
                countries=[country_a, country_b],
                role=ASRole.CABLE,
                cities_per_country=1,
            )
            self.cable_asns.append(asn)
            self._register_whois(asn, f"Submarine Cable {index}", f"cable-{index}.example")
            self.cables.add(
                Cable(
                    name=f"CABLE-{index}",
                    landing_countries=frozenset({country_a, country_b}),
                    operator_asn=asn,
                )
            )
        # Consortium cables without their own ASN, for registry realism.
        for index in range(2):
            pair = _OCEAN_PAIRS[(index + 3) % len(_OCEAN_PAIRS)]
            self.cables.add(
                Cable(
                    name=f"CONSORTIUM-{index}",
                    landing_countries=frozenset(
                        {
                            self.rng.choice(self.world.countries_in(pair[0])).code,
                            self.rng.choice(self.world.countries_in(pair[1])).code,
                        }
                    ),
                    owners=frozenset({"Tier1 Backbone 0", "Tier1 Backbone 1"}),
                )
            )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _continent_of(self, asn: int) -> str:
        return self.home_city[asn].continent

    def _country_of(self, asn: int) -> str:
        return self.home_city[asn].country

    def _sample_providers(
        self, candidates: List[int], count: int, same_country: str = "",
        same_continent: str = "",
    ) -> List[int]:
        """Pick up to ``count`` distinct providers, local ones preferred."""
        local = [a for a in candidates if same_country and self._country_of(a) == same_country]
        regional = [
            a
            for a in candidates
            if same_continent and self._continent_of(a) == same_continent
        ]
        picked: List[int] = []
        for group in (local, regional, candidates):
            remaining = [a for a in group if a not in picked]
            self.rng.shuffle(remaining)
            for asn in remaining:
                if len(picked) >= count:
                    return picked
                picked.append(asn)
        return picked

    def wire_relationships(self) -> None:
        rng, config = self.rng, self.config
        # Tier-1 clique.
        for i, a in enumerate(self.tier1s):
            for b in self.tier1s[i + 1:]:
                self.graph.add_link(a, b, Relationship.PEER)
        # Large ISPs buy from tier-1s and peer regionally.
        for asn in self.large_isps:
            count = rng.randint(1, config.max_providers_large)
            providers = self._sample_providers(
                self.tier1s, count, same_continent=self._continent_of(asn)
            )
            for provider in providers:
                if not self.graph.has_link(provider, asn):
                    self.graph.add_link(provider, asn, Relationship.CUSTOMER)
        for i, a in enumerate(self.large_isps):
            for b in self.large_isps[i + 1:]:
                if self.graph.has_link(a, b):
                    continue
                if self._continent_of(a) == self._continent_of(b):
                    if rng.random() < config.peer_prob_large:
                        self.graph.add_link(a, b, Relationship.PEER)
        # Small ISPs buy from large ISPs, peer at the edge.  A large
        # minority buy from foreign regional hubs (the
        # Frankfurt/Amsterdam pattern), giving the model cross-border
        # shortcuts that domestic-preferring ASes then avoid (Table 3).
        for asn in self.small_isps:
            count = rng.randint(1, config.max_providers_small)
            hub_seeking = rng.random() < 0.4
            providers = self._sample_providers(
                self.large_isps,
                count,
                same_country="" if hub_seeking else self._country_of(asn),
                same_continent=self._continent_of(asn),
            )
            for provider in providers:
                if not self.graph.has_link(provider, asn):
                    self.graph.add_link(provider, asn, Relationship.CUSTOMER)
        for i, a in enumerate(self.small_isps):
            for b in self.small_isps[i + 1:]:
                if self.graph.has_link(a, b):
                    continue
                if self._country_of(a) == self._country_of(b):
                    if rng.random() < config.peer_prob_small_domestic:
                        self.graph.add_link(a, b, Relationship.PEER)
                elif self._continent_of(a) == self._continent_of(b):
                    if rng.random() < config.peer_prob_small_continent:
                        self.graph.add_link(a, b, Relationship.PEER)
        # Stubs buy from small (sometimes large) ISPs in-country.
        for asn in self.stubs:
            count = rng.randint(1, config.max_providers_stub)
            pool = self.small_isps if rng.random() < 0.85 else self.large_isps
            providers = self._sample_providers(
                pool,
                count,
                same_country=self._country_of(asn),
                same_continent=self._continent_of(asn),
            )
            for provider in providers:
                if not self.graph.has_link(provider, asn):
                    self.graph.add_link(provider, asn, Relationship.CUSTOMER)
        for i, a in enumerate(self.stubs):
            for b in self.stubs[i + 1:]:
                if self._country_of(a) == self._country_of(b):
                    if rng.random() < config.peer_prob_stub:
                        if not self.graph.has_link(a, b):
                            self.graph.add_link(a, b, Relationship.PEER)
        # Content providers multihome to tier-1s/large ISPs and peer widely.
        for asn in self.content_asns:
            upstream_pool = self.tier1s + self.large_isps
            providers = self._sample_providers(
                upstream_pool, config.content_transit_providers
            )
            for provider in providers:
                if not self.graph.has_link(provider, asn):
                    self.graph.add_link(provider, asn, Relationship.CUSTOMER)
            for isp in self.large_isps:
                if self.graph.has_link(asn, isp):
                    continue
                if rng.random() < config.content_peering_prob:
                    self.graph.add_link(asn, isp, Relationship.PEER)
        # Cable ASes provide point-to-point transit between landing ISPs.
        # Landing ISPs usually prefer the cable over their terrestrial
        # providers (it is the physical shortcut), which we express
        # later as a local-pref override between the provider and peer
        # bands.
        self._cable_customers: List[Tuple[int, int]] = []
        for asn in self.cable_asns:
            asys = self.graph.get_as(asn)
            for country in sorted(asys.presence):
                landed = [
                    isp
                    for isp in self.large_isps + self.small_isps
                    if self._country_of(isp) == country
                ]
                self.rng.shuffle(landed)
                for isp in landed[:4]:
                    if not self.graph.has_link(asn, isp):
                        self.graph.add_link(asn, isp, Relationship.CUSTOMER)
                        self._cable_customers.append((asn, isp))

    # ------------------------------------------------------------------
    # Addressing and router-level detail
    # ------------------------------------------------------------------
    def allocate_addresses(self) -> None:
        for asn in sorted(self.graph.asns()):
            infra = self.pool.allocate(22)
            self.infra_allocators[asn] = PrefixAllocator(infra)
            # Reserve the first /24 of infra space for router loopbacks.
            loopbacks = self.infra_allocators[asn].allocate(24)
            prefixes = [infra]
            role = self.graph.get_as(asn).role
            if role in (ASRole.CONTENT, ASRole.CDN):
                extra = self.rng.randint(2, self.config.max_prefixes_per_origin)
            elif role is ASRole.CABLE:
                extra = 0
            elif asn in self.stubs:
                extra = self.rng.randint(1, 2)
            else:
                extra = self.rng.randint(1, self.config.max_prefixes_per_origin - 1)
            for _ in range(extra):
                prefixes.append(self.pool.allocate(20))
            self.prefixes[asn] = prefixes
            # One router per presence city, numbered from the loopback /24.
            for offset, city in enumerate(self.presence_cities[asn]):
                ip = loopbacks.address_at(offset + 1)
                self.router_ips[(asn, city.name)] = ip
                self.ip_locations[ip.value] = city

    def _interconnect_city(self, a: int, b: int, owner: int) -> City:
        cities_a = self.presence_cities[a]
        cities_b = self.presence_cities[b]
        names_b = {city.name for city in cities_b}
        shared = [city for city in cities_a if city.name in names_b]
        if shared:
            return self.rng.choice(shared)
        countries_b = {city.country for city in cities_b}
        same_country = [city for city in cities_a if city.country in countries_b]
        if same_country:
            return self.rng.choice(same_country)
        return self.home_city[owner]

    def build_interconnects(self) -> None:
        for a, b, rel in self.graph.links():
            # Provider side owns the interconnect addressing; for
            # symmetric links the lower ASN does.
            owner = a if rel is Relationship.CUSTOMER else min(a, b)
            city = self._interconnect_city(a, b, owner)
            subnet = self.infra_allocators[owner].allocate(30)
            ip_owner = subnet.address_at(1)
            ip_other = subnet.address_at(2)
            key = (min(a, b), max(a, b))
            if key[0] == owner:
                ip_low, ip_high = ip_owner, ip_other
            else:
                ip_low, ip_high = ip_other, ip_owner
            self.interconnects[key] = Interconnect(
                a=key[0],
                b=key[1],
                city=city,
                subnet=subnet,
                ip_a=ip_low,
                ip_b=ip_high,
                owner=owner,
            )
            self.ip_locations[ip_owner.value] = city
            self.ip_locations[ip_other.value] = city
            # Ensure both sides have a router in the interconnect city.
            for asn in (a, b):
                if (asn, city.name) not in self.router_ips:
                    ip = self.infra_allocators[asn].allocate(32).first_address()
                    self.router_ips[(asn, city.name)] = ip
                    self.ip_locations[ip.value] = city

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------
    def build_policies(self) -> None:
        rng, config = self.rng, self.config
        for asn in sorted(self.graph.asns()):
            policy = Policy(asn=asn)
            home = self.home_city[asn]
            for neighbor in self.graph.neighbors(asn):
                interconnect = self.interconnects.get(
                    (min(asn, neighbor), max(asn, neighbor))
                )
                if interconnect is None:
                    continue
                cost = int(distance_km(home, interconnect.city) / 50)
                policy.igp_cost[neighbor] = cost + rng.randint(0, 3)
            if rng.random() < config.domestic_preference_rate:
                policy.prefers_domestic = True
                policy.home_country = self._country_of(asn)
            if rng.random() < config.poison_filter_rate:
                policy.filters_poisoned = True
            if rng.random() < config.loop_prevention_disabled_rate:
                policy.loop_prevention_disabled = True
            self.policies[asn] = policy
        self._inject_backup_links()
        self._inject_nongr_preferences()
        self._inject_partial_transit()
        self._inject_hybrid_relationships()
        self._inject_cable_preferences()

    def _inject_cable_preferences(self) -> None:
        """Landing ISPs prefer their cable over terrestrial providers.

        Local-pref 150 sits between the provider (100) and peer (200)
        bands: the cable wins against other providers without upsetting
        the customer>peer>provider ordering, so convergence stays safe.
        """
        for cable, isp in getattr(self, "_cable_customers", []):
            if self.rng.random() < 0.7:
                # Above the peer band: the cable beats terrestrial peer
                # and provider routes for trans-oceanic destinations.
                # Customer routes still win, so convergence stays safe.
                self.policies[isp].neighbor_local_pref[cable] = 250

    def _inject_backup_links(self) -> None:
        for asn in self.stubs + self.small_isps:
            providers = self.graph.providers(asn)
            if len(providers) >= 2 and self.rng.random() < self.config.backup_link_rate:
                backup = self.rng.choice(providers)
                self.policies[asn].neighbor_local_pref[backup] = 50

    def _inject_nongr_preferences(self) -> None:
        for asn in self.large_isps + self.small_isps:
            if self.rng.random() >= self.config.nongr_local_pref_rate:
                continue
            peers = self.graph.peers(asn)
            providers = self.graph.providers(asn)
            if peers and self.rng.random() < 0.6:
                # Prefer one peer over customer routes (e.g. better
                # performance or paid peering).
                self.policies[asn].neighbor_local_pref[self.rng.choice(peers)] = 350
            elif providers:
                # Prefer one provider over peers (e.g. a backup
                # arrangement inverted by traffic engineering).
                self.policies[asn].neighbor_local_pref[self.rng.choice(providers)] = 250

    def _inject_partial_transit(self) -> None:
        candidates = [
            (provider, customer, rel)
            for provider, customer, rel in self.graph.links()
            if rel is Relationship.CUSTOMER
            and provider in set(self.large_isps + self.small_isps)
        ]
        for provider, customer, _rel in candidates:
            if self.rng.random() < self.config.partial_transit_rate:
                self.policies[provider].partial_transit_to.add(customer)
                self.complex_truth.add_partial_transit(
                    PartialTransitEntry(provider=provider, customer=customer)
                )

    def _inject_hybrid_relationships(self) -> None:
        """Pick peer links whose relationship differs by city.

        The routed (ground truth) relationship at the interconnect city
        is PEER while the other city behaves as customer-provider; the
        inference layer will pick up the wrong one for these pairs.
        """
        peer_links = [
            (a, b)
            for a, b, rel in self.graph.links()
            if rel is Relationship.PEER
            and a in set(self.large_isps)
            and b in set(self.large_isps)
        ]
        for a, b in peer_links:
            if self.rng.random() >= self.config.hybrid_rate:
                continue
            interconnect = self.interconnects[(min(a, b), max(a, b))]
            routed_city = interconnect.city.name
            other_cities = [
                city.name
                for city in self.presence_cities[a]
                if city.name != routed_city
            ]
            if not other_cities:
                continue
            other_city = self.rng.choice(other_cities)
            self.complex_truth.add_hybrid(
                HybridEntry(a, b, routed_city, Relationship.PEER)
            )
            self.complex_truth.add_hybrid(
                HybridEntry(a, b, other_city, Relationship.CUSTOMER)
            )

    def inject_selective_exports(self) -> None:
        """Origin-level prefix-specific export policies (Section 4.3)."""
        for asn in sorted(self.graph.asns()):
            providers = self.graph.providers(asn)
            prefixes = self.prefixes.get(asn, [])
            if len(providers) < 2 or len(prefixes) < 2:
                continue
            rate = self.config.selective_export_rate
            if asn in set(self.content_asns):
                # CDNs and content providers steer prefixes between
                # transits far more aggressively than eyeballs do —
                # the paper's Akamai/Netflix skew.
                rate = min(0.85, rate * 2.5)
            if self.rng.random() >= rate:
                continue
            # Announce one non-infrastructure prefix to a strict subset
            # of providers (peers still receive it).  Bias toward the
            # serving prefix (the last one), since that is where the
            # paper observes selective announcement: content hosted on
            # prefixes with their own export arrangements.
            if self.rng.random() < 0.6:
                prefix = prefixes[-1]
            else:
                prefix = self.rng.choice(prefixes[1:])
            # Most selective announcements steer the prefix onto a
            # single transit (the strongest observable policy).
            if self.rng.random() < 0.6:
                keep_count = 1
            else:
                keep_count = self.rng.randint(1, len(providers) - 1)
            keep = self.rng.sample(providers, k=keep_count)
            allowed = set(self.graph.neighbors(asn)) - (set(providers) - set(keep))
            self.policies[asn].selective_export[prefix] = frozenset(allowed)

    def inject_prefix_local_prefs(self) -> None:
        """Per-(neighbor, prefix) preference overrides toward content."""
        content_prefixes = [
            prefix
            for asn in self.content_asns
            for prefix in self.prefixes[asn][1:]
        ]
        if not content_prefixes:
            return
        for asn in self.large_isps + self.small_isps:
            if self.rng.random() >= self.config.prefix_local_pref_rate:
                continue
            neighbors = list(self.graph.neighbors(asn))
            if not neighbors:
                continue
            # Traffic-engineer one to three content prefixes.
            for _ in range(self.rng.randint(1, 3)):
                neighbor = self.rng.choice(neighbors)
                prefix = self.rng.choice(content_prefixes)
                self.policies[asn].prefix_local_pref[(neighbor, prefix)] = (
                    self.rng.choice([80, 250, 350])
                )

    def inject_prepending(self) -> None:
        """Origins prepend toward one provider to steer inbound traffic."""
        for asn in sorted(self.graph.asns()):
            providers = self.graph.providers(asn)
            prefixes = self.prefixes.get(asn, [])
            if len(providers) < 2 or not prefixes:
                continue
            if self.rng.random() >= self.config.prepend_rate:
                continue
            provider = self.rng.choice(providers)
            prefix = prefixes[-1] if self.rng.random() < 0.7 else self.rng.choice(prefixes)
            self.policies[asn].export_prepend[(prefix, provider)] = self.rng.randint(1, 3)

    # ------------------------------------------------------------------
    # Content deployment
    # ------------------------------------------------------------------
    def deploy_content(self) -> None:
        eyeballs = [
            asn
            for asn in self.stubs
            if self.graph.get_as(asn).role is ASRole.EYEBALL
        ]
        for provider in self.content:
            on_net_asn = provider.asns[0]
            is_cdn = self.graph.get_as(on_net_asn).role is ASRole.CDN
            # Off-net cache footprint is per provider; every DNS name is
            # served from the same deployment.
            provider_hosts: List[int] = []
            if is_cdn and eyeballs:
                # Spread caches across continents: sort candidates into
                # continent buckets and draw round-robin.
                by_continent: Dict[str, List[int]] = {}
                for candidate in eyeballs:
                    by_continent.setdefault(
                        self._continent_of(candidate), []
                    ).append(candidate)
                buckets = list(by_continent.values())
                for bucket in buckets:
                    self.rng.shuffle(bucket)
                index = 0
                while len(provider_hosts) < min(12, len(eyeballs)):
                    bucket = buckets[index % len(buckets)]
                    if bucket:
                        provider_hosts.append(bucket.pop())
                    index += 1
                    if all(not bucket for bucket in buckets):
                        break
            for dns_name in provider.dns_names:
                replicas: List[Replica] = []
                # On-net replicas in the provider's own cities.
                for asn in provider.asns:
                    serving_prefix = self.prefixes[asn][-1]
                    for index, city in enumerate(self.presence_cities[asn]):
                        ip = serving_prefix.address_at(index + 10)
                        self.ip_locations[ip.value] = city
                        replicas.append(Replica(ip=ip, asn=asn, city=city))
                # Off-net caches inside eyeball ISPs (CDNs only).
                if provider_hosts:
                    for host in provider_hosts:
                        host_prefix = self.prefixes[host][-1]
                        ip = host_prefix.address_at(self.rng.randint(20, 200))
                        city = self.home_city[host]
                        self.ip_locations[ip.value] = city
                        replicas.append(Replica(ip=ip, asn=host, city=city))
                provider.replicas[dns_name] = replicas

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build(self) -> Internet:
        self.build_populations()
        self.wire_relationships()
        self.allocate_addresses()
        self.build_interconnects()
        self.build_policies()
        self.inject_selective_exports()
        self.inject_prefix_local_prefs()
        self.inject_prepending()
        self.deploy_content()
        eyeball_asns = [
            asn
            for asn in self.stubs + self.small_isps
            if self.graph.get_as(asn).role in (ASRole.EYEBALL, ASRole.TRANSIT)
        ]
        return Internet(
            world=self.world,
            graph=self.graph,
            policies=self.policies,
            prefixes=self.prefixes,
            interconnects=self.interconnects,
            router_ips=self.router_ips,
            ip_locations=self.ip_locations,
            whois=self.whois,
            soa=self.soa,
            orgs=self.orgs,
            cables=self.cables,
            complex_truth=self.complex_truth,
            content=self.content,
            eyeball_asns=eyeball_asns,
            home_city=self.home_city,
            presence_cities=self.presence_cities,
        )


def generate_internet(
    config: Optional[TopologyConfig] = None, seed: int = 0
) -> Internet:
    """Generate a synthetic Internet from ``config`` and ``seed``."""
    return _Builder(config or TopologyConfig(), seed).build()
