"""A fixed world map for the synthetic Internet.

Continents, countries and cities with coordinates.  The layout is
hand-built rather than random so that distances (and thus latencies and
undersea-cable placement) are stable and roughly realistic: crossing an
ocean requires a cable AS or a multinational backbone, and intra-country
hops are short.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Continent codes follow the paper's Figure 3 labels.
CONTINENTS = ("AF", "NA", "EU", "SA", "AS", "OC")


@dataclass(frozen=True)
class City:
    name: str
    country: str
    continent: str
    lat: float
    lon: float


@dataclass(frozen=True)
class Country:
    code: str
    continent: str
    cities: Tuple[City, ...]

    @property
    def capital(self) -> City:
        return self.cities[0]


@dataclass
class World:
    """Queryable container of the world map."""

    countries: Dict[str, Country] = field(default_factory=dict)

    def add_country(self, country: Country) -> None:
        self.countries[country.code] = country

    def continent_of(self, country_code: str) -> str:
        return self.countries[country_code].continent

    def countries_in(self, continent: str) -> List[Country]:
        return [c for c in self.countries.values() if c.continent == continent]

    def all_cities(self) -> List[City]:
        return [city for country in self.countries.values() for city in country.cities]

    def cities_in_country(self, country_code: str) -> Tuple[City, ...]:
        return self.countries[country_code].cities


def distance_km(a: City, b: City) -> float:
    """Great-circle distance between two cities (haversine)."""
    lat1, lon1, lat2, lon2 = map(math.radians, (a.lat, a.lon, b.lat, b.lon))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * 6371.0 * math.asin(min(1.0, math.sqrt(h)))


# ---------------------------------------------------------------------------
# The fixed world: (country, continent, [(city, lat, lon), ...])
# ---------------------------------------------------------------------------
_WORLD_SPEC = [
    # North America
    ("US", "NA", [("New York", 40.7, -74.0), ("Los Angeles", 34.1, -118.2),
                  ("Chicago", 41.9, -87.6), ("Ashburn", 39.0, -77.5),
                  ("Miami", 25.8, -80.2), ("Seattle", 47.6, -122.3)]),
    ("CA", "NA", [("Toronto", 43.7, -79.4), ("Vancouver", 49.3, -123.1)]),
    ("MX", "NA", [("Mexico City", 19.4, -99.1), ("Monterrey", 25.7, -100.3)]),
    # Europe
    ("DE", "EU", [("Frankfurt", 50.1, 8.7), ("Berlin", 52.5, 13.4)]),
    ("NL", "EU", [("Amsterdam", 52.4, 4.9)]),
    ("GB", "EU", [("London", 51.5, -0.1), ("Manchester", 53.5, -2.2)]),
    ("FR", "EU", [("Paris", 48.9, 2.4), ("Marseille", 43.3, 5.4)]),
    ("IT", "EU", [("Milan", 45.5, 9.2), ("Rome", 41.9, 12.5)]),
    ("ES", "EU", [("Madrid", 40.4, -3.7)]),
    ("SE", "EU", [("Stockholm", 59.3, 18.1)]),
    ("PL", "EU", [("Warsaw", 52.2, 21.0)]),
    # South America
    ("BR", "SA", [("Sao Paulo", -23.6, -46.6), ("Rio de Janeiro", -22.9, -43.2),
                  ("Fortaleza", -3.7, -38.5)]),
    ("AR", "SA", [("Buenos Aires", -34.6, -58.4)]),
    ("CL", "SA", [("Santiago", -33.4, -70.7)]),
    ("CO", "SA", [("Bogota", 4.7, -74.1)]),
    # Asia
    ("JP", "AS", [("Tokyo", 35.7, 139.7), ("Osaka", 34.7, 135.5)]),
    ("SG", "AS", [("Singapore", 1.4, 103.8)]),
    ("IN", "AS", [("Mumbai", 19.1, 72.9), ("Chennai", 13.1, 80.3)]),
    ("KR", "AS", [("Seoul", 37.6, 127.0)]),
    ("HK", "AS", [("Hong Kong", 22.3, 114.2)]),
    ("ID", "AS", [("Jakarta", -6.2, 106.8)]),
    # Africa
    ("ZA", "AF", [("Johannesburg", -26.2, 28.0), ("Cape Town", -33.9, 18.4)]),
    ("KE", "AF", [("Nairobi", -1.3, 36.8)]),
    ("NG", "AF", [("Lagos", 6.5, 3.4)]),
    ("EG", "AF", [("Cairo", 30.0, 31.2)]),
    # Oceania
    ("AU", "OC", [("Sydney", -33.9, 151.2), ("Perth", -32.0, 115.9)]),
    ("NZ", "OC", [("Auckland", -36.8, 174.8)]),
]


def build_world() -> World:
    """Construct the fixed world map used by the generator."""
    world = World()
    for code, continent, cities in _WORLD_SPEC:
        city_objects = tuple(
            City(name=name, country=code, continent=continent, lat=lat, lon=lon)
            for name, lat, lon in cities
        )
        world.add_country(Country(code=code, continent=continent, cities=city_objects))
    return world
