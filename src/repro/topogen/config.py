"""Configuration knobs for the synthetic Internet generator.

Counts control the size of the topology; rates control how often the
generator injects the policy behaviours the paper investigates.  The
defaults produce a medium topology that runs the full passive campaign
in seconds while exhibiting every violation class.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TopologyConfig:
    """Sizes and behaviour rates for :func:`generate_internet`."""

    # ------------------------------------------------------------------
    # Population sizes
    # ------------------------------------------------------------------
    num_tier1: int = 10
    num_large_isps: int = 40
    num_small_isps: int = 150
    num_stubs: int = 500
    num_content_providers: int = 12
    num_cable_ases: int = 12

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    #: Providers per large ISP (drawn 1..n).
    max_providers_large: int = 3
    #: Providers per small ISP.
    max_providers_small: int = 3
    #: Providers per stub.
    max_providers_stub: int = 3
    #: Probability two large ISPs on the same continent peer.
    peer_prob_large: float = 0.18
    #: Probability two small ISPs in the same country peer (edge mesh).
    peer_prob_small_domestic: float = 0.25
    #: Probability two small ISPs on the same continent peer.
    peer_prob_small_continent: float = 0.03
    #: Probability a stub peers with another stub in the same country.
    peer_prob_stub: float = 0.01
    #: Transit providers each content provider buys from.
    content_transit_providers: int = 4
    #: Probability a content provider peers with a given large ISP.
    content_peering_prob: float = 0.35

    # ------------------------------------------------------------------
    # Organizations / siblings
    # ------------------------------------------------------------------
    #: Fraction of large ISPs split into multi-ASN sibling organizations.
    sibling_org_rate: float = 0.35
    #: ASNs per sibling organization (2..n).
    max_siblings_per_org: int = 3
    #: Fraction of sibling orgs whose whois email uses a public hoster
    #: (making them invisible to email-based inference).
    sibling_public_email_rate: float = 0.15

    # ------------------------------------------------------------------
    # Policy deviations (the paper's root causes)
    # ------------------------------------------------------------------
    #: Fraction of multi-homed origins applying selective per-prefix export.
    selective_export_rate: float = 0.45
    #: Fraction of ASes applying a per-neighbor-and-prefix local-pref
    #: override for some destination prefix (traffic engineering).
    prefix_local_pref_rate: float = 0.30
    #: Fraction of multi-homed stubs keeping one provider as backup only.
    backup_link_rate: float = 0.15
    #: Fraction of ASes preferring domestic paths (Section 6).
    domestic_preference_rate: float = 0.55
    #: Fraction of large-ISP peerings that are hybrid (relationship
    #: differs by city).
    hybrid_rate: float = 0.12
    #: Fraction of provider-customer links sold as partial transit.
    partial_transit_rate: float = 0.06
    #: Fraction of ASes that filter poisoned announcements.
    poison_filter_rate: float = 0.03
    #: Fraction of ASes with loop prevention disabled.
    loop_prevention_disabled_rate: float = 0.01
    #: Fraction of ISPs with a general per-neighbor local-pref override
    #: that breaks the Gao-Rexford band (e.g. preferring a peer route
    #: over a customer route) — the paper's unexplained residue.
    nongr_local_pref_rate: float = 0.22
    #: Fraction of multi-homed origins prepending their AS path toward
    #: one provider (inbound traffic engineering); deflects traffic
    #: onto physically longer paths the model cannot predict.
    prepend_rate: float = 0.25

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    #: Prefixes originated per multi-prefix AS (2..n); stubs get 1-2.
    max_prefixes_per_origin: int = 4

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range knobs."""
        rates = {
            name: value
            for name, value in vars(self).items()
            if name.endswith(("_rate", "_prob")) or "_prob_" in name
        }
        for name, value in rates.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        counts = [
            self.num_tier1,
            self.num_large_isps,
            self.num_small_isps,
            self.num_stubs,
            self.num_content_providers,
            self.num_cable_ases,
        ]
        if any(count < 0 for count in counts):
            raise ValueError("population sizes must be non-negative")
        if self.num_tier1 < 2:
            raise ValueError("need at least two tier-1 ASes for a clique")


def small_config() -> TopologyConfig:
    """A small topology for fast tests."""
    return TopologyConfig(
        num_tier1=4,
        num_large_isps=12,
        num_small_isps=30,
        num_stubs=80,
        num_content_providers=4,
        num_cable_ases=3,
    )
