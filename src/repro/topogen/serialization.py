"""Persisting generated Internets as JSON.

A generated Internet is a dataset: regenerating one from a seed is
cheap, but sharing *exactly* the topology a result was produced on —
including every injected policy deviation — needs serialization.
:func:`save_internet` / :func:`load_internet` round-trip everything the
:class:`~repro.topogen.internet.Internet` container holds.

Cities are stored by name and re-bound against the fixed world map at
load time, so files stay small and human-diffable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.bgp.policy import Policy
from repro.net.ip import IPAddress, Prefix
from repro.topogen.geography import City, build_world
from repro.topogen.internet import ContentProvider, Interconnect, Internet, Replica
from repro.topology.asys import AS, ASRole
from repro.topology.cables import Cable, CableRegistry
from repro.topology.complex_rel import (
    ComplexRelationships,
    HybridEntry,
    PartialTransitEntry,
)
from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship
from repro.whois.registry import WhoisRecord, WhoisRegistry
from repro.whois.soa import SOADatabase

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1

_REL_CODE = {
    Relationship.CUSTOMER: "c2p",
    Relationship.PEER: "p2p",
    Relationship.SIBLING: "sibling",
    Relationship.PROVIDER: "provider",
}
_CODE_REL = {code: rel for rel, code in _REL_CODE.items()}


def _city_index() -> Dict[str, City]:
    index: Dict[str, City] = {}
    for city in build_world().all_cities():
        if city.name in index:
            raise RuntimeError(f"world map has duplicate city name {city.name!r}")
        index[city.name] = city
    return index


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _policy_to_dict(policy: Policy) -> Dict:
    return {
        "neighbor_local_pref": {
            str(neighbor): pref for neighbor, pref in policy.neighbor_local_pref.items()
        },
        "prefix_local_pref": [
            [neighbor, str(prefix), pref]
            for (neighbor, prefix), pref in policy.prefix_local_pref.items()
        ],
        "igp_cost": {str(neighbor): cost for neighbor, cost in policy.igp_cost.items()},
        "selective_export": [
            [str(prefix), sorted(allowed)]
            for prefix, allowed in policy.selective_export.items()
        ],
        "export_prepend": [
            [str(prefix), neighbor, count]
            for (prefix, neighbor), count in policy.export_prepend.items()
        ],
        "partial_transit_to": sorted(policy.partial_transit_to),
        "home_country": policy.home_country,
        "prefers_domestic": policy.prefers_domestic,
        "filters_poisoned": policy.filters_poisoned,
        "loop_prevention_disabled": policy.loop_prevention_disabled,
    }


def _policy_from_dict(asn: int, data: Dict) -> Policy:
    return Policy(
        asn=asn,
        neighbor_local_pref={
            int(neighbor): pref
            for neighbor, pref in data.get("neighbor_local_pref", {}).items()
        },
        prefix_local_pref={
            (neighbor, Prefix.parse(prefix)): pref
            for neighbor, prefix, pref in data.get("prefix_local_pref", [])
        },
        igp_cost={
            int(neighbor): cost for neighbor, cost in data.get("igp_cost", {}).items()
        },
        selective_export={
            Prefix.parse(prefix): frozenset(allowed)
            for prefix, allowed in data.get("selective_export", [])
        },
        export_prepend={
            (Prefix.parse(prefix), neighbor): count
            for prefix, neighbor, count in data.get("export_prepend", [])
        },
        partial_transit_to=set(data.get("partial_transit_to", [])),
        home_country=data.get("home_country", ""),
        prefers_domestic=data.get("prefers_domestic", False),
        filters_poisoned=data.get("filters_poisoned", False),
        loop_prevention_disabled=data.get("loop_prevention_disabled", False),
    )


def internet_to_dict(internet: Internet) -> Dict:
    """The JSON-compatible representation of a generated Internet."""
    return {
        "format_version": FORMAT_VERSION,
        "ases": [
            {
                "asn": asys.asn,
                "name": asys.name,
                "org_id": asys.org_id,
                "country": asys.country,
                "presence": sorted(asys.presence),
                "role": asys.role.value,
                "continent": asys.continent,
            }
            for asys in sorted(internet.graph.ases(), key=lambda a: a.asn)
        ],
        "links": [
            [a, b, _REL_CODE[rel]] for a, b, rel in internet.graph.links()
        ],
        "policies": {
            str(asn): _policy_to_dict(policy)
            for asn, policy in sorted(internet.policies.items())
        },
        "prefixes": {
            str(asn): [str(prefix) for prefix in prefixes]
            for asn, prefixes in sorted(internet.prefixes.items())
        },
        "interconnects": [
            {
                "a": ic.a,
                "b": ic.b,
                "city": ic.city.name,
                "subnet": str(ic.subnet),
                "ip_a": str(ic.ip_a),
                "ip_b": str(ic.ip_b),
                "owner": ic.owner,
            }
            for ic in (
                internet.interconnects[key]
                for key in sorted(internet.interconnects)
            )
        ],
        "router_ips": [
            [asn, city_name, str(ip)]
            for (asn, city_name), ip in sorted(internet.router_ips.items())
        ],
        "ip_locations": {
            str(value): city.name
            for value, city in sorted(internet.ip_locations.items())
        },
        "whois": [
            {
                "asn": record.asn,
                "org_name": record.org_name,
                "org_id": record.org_id,
                "email": record.email,
                "phone": record.phone,
                "country": record.country,
            }
            for record in sorted(internet.whois, key=lambda r: r.asn)
        ],
        "soa": [list(pair) for pair in internet.soa.records()],
        "orgs": {org: sorted(members) for org, members in sorted(internet.orgs.items())},
        "cables": [
            {
                "name": cable.name,
                "landing_countries": sorted(cable.landing_countries),
                "operator_asn": cable.operator_asn,
                "owners": sorted(cable.owners),
            }
            for cable in internet.cables.cables()
        ],
        "hybrid": [
            [entry.asn, entry.neighbor, entry.city, _REL_CODE[entry.relationship]]
            for entry in internet.complex_truth.hybrid_entries()
        ],
        "partial_transit": [
            [entry.provider, entry.customer, entry.scope, sorted(entry.destinations)]
            for entry in internet.complex_truth.partial_transit_entries()
        ],
        "content": [
            {
                "name": provider.name,
                "asns": list(provider.asns),
                "dns_names": list(provider.dns_names),
                "replicas": {
                    dns_name: [
                        [str(replica.ip), replica.asn, replica.city.name]
                        for replica in replicas
                    ]
                    for dns_name, replicas in sorted(provider.replicas.items())
                },
            }
            for provider in internet.content
        ],
        # Order matters: probe placement draws from this list with
        # weights positionally aligned to it.
        "eyeball_asns": list(internet.eyeball_asns),
        "home_city": {
            str(asn): city.name for asn, city in sorted(internet.home_city.items())
        },
        "presence_cities": {
            str(asn): [city.name for city in cities]
            for asn, cities in sorted(internet.presence_cities.items())
        },
    }


def internet_from_dict(data: Dict) -> Internet:
    """Rebuild an :class:`Internet` from its JSON representation."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version!r}")
    cities = _city_index()

    def city(name: str) -> City:
        try:
            return cities[name]
        except KeyError:
            raise ValueError(f"unknown city {name!r} in dataset") from None

    graph = ASGraph()
    for record in data["ases"]:
        graph.add_as(
            AS(
                asn=record["asn"],
                name=record["name"],
                org_id=record["org_id"],
                country=record["country"],
                presence=frozenset(record["presence"]),
                role=ASRole(record["role"]),
                continent=record["continent"],
            )
        )
    for a, b, code in data["links"]:
        graph.add_link(a, b, _CODE_REL[code])

    whois = WhoisRegistry()
    for record in data["whois"]:
        whois.add(WhoisRecord(**record))

    complex_truth = ComplexRelationships()
    for asn, neighbor, city_name, code in data["hybrid"]:
        complex_truth.add_hybrid(
            HybridEntry(
                asn=asn, neighbor=neighbor, city=city_name, relationship=_CODE_REL[code]
            )
        )
    for provider, customer, scope, destinations in data["partial_transit"]:
        complex_truth.add_partial_transit(
            PartialTransitEntry(
                provider=provider,
                customer=customer,
                scope=scope,
                destinations=frozenset(destinations),
            )
        )

    content = []
    for record in data["content"]:
        provider = ContentProvider(
            name=record["name"],
            asns=tuple(record["asns"]),
            dns_names=tuple(record["dns_names"]),
        )
        for dns_name, replicas in record["replicas"].items():
            provider.replicas[dns_name] = [
                Replica(ip=IPAddress.parse(ip), asn=asn, city=city(city_name))
                for ip, asn, city_name in replicas
            ]
        content.append(provider)

    return Internet(
        world=build_world(),
        graph=graph,
        policies={
            int(asn): _policy_from_dict(int(asn), policy)
            for asn, policy in data["policies"].items()
        },
        prefixes={
            int(asn): [Prefix.parse(prefix) for prefix in prefixes]
            for asn, prefixes in data["prefixes"].items()
        },
        interconnects={
            (record["a"], record["b"]): Interconnect(
                a=record["a"],
                b=record["b"],
                city=city(record["city"]),
                subnet=Prefix.parse(record["subnet"]),
                ip_a=IPAddress.parse(record["ip_a"]),
                ip_b=IPAddress.parse(record["ip_b"]),
                owner=record["owner"],
            )
            for record in data["interconnects"]
        },
        router_ips={
            (asn, city_name): IPAddress.parse(ip)
            for asn, city_name, ip in data["router_ips"]
        },
        ip_locations={
            int(value): city(city_name)
            for value, city_name in data["ip_locations"].items()
        },
        whois=whois,
        soa=SOADatabase(tuple(pair) for pair in data["soa"]),
        orgs={org: list(members) for org, members in data["orgs"].items()},
        cables=CableRegistry(
            Cable(
                name=record["name"],
                landing_countries=frozenset(record["landing_countries"]),
                operator_asn=record["operator_asn"],
                owners=frozenset(record["owners"]),
            )
            for record in data["cables"]
        ),
        complex_truth=complex_truth,
        content=content,
        eyeball_asns=list(data["eyeball_asns"]),
        home_city={
            int(asn): city(city_name)
            for asn, city_name in data["home_city"].items()
        },
        presence_cities={
            int(asn): [city(name) for name in names]
            for asn, names in data["presence_cities"].items()
        },
    )


def save_internet(internet: Internet, path: Union[str, Path]) -> None:
    """Write an Internet to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(internet_to_dict(internet), handle, sort_keys=True)


def load_internet(path: Union[str, Path]) -> Internet:
    """Read an Internet back from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return internet_from_dict(json.load(handle))
