"""Relationship-inference error model.

The analysis pipeline never sees the ground truth: like the paper, it
works from *inferred* relationship snapshots with the blind spots of
real inference pipelines (Luckie et al.):

* sibling links come out as customer-provider or peer (inference has no
  sibling class),
* undersea-cable transit links are misread (the paper's Section 6 —
  cable operators "resemble high-latency, high-cost IXPs and thus
  confuse existing AS relationship models"),
* hybrid (per-city) relationships collapse to a single, often wrong,
  label,
* edge peering links are simply invisible to route collectors,
* a few stale links linger from past topologies (the paper's
  AS3549-Netflix example), and
* each monthly snapshot adds transient churn, which Section 3.3's
  aggregation is designed to cancel.

The Giotsas-style complex-relationship dataset handed to the analysis
covers only part of the true hybrid/partial-transit entries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.topogen.internet import Internet
from repro.topology.complex_rel import ComplexRelationships, HybridEntry
from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship


@dataclass
class InferenceConfig:
    """Error rates of the simulated inference pipeline."""

    #: Peering between two edge networks (stubs/small ISPs) is mostly
    #: invisible to route collectors.
    miss_peer_edge_rate: float = 0.60
    #: Core peering links are occasionally missed too.
    miss_peer_core_rate: float = 0.08
    #: c2p links labeled p2p (or very rarely reversed).
    mislabel_c2p_rate: float = 0.06
    reverse_c2p_rate: float = 0.005
    #: p2p links labeled c2p.
    mislabel_p2p_rate: float = 0.12
    #: Probability a sibling link is inferred as c2p (else p2p).
    sibling_as_c2p_rate: float = 0.55
    #: Probability a cable transit link is misread.
    cable_mislabel_rate: float = 0.75
    #: Probability a hybrid pair gets the wrong (other-city) label.
    hybrid_wrong_label_rate: float = 0.80
    #: Nonexistent stale links injected into the inferred topology.
    stale_link_count: int = 14
    #: Per-link perturbation probability in each monthly snapshot.
    snapshot_churn: float = 0.02
    #: Fraction of true complex entries present in the known dataset.
    complex_dataset_coverage: float = 0.6
    #: Number of monthly snapshots to derive.
    num_snapshots: int = 5


def _provider_side(internet: Internet, a: int, b: int, rng: random.Random) -> Tuple[int, int]:
    """Guess which sibling/peer endpoint looks like the provider.

    Inference pipelines use degree: the better-connected AS is assumed
    to be the provider.
    """
    degree_a = internet.graph.degree(a)
    degree_b = internet.graph.degree(b)
    if degree_a == degree_b:
        return (a, b) if rng.random() < 0.5 else (b, a)
    return (a, b) if degree_a > degree_b else (b, a)


def infer_topology(
    internet: Internet,
    config: Optional[InferenceConfig] = None,
    seed: int = 0,
) -> Tuple[ASGraph, ComplexRelationships]:
    """Derive the base inferred topology and the known complex dataset."""
    config = config or InferenceConfig()
    rng = random.Random(seed)
    truth = internet.graph
    edge_asns = {
        asn
        for asn in truth.asns()
        if not truth.customers(asn) or truth.degree(asn) <= 4
    }
    cable_asns = internet.cables.cable_asns()
    hybrid_pairs = {
        (min(a, b), max(a, b)) for a, b in internet.complex_truth.hybrid_pairs()
    }

    inferred = ASGraph()
    for asys in truth.ases():
        inferred.add_as(asys)

    for a, b, rel in truth.links():
        pair = (min(a, b), max(a, b))
        if rel is Relationship.SIBLING:
            provider, customer = _provider_side(internet, a, b, rng)
            if rng.random() < config.sibling_as_c2p_rate:
                inferred.add_link(provider, customer, Relationship.CUSTOMER)
            else:
                inferred.add_link(a, b, Relationship.PEER)
            continue
        if rel is Relationship.CUSTOMER and (a in cable_asns or b in cable_asns):
            # ``a`` is the cable operator providing point-to-point
            # transit; inference usually misreads the economics — or,
            # like IXP fabrics, misses the hop entirely.
            if rng.random() < config.cable_mislabel_rate:
                roll = rng.random()
                if roll < 0.4:
                    continue  # link invisible to inference
                if roll < 0.75:
                    inferred.add_link(a, b, Relationship.PEER)
                else:
                    inferred.add_link(b, a, Relationship.CUSTOMER)
            else:
                inferred.add_link(a, b, rel)
            continue
        if rel is Relationship.PEER and pair in hybrid_pairs:
            if rng.random() < config.hybrid_wrong_label_rate:
                # The collapsed label reflects the *other* city, where
                # the pair behaves as customer-provider.
                inferred.add_link(a, b, Relationship.CUSTOMER)
            else:
                inferred.add_link(a, b, Relationship.PEER)
            continue
        if rel is Relationship.PEER:
            both_edge = a in edge_asns and b in edge_asns
            miss_rate = (
                config.miss_peer_edge_rate if both_edge else config.miss_peer_core_rate
            )
            if rng.random() < miss_rate:
                continue
            if rng.random() < config.mislabel_p2p_rate:
                provider, customer = _provider_side(internet, a, b, rng)
                inferred.add_link(provider, customer, Relationship.CUSTOMER)
            else:
                inferred.add_link(a, b, Relationship.PEER)
            continue
        # Plain customer-provider link.
        if rng.random() < config.reverse_c2p_rate:
            inferred.add_link(b, a, Relationship.CUSTOMER)
        elif rng.random() < config.mislabel_c2p_rate:
            inferred.add_link(a, b, Relationship.PEER)
        else:
            inferred.add_link(a, b, rel)

    _inject_stale_links(internet, inferred, config, rng)
    known_complex = _sample_complex_dataset(internet, config, rng)
    return inferred, known_complex


def _inject_stale_links(
    internet: Internet,
    inferred: ASGraph,
    config: InferenceConfig,
    rng: random.Random,
) -> None:
    """Add links that existed once but no longer do (stale inferences)."""
    content_asns = internet.content_asns()
    transit_asns = [
        asn
        for asn in internet.graph.asns()
        if internet.graph.customers(asn) and asn not in content_asns
    ]
    if not content_asns or not transit_asns:
        return
    # Stale links attach to well-connected transits so that many model
    # paths route through them (the paper's AS3549-Netflix case was a
    # tier-1's dead link to a major content network).
    weights = [internet.graph.degree(asn) for asn in transit_asns]
    added = 0
    attempts = 0
    while added < config.stale_link_count and attempts < 100:
        attempts += 1
        transit = rng.choices(transit_asns, weights=weights, k=1)[0]
        content = rng.choice(content_asns)
        if inferred.has_link(transit, content) or internet.graph.has_link(
            transit, content
        ):
            continue
        relationship = (
            Relationship.CUSTOMER if rng.random() < 0.7 else Relationship.PEER
        )
        inferred.add_link(transit, content, relationship)
        added += 1


def _sample_complex_dataset(
    internet: Internet, config: InferenceConfig, rng: random.Random
) -> ComplexRelationships:
    """The Giotsas-like dataset: partial coverage of the truth."""
    known = ComplexRelationships()
    seen_pairs = set()
    for a, b in internet.complex_truth.hybrid_pairs():
        pair = (min(a, b), max(a, b))
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        if rng.random() >= config.complex_dataset_coverage:
            continue
        for city_a in internet.presence_cities.get(a, []):
            relationship = internet.complex_truth.hybrid_relationship(
                a, b, city_a.name
            )
            if relationship is not None:
                known.add_hybrid(HybridEntry(a, b, city_a.name, relationship))
    for entry in internet.complex_truth.partial_transit_entries():
        if rng.random() < config.complex_dataset_coverage:
            known.add_partial_transit(entry)
    return known


def perturb_snapshot(
    base: ASGraph, churn: float, rng: random.Random
) -> ASGraph:
    """One churned monthly view of ``base``.

    Per link, one draw from ``rng`` decides its fate: the bottom half of
    the churn band drops the link for the month, the top half flips its
    label (customer-provider <-> peer), and everything above keeps it
    verbatim.  Consumes exactly one ``rng.random()`` per base link, so
    :func:`inferred_snapshots` built on this helper reproduces the
    historical snapshot series byte-for-byte.
    """
    snapshot = ASGraph()
    for asys in base.ases():
        snapshot.add_as(asys)
    for a, b, rel in base.links():
        roll = rng.random()
        if roll < churn / 2:
            continue  # link missing this month
        if roll < churn:
            flipped = (
                Relationship.PEER
                if rel is Relationship.CUSTOMER
                else Relationship.CUSTOMER
            )
            snapshot.add_link(a, b, flipped)
        else:
            snapshot.add_link(a, b, rel)
    return snapshot


def inferred_snapshots(
    internet: Internet,
    config: Optional[InferenceConfig] = None,
    seed: int = 0,
) -> Tuple[List[ASGraph], ComplexRelationships]:
    """Monthly inferred snapshots (oldest first) plus the complex dataset.

    Each snapshot perturbs the base inference with independent churn:
    links vanish for a month or flip label, mimicking transient failures
    and inference instability that Section 3.3's aggregation smooths.
    """
    config = config or InferenceConfig()
    base, known_complex = infer_topology(internet, config, seed)
    rng = random.Random(seed + 1)
    snapshots = [
        perturb_snapshot(base, config.snapshot_churn, rng)
        for _ in range(config.num_snapshots)
    ]
    return snapshots, known_complex
