"""Reproduction of "Investigating Interdomain Routing Policies in the
Wild" (Anwar et al., IMC 2015).

The package implements the paper's full measurement-and-analysis
system over a synthetic Internet: topology generation with realistic
policy deviations, a BGP route-propagation simulator, traceroute and
control-plane measurement substrates, and the classification pipeline
that grades observed routing decisions against the Gao-Rexford model.

Start with :class:`repro.core.Study` for the end-to-end pipeline, or
the ``examples/`` directory for focused walkthroughs.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
