"""Probe population generation.

RIPE Atlas "is known to have a disproportionate fraction of probes
skewed towards Europe" (Section 3.1).  The generator reproduces that
skew so the continent-balanced selection strategy has something to
correct.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.net.ip import IPAddress
from repro.topogen.geography import City
from repro.topogen.internet import Internet

#: Relative probe density per continent (Europe-heavy, like Atlas).
_CONTINENT_WEIGHT = {"EU": 6.0, "NA": 3.0, "AS": 1.5, "SA": 0.8, "AF": 0.5, "OC": 0.7}


@dataclass(frozen=True)
class Probe:
    """One measurement probe hosted inside an AS."""

    probe_id: int
    asn: int
    ip: IPAddress
    city: City

    @property
    def country(self) -> str:
        return self.city.country

    @property
    def continent(self) -> str:
        return self.city.continent


def generate_probes(
    internet: Internet, count: int = 1200, seed: int = 0
) -> List[Probe]:
    """Generate a Europe-skewed probe population in eyeball ASes.

    Probe addresses are drawn from the hosting AS's last originated
    prefix (offsets above the replica range to avoid collisions) and
    registered in the internet's ground-truth IP location map so
    geolocation covers them.
    """
    rng = random.Random(seed)
    hosts = list(internet.eyeball_asns)
    if not hosts:
        raise ValueError("internet has no eyeball ASes to host probes")
    weights = [
        _CONTINENT_WEIGHT.get(internet.home_city[asn].continent, 1.0) for asn in hosts
    ]
    probes: List[Probe] = []
    per_as_counter: Dict[int, int] = {}
    for probe_id in range(count):
        asn = rng.choices(hosts, weights=weights, k=1)[0]
        index = per_as_counter.get(asn, 0)
        per_as_counter[asn] = index + 1
        prefix = internet.prefixes[asn][-1]
        offset = 300 + index
        if offset >= prefix.num_addresses():
            offset = prefix.num_addresses() - 1 - index % 200
        ip = prefix.address_at(offset)
        city = rng.choice(internet.presence_cities[asn])
        internet.ip_locations.setdefault(ip.value, city)
        probes.append(Probe(probe_id=probe_id, asn=asn, ip=ip, city=city))
    return probes
