"""DNS resolution with CDN-style replica mapping.

Each probe resolves every content DNS name before tracerouting
(Section 3.1).  CDNs answer with a nearby replica — often an off-net
cache inside an eyeball ISP — which is why the paper's 34 names fan out
into 218 destination ASes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.atlas.probes import Probe
from repro.topogen.geography import distance_km
from repro.topogen.internet import ContentProvider, Internet, Replica


class CDNResolver:
    """Resolves DNS names to replicas near the querying probe."""

    def __init__(self, internet: Internet, seed: int = 0, locality: int = 2) -> None:
        """``locality``: the resolver answers with one of the
        ``locality`` nearest replicas (CDN mapping is good but not
        perfect)."""
        if locality < 1:
            raise ValueError("locality must be at least 1")
        self._rng = random.Random(seed)
        self._locality = locality
        self._by_name: Dict[str, List[Replica]] = {}
        for provider in internet.content:
            for dns_name, replicas in provider.replicas.items():
                self._by_name[dns_name] = list(replicas)

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def resolve(
        self,
        dns_name: str,
        probe: Probe,
        rng: Optional[random.Random] = None,
    ) -> Optional[Replica]:
        """The replica the CDN would hand this probe, or ``None``.

        By default draws from the resolver's own sequential stream; the
        resilient campaign passes a per-(probe, name) ``rng`` so the
        answer is independent of query order (checkpoint/resume
        determinism).
        """
        replicas = self._by_name.get(dns_name)
        if not replicas:
            return None
        ranked = sorted(
            replicas,
            key=lambda replica: (distance_km(probe.city, replica.city), replica.ip),
        )
        window = ranked[: self._locality]
        return (rng if rng is not None else self._rng).choice(window)
