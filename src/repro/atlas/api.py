"""Measurement results as JSON documents (RIPE Atlas API shape).

Real Atlas traceroute results arrive as JSON with ``src_addr``,
``dst_addr``, ``prb_id`` and a ``result`` array of per-hop records.
These converters let a campaign be exported in that shape and parsed
back, so the analysis pipeline can also be fed from recorded files.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.atlas.campaign import Measurement
from repro.dataplane.traceroute import TracerouteHop, TracerouteResult
from repro.net.ip import IPAddress


def traceroute_to_json(result: TracerouteResult, probe_id: int = 0) -> Dict:
    """One traceroute as an Atlas-style result document."""
    hops = []
    for index, hop in enumerate(result.hops, start=1):
        if hop.ip is None:
            hops.append({"hop": index, "result": [{"x": "*"}]})
        else:
            hops.append(
                {
                    "hop": index,
                    "result": [{"from": str(hop.ip), "rtt": hop.rtt}],
                }
            )
    return {
        "type": "traceroute",
        "prb_id": probe_id,
        "src_addr": str(result.source_ip),
        "dst_addr": str(result.destination_ip),
        "from_asn": result.source_asn,
        "reached": result.reached,
        "result": hops,
    }


def traceroute_from_json(document: Dict) -> TracerouteResult:
    """Parse an Atlas-style result document back into a traceroute."""
    if document.get("type") != "traceroute":
        raise ValueError(f"not a traceroute document: {document.get('type')!r}")
    hops: List[TracerouteHop] = []
    for entry in document.get("result", []):
        replies = entry.get("result", [])
        reply = replies[0] if replies else {"x": "*"}
        if "from" in reply:
            hops.append(
                TracerouteHop(
                    ip=IPAddress.parse(reply["from"]), rtt=reply.get("rtt")
                )
            )
        else:
            hops.append(TracerouteHop(ip=None, rtt=None))
    return TracerouteResult(
        source_asn=int(document["from_asn"]),
        source_ip=IPAddress.parse(document["src_addr"]),
        destination_ip=IPAddress.parse(document["dst_addr"]),
        hops=hops,
        reached=bool(document.get("reached", False)),
    )


def dump_measurements(measurements: Iterable[Measurement]) -> str:
    """Serialize campaign measurements as JSON Lines."""
    lines = []
    for measurement in measurements:
        document = traceroute_to_json(
            measurement.traceroute, probe_id=measurement.probe.probe_id
        )
        document["dns_name"] = measurement.dns_name
        lines.append(json.dumps(document, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def load_measurements(text: str) -> List[TracerouteResult]:
    """Parse JSON Lines back into traceroute results."""
    results = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {line_number}: invalid JSON") from exc
        results.append(traceroute_from_json(document))
    return results
