"""Measurement results as JSON documents (RIPE Atlas API shape).

Real Atlas traceroute results arrive as JSON with ``src_addr``,
``dst_addr``, ``prb_id`` and a ``result`` array of per-hop records.
These converters let a campaign be exported in that shape and parsed
back, so the analysis pipeline can also be fed from recorded files.

Documents in the wild are frequently malformed — truncated writes,
missing keys, non-traceroute types mixed into a result stream.  Every
parse failure raises a structured
:class:`~repro.faults.errors.MalformedResultError` (a ``ValueError``
subclass), which the resilient campaign and study layers consume to
quarantine the document instead of crashing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.atlas.campaign import Measurement
from repro.dataplane.traceroute import TracerouteHop, TracerouteResult
from repro.faults.errors import MalformedResultError
from repro.net.ip import IPAddress


def traceroute_to_json(result: TracerouteResult, probe_id: int = 0) -> Dict:
    """One traceroute as an Atlas-style result document."""
    hops = []
    for index, hop in enumerate(result.hops, start=1):
        if hop.ip is None:
            hops.append({"hop": index, "result": [{"x": "*"}]})
        else:
            hops.append(
                {
                    "hop": index,
                    "result": [{"from": str(hop.ip), "rtt": hop.rtt}],
                }
            )
    return {
        "type": "traceroute",
        "prb_id": probe_id,
        "src_addr": str(result.source_ip),
        "dst_addr": str(result.destination_ip),
        "from_asn": result.source_asn,
        "reached": result.reached,
        "result": hops,
    }


def _parse_address(document: Dict, key: str) -> IPAddress:
    value = document.get(key)
    if value is None:
        raise MalformedResultError(
            f"document missing {key!r}", document=document, reason=f"missing-{key}"
        )
    try:
        return IPAddress.parse(str(value))
    except ValueError as exc:
        raise MalformedResultError(
            f"unparseable {key!r}: {value!r}", document=document, reason=f"bad-{key}"
        ) from exc


def _parse_hop(entry: object, document: Dict) -> TracerouteHop:
    if not isinstance(entry, dict):
        raise MalformedResultError(
            f"hop record is not an object: {entry!r}",
            document=document,
            reason="bad-hop-record",
        )
    replies = entry.get("result", [])
    if not isinstance(replies, list):
        raise MalformedResultError(
            f"hop replies are not an array: {replies!r}",
            document=document,
            reason="bad-hop-record",
        )
    # A hop can carry several replies (one per sent packet); pick the
    # first that actually answered with an address.
    reply = next(
        (r for r in replies if isinstance(r, dict) and "from" in r), None
    )
    if reply is None:
        return TracerouteHop(ip=None, rtt=None)
    try:
        ip = IPAddress.parse(str(reply["from"]))
    except ValueError as exc:
        raise MalformedResultError(
            f"unparseable hop address: {reply['from']!r}",
            document=document,
            reason="bad-hop-address",
        ) from exc
    rtt = reply.get("rtt")
    if rtt is not None and not isinstance(rtt, (int, float)):
        raise MalformedResultError(
            f"non-numeric hop rtt: {rtt!r}", document=document, reason="bad-hop-rtt"
        )
    return TracerouteHop(ip=ip, rtt=rtt)


def traceroute_from_json(document: Dict) -> TracerouteResult:
    """Parse an Atlas-style result document back into a traceroute.

    Raises :class:`MalformedResultError` (a ``ValueError``) on any
    document that cannot be understood — wrong type, missing or
    unparseable required keys, malformed hop records.
    """
    if not isinstance(document, dict):
        raise MalformedResultError(
            f"document is not an object: {type(document).__name__}",
            document=document,
            reason="not-an-object",
        )
    if document.get("type") != "traceroute":
        raise MalformedResultError(
            f"not a traceroute document: {document.get('type')!r}",
            document=document,
            reason="wrong-type",
        )
    raw_hops = document.get("result", [])
    if not isinstance(raw_hops, list):
        raise MalformedResultError(
            f"result is not an array: {raw_hops!r}",
            document=document,
            reason="bad-result-array",
        )
    hops: List[TracerouteHop] = [_parse_hop(entry, document) for entry in raw_hops]
    asn = document.get("from_asn")
    if asn is None:
        raise MalformedResultError(
            "document missing 'from_asn'", document=document, reason="missing-from_asn"
        )
    try:
        source_asn = int(asn)
    except (TypeError, ValueError) as exc:
        raise MalformedResultError(
            f"unparseable 'from_asn': {asn!r}",
            document=document,
            reason="bad-from_asn",
        ) from exc
    return TracerouteResult(
        source_asn=source_asn,
        source_ip=_parse_address(document, "src_addr"),
        destination_ip=_parse_address(document, "dst_addr"),
        hops=hops,
        reached=bool(document.get("reached", False)),
    )


def dump_measurements(measurements: Iterable[Measurement]) -> str:
    """Serialize campaign measurements as JSON Lines."""
    lines = []
    for measurement in measurements:
        document = traceroute_to_json(
            measurement.traceroute, probe_id=measurement.probe.probe_id
        )
        document["dns_name"] = measurement.dns_name
        lines.append(json.dumps(document, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def load_measurements(text: str) -> List[TracerouteResult]:
    """Parse JSON Lines back into traceroute results (strict).

    The first malformed line raises; use
    :func:`load_measurements_resilient` to quarantine instead.
    """
    results = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError as exc:
            raise MalformedResultError(
                f"line {line_number}: invalid JSON", reason="invalid-json"
            ) from exc
        results.append(traceroute_from_json(document))
    return results


@dataclass(frozen=True)
class QuarantinedLine:
    """One input line that failed to parse, with its diagnosis."""

    line_number: int
    reason: str
    detail: str


def load_measurements_resilient(
    text: str,
) -> Tuple[List[TracerouteResult], List[QuarantinedLine]]:
    """Parse JSON Lines, quarantining malformed lines instead of raising.

    Returns ``(results, quarantined)``; every input line lands in
    exactly one of the two.
    """
    results: List[TracerouteResult] = []
    quarantined: List[QuarantinedLine] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        document: Optional[Dict] = None
        try:
            document = json.loads(line)
        except json.JSONDecodeError as exc:
            quarantined.append(
                QuarantinedLine(line_number, "invalid-json", str(exc))
            )
            continue
        try:
            results.append(traceroute_from_json(document))
        except MalformedResultError as exc:
            quarantined.append(QuarantinedLine(line_number, exc.reason, str(exc)))
    return results, quarantined
