"""Probe selection strategies from the paper.

Section 3.1: "we picked equal number of probes from each continent.
For every continent, we picked probes in a round robin fashion from
different countries and ASes so that selected probes cover a wide range
of ASes."

Section 3.2: "We implement a greedy heuristic that picks probes to
maximize the number of ASes traversed on the default paths toward
PEERING locations."
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Set

from repro.atlas.probes import Probe


def select_probes_balanced(
    probes: Sequence[Probe], per_continent: int, seed: int = 0
) -> List[Probe]:
    """Continent-balanced, country/AS round-robin probe selection.

    Within each continent, countries take turns contributing a probe,
    and within a country ASes take turns, maximizing AS diversity.
    Continents with fewer probes than requested contribute all of them.
    """
    rng = random.Random(seed)
    by_continent: Dict[str, Dict[str, Dict[int, List[Probe]]]] = defaultdict(
        lambda: defaultdict(lambda: defaultdict(list))
    )
    for probe in probes:
        by_continent[probe.continent][probe.country][probe.asn].append(probe)

    selected: List[Probe] = []
    for continent in sorted(by_continent):
        countries = by_continent[continent]
        # Per country, order ASes randomly, then interleave AS buckets
        # so consecutive picks from a country hit different ASes.
        country_queues: Dict[str, List[Probe]] = {}
        for country, as_buckets in countries.items():
            queue: List[Probe] = []
            buckets = [list(bucket) for bucket in as_buckets.values()]
            for bucket in buckets:
                rng.shuffle(bucket)
            rng.shuffle(buckets)
            while buckets:
                next_round = []
                for bucket in buckets:
                    queue.append(bucket.pop())
                    if bucket:
                        next_round.append(bucket)
                buckets = next_round
            country_queues[country] = queue
        # Round-robin across countries.
        order = sorted(country_queues)
        rng.shuffle(order)
        picked: List[Probe] = []
        while len(picked) < per_continent and any(country_queues[c] for c in order):
            for country in order:
                if len(picked) >= per_continent:
                    break
                if country_queues[country]:
                    picked.append(country_queues[country].pop(0))
        selected.extend(picked)
    return selected


def select_probes_greedy(
    probes: Sequence[Probe],
    covered_ases: Callable[[Probe], FrozenSet[int]],
    budget: int,
) -> List[Probe]:
    """Greedy set-cover selection maximizing traversed ASes.

    ``covered_ases`` maps a probe to the set of ASes on its default
    path toward the measurement targets; the heuristic repeatedly picks
    the probe adding the most uncovered ASes until the budget is spent
    or nothing new is covered.
    """
    if budget <= 0:
        return []
    remaining = list(probes)
    coverage = {probe.probe_id: covered_ases(probe) for probe in remaining}
    covered: Set[int] = set()
    selected: List[Probe] = []
    while remaining and len(selected) < budget:
        best = max(
            remaining,
            key=lambda probe: (
                len(coverage[probe.probe_id] - covered),
                -probe.probe_id,
            ),
        )
        gain = coverage[best.probe_id] - covered
        if not gain and selected:
            break
        covered.update(coverage[best.probe_id])
        selected.append(best)
        remaining.remove(best)
    return selected
