"""The passive traceroute campaign (paper Section 3.1).

Ties the substrates together: originate every prefix of every
destination AS into the BGP simulator, resolve each content DNS name at
each probe, traceroute to the resolved replica, and collect the raw
measurements the analysis pipeline consumes.

Two runners share that skeleton:

* :func:`run_campaign` — the fault-free reference path (unchanged seed
  behaviour, sequential RNG streams, zero overhead), and
* :func:`run_resilient_campaign` — the production-shaped path: faults
  injected at every substrate boundary from a seeded
  :class:`~repro.faults.FaultPlan`, retries with backoff, an
  append-only checkpoint journal for kill/resume, and a
  :class:`~repro.faults.RobustnessReport` accounting for every pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.atlas.budget import BudgetExceeded, CreditLedger
from repro.atlas.dns import CDNResolver
from repro.atlas.probes import Probe
from repro.bgp.simulator import BGPSimulator
from repro.dataplane.traceroute import TracerouteEngine, TracerouteResult
from repro.faults import (
    ApiRateLimit,
    ApiServerError,
    CampaignInterrupted,
    CheckpointJournal,
    DnsServfail,
    DnsTimeout,
    FaultPlan,
    FaultSite,
    MalformedResultError,
    ProbeFlapError,
    RetryExhausted,
    RetryPolicy,
    RetryStats,
    RobustnessReport,
    StoragePolicy,
    derive_seed,
    pair_key,
)
from repro.net.ip import Prefix
from repro.net.trie import PrefixTrie
from repro.obs.context import get_obs, publish
from repro.obs.events import CATEGORY_CAMPAIGN, CATEGORY_QUARANTINE
from repro.obs.trace import span
from repro.topogen.internet import Internet, Replica


@dataclass
class CampaignConfig:
    """Knobs for one campaign run.

    ``ledger`` caps the campaign by measurement credits (Section 3.1's
    "maximum probing rate allowed by RIPE Atlas"): probes whose full
    DNS+traceroute sweep no longer fits the budget are skipped (and
    recorded in the dataset, so budget loss stays distinguishable from
    fault loss).

    The resilience knobs only affect :func:`run_resilient_campaign`:
    ``fault_plan`` injects failures, ``retry`` governs backoff,
    ``checkpoint_path`` journals finalized work, ``resume`` restores a
    previous journal, and ``abort_after`` is a crash-injection drill
    (kill the campaign after N newly finalized pairs).
    """

    seed: int = 0
    missing_hop_rate: float = 0.04
    dns_locality: int = 2
    ledger: Optional[CreditLedger] = None
    fault_plan: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    checkpoint_path: Optional[str] = None
    resume: bool = False
    abort_after: Optional[int] = None
    #: Durability/fault policy the checkpoint journal is written under;
    #: defaults to the process-wide durability with this campaign's
    #: fault plan (so storage fault sites fire even without a ledger).
    storage: Optional[StoragePolicy] = None

    def wants_resilience(self) -> bool:
        return self.fault_plan is not None or self.checkpoint_path is not None

    def journal_storage(self) -> StoragePolicy:
        return self.storage or StoragePolicy(fault_plan=self.fault_plan)


@dataclass(frozen=True)
class Measurement:
    """One probe's traceroute toward one resolved DNS name."""

    probe: Probe
    dns_name: str
    replica: Replica
    traceroute: TracerouteResult


@dataclass
class CampaignDataset:
    """Everything a campaign produced.

    ``simulator`` stays converged on the destination prefixes, so BGP
    collectors can be pointed at it afterwards for the control-plane
    side of the analysis (prefix-specific policy criteria).
    """

    measurements: List[Measurement]
    announced: PrefixTrie
    simulator: BGPSimulator
    destination_asns: Set[int]
    destination_prefixes: Dict[int, List[Prefix]] = field(default_factory=dict)
    #: Probes never swept because the credit budget ran out first.
    budget_skipped: List[Probe] = field(default_factory=list)
    #: Fault/retry/coverage accounting (resilient runner only).
    robustness: Optional[RobustnessReport] = None

    def successful(self) -> List[Measurement]:
        return [m for m in self.measurements if m.traceroute.reached]


def destination_ases(internet: Internet) -> Set[int]:
    """Every AS hosting at least one content replica."""
    return {
        replica.asn
        for provider in internet.content
        for replica in provider.all_replicas()
    }


def _build_simulator(internet: Internet) -> BGPSimulator:
    return BGPSimulator(
        internet.graph,
        policies=internet.policies,
        country_of=internet.country_of,
    )


def _originate_destinations(
    internet: Internet, simulator: BGPSimulator
) -> Tuple[Set[int], PrefixTrie, Dict[int, List[Prefix]]]:
    """Originate every destination prefix; shared by both runners."""
    targets = destination_ases(internet)
    announced: PrefixTrie = PrefixTrie()
    destination_prefixes: Dict[int, List[Prefix]] = {}
    for asn in sorted(targets):
        for prefix in internet.prefixes[asn]:
            simulator.originate(asn, prefix)
            announced.insert(prefix, asn)
        destination_prefixes[asn] = list(internet.prefixes[asn])
    return targets, announced, destination_prefixes


def run_campaign(
    internet: Internet,
    probes: List[Probe],
    config: Optional[CampaignConfig] = None,
    simulator: Optional[BGPSimulator] = None,
) -> CampaignDataset:
    """Run the full passive campaign and return the raw dataset."""
    config = config or CampaignConfig()
    if simulator is None:
        simulator = _build_simulator(internet)

    # Originate every prefix of every destination AS so that the BGP
    # feeds expose per-prefix export behaviour (needed by PSP criteria).
    with span("originate_destinations"):
        targets, announced, destination_prefixes = _originate_destinations(
            internet, simulator
        )

    resolver = CDNResolver(internet, seed=config.seed, locality=config.dns_locality)
    engine = TracerouteEngine(
        internet,
        simulator,
        announced,
        seed=config.seed,
        missing_hop_rate=config.missing_hop_rate,
    )

    measurements: List[Measurement] = []
    budget_skipped: List[Probe] = []
    ledger = config.ledger
    names = resolver.names()
    with span("probe_sweep", probes=len(probes), names=len(names)):
        for probe in probes:
            if ledger is not None:
                sweep_cost = ledger.cost_of("dns", len(names)) + ledger.cost_of(
                    "traceroute", len(names)
                )
                if sweep_cost > ledger.remaining:
                    # Daily budget exhausted; the probe is skipped but no
                    # longer vanishes without trace.
                    budget_skipped.append(probe)
                    continue
            for dns_name in names:
                replica = resolver.resolve(dns_name, probe)
                if ledger is not None:
                    ledger.charge("dns")
                if replica is None:
                    continue
                if ledger is not None:
                    ledger.charge("traceroute")
                trace = engine.trace(probe.asn, probe.ip, probe.city, replica.ip)
                measurements.append(
                    Measurement(
                        probe=probe,
                        dns_name=dns_name,
                        replica=replica,
                        traceroute=trace,
                    )
                )
    metrics = get_obs().metrics
    if metrics.enabled:
        metrics.counter(
            "repro_campaign_measurements_total",
            "Measurements collected by the passive campaign.",
        ).labels(runner="reference").inc(len(measurements))
    return CampaignDataset(
        measurements=measurements,
        announced=announced,
        simulator=simulator,
        destination_asns=targets,
        destination_prefixes=destination_prefixes,
        budget_skipped=budget_skipped,
    )


# ----------------------------------------------------------------------
# Resilient runner
# ----------------------------------------------------------------------

#: Journal disposition values.
_COMPLETED = "completed"
_DEGRADED = "degraded"
_QUARANTINED = "quarantined"
_LOST = "lost"


def _garble(document: Dict, roll: float) -> Dict:
    """Corrupt a result document the way real feeds corrupt them."""
    mutated = dict(document)
    if roll < 0.25:
        mutated.pop("from_asn", None)
    elif roll < 0.5:
        mutated.pop("src_addr", None)
    elif roll < 0.75:
        mutated["type"] = "ping"
    else:
        mutated["result"] = "garbled"
    return mutated


def _truncate_hops(trace: TracerouteResult, roll: float) -> None:
    """Cut the tail of the traceroute; it no longer reaches."""
    if len(trace.hops) > 1:
        cut = 1 + int(roll * (len(trace.hops) - 1))
        trace.hops = trace.hops[:cut]
    trace.reached = False


def _inject_loop(trace: TracerouteResult, roll: float) -> None:
    """Repeat a hop window, as a forwarding loop would."""
    if len(trace.hops) < 2:
        return
    start = int(roll * (len(trace.hops) - 1))
    window = trace.hops[start : start + 2]
    trace.hops = trace.hops[: start + 2] + window * 2 + trace.hops[start + 2 :]


def _journal_header(config: CampaignConfig, plan: FaultPlan) -> Dict:
    return {
        "campaign_seed": config.seed,
        "plan_fingerprint": plan.fingerprint(),
    }


def _measurement_from_document(
    document: Dict, probe: Probe, dns_name: str, replica: Replica
) -> Measurement:
    """Rebuild a journaled measurement without re-running anything.

    Imported lazily: :mod:`repro.atlas.api` imports ``Measurement``
    from this module at import time.
    """
    from repro.atlas.api import traceroute_from_json

    trace = traceroute_from_json(document)
    return Measurement(
        probe=probe, dns_name=dns_name, replica=replica, traceroute=trace
    )


def run_resilient_campaign(
    internet: Internet,
    probes: List[Probe],
    config: Optional[CampaignConfig] = None,
    simulator: Optional[BGPSimulator] = None,
) -> CampaignDataset:
    """Run the campaign under a fault plan, with retries and checkpointing.

    Differences from :func:`run_campaign`:

    * every per-pair random choice (replica selection, traceroute
      artifacts, fault decisions, retry jitter) is derived from the
      (seed, probe, name) key instead of a shared sequential stream, so
      the output is a pure function of the configuration — a resumed
      run and an uninterrupted run produce byte-identical datasets;
    * faults from ``config.fault_plan`` fire at each substrate boundary
      and are retried per ``config.retry`` when transient;
    * finalized pairs are journaled to ``config.checkpoint_path`` with
      their credit charges, and ``config.resume`` skips journaled work
      without double-charging the ledger;
    * the returned dataset carries a :class:`RobustnessReport` in which
      every fault-free pair is accounted for exactly once.
    """
    from repro.atlas.api import traceroute_from_json, traceroute_to_json

    config = config or CampaignConfig()
    plan = config.fault_plan or FaultPlan.none(seed=config.seed)
    retry = config.retry or RetryPolicy(seed=config.seed)
    if simulator is None:
        simulator = _build_simulator(internet)
    with span("originate_destinations"):
        targets, announced, destination_prefixes = _originate_destinations(
            internet, simulator
        )
    resolver = CDNResolver(internet, seed=config.seed, locality=config.dns_locality)
    engine = TracerouteEngine(
        internet,
        simulator,
        announced,
        seed=config.seed,
        missing_hop_rate=config.missing_hop_rate,
    )

    report = RobustnessReport()
    ledger = config.ledger
    journal: Optional[CheckpointJournal] = None
    journaled: Dict[Tuple[int, str], Dict] = {}
    if config.checkpoint_path is not None:
        journal = CheckpointJournal(
            config.checkpoint_path, storage=config.journal_storage()
        )
        if config.resume and journal.exists():
            header, records = journal.load()
            expected = _journal_header(config, plan)
            if header is not None:
                for key in ("campaign_seed", "plan_fingerprint"):
                    if header.get(key) != expected[key]:
                        raise ValueError(
                            f"checkpoint {config.checkpoint_path} was written "
                            f"under a different {key.replace('_', ' ')}; "
                            "refusing to resume"
                        )
            journaled = {pair_key(record): record for record in records}
            if ledger is not None:
                # Restore prior spend so resumed work is not re-charged
                # and the budget cutoff lands on the same probe.
                ledger.spent += sum(
                    int(record.get("charged", 0)) for record in records
                )
        fresh = not journal.exists()
        journal.open_append()
        if fresh:
            journal.write_header(_journal_header(config, plan))

    measurements: List[Measurement] = []
    budget_skipped: List[Probe] = []
    names = resolver.names()
    finalized_this_run = 0

    def finalize(
        probe: Probe,
        dns_name: str,
        status: str,
        reason: Optional[str],
        charged: int,
        attempts: int,
        document: Optional[Dict],
    ) -> None:
        nonlocal finalized_this_run
        if journal is not None:
            record = {
                "probe": probe.probe_id,
                "name": dns_name,
                "status": status,
                "reason": reason,
                "charged": charged,
                "attempts": attempts,
            }
            if document is not None:
                record["document"] = document
            journal.append(record)
        finalized_this_run += 1
        if (
            config.abort_after is not None
            and finalized_this_run >= config.abort_after
        ):
            if journal is not None:
                journal.close()
            raise CampaignInterrupted(
                f"campaign killed after {finalized_this_run} finalized pair(s)",
                completed_pairs=finalized_this_run,
            )

    for probe in probes:
        probe_skipped = False
        if ledger is not None:
            sweep_cost = ledger.cost_of("dns", len(names)) + ledger.cost_of(
                "traceroute", len(names)
            )
            if sweep_cost > ledger.remaining:
                probe_skipped = True
                budget_skipped.append(probe)
                report.budget_skipped_probes.append(probe.probe_id)
        probe_down = plan.fires(FaultSite.PROBE_DROPOUT, probe.probe_id)
        for dns_name in names:
            pid = probe.probe_id
            # Ground-truth resolution: per-pair stream, no charge.  It
            # pins down what the fault-free campaign would measure, so
            # every loss can be attributed to its destination AS even
            # when the faulted campaign never learns the replica.
            pair_rng = random.Random(derive_seed(config.seed, "resolve", pid, dns_name))
            replica = resolver.resolve(dns_name, probe, rng=pair_rng)
            if replica is None:
                continue
            report.expect(replica.asn)

            key = (pid, dns_name)
            if key in journaled:
                record = journaled[key]
                report.resumed_pairs += 1
                status = record.get("status")
                reason = record.get("reason")
                if status in (_COMPLETED, _DEGRADED):
                    measurement = _measurement_from_document(
                        record["document"], probe, dns_name, replica
                    )
                    measurements.append(measurement)
                    if status == _COMPLETED:
                        report.record_completed(replica.asn)
                    else:
                        report.record_degraded(reason or "degraded")
                elif status == _QUARANTINED:
                    report.record_quarantined(reason or "malformed-result")
                else:
                    report.record_lost(reason or "lost")
                continue

            if probe_skipped:
                finalize(probe, dns_name, _LOST, "budget", 0, 0, None)
                report.record_lost("budget")
                continue
            if probe_down:
                finalize(probe, dns_name, _LOST, "probe-dropout", 0, 0, None)
                report.record_lost("probe-dropout")
                continue

            state = {"charged": 0, "dns": False, "traceroute": False}

            def attempt(attempt_no: int, probe=probe, dns_name=dns_name,
                        replica=replica, state=state, pid=pid):
                # --- probe scheduling -----------------------------------
                if plan.fires(FaultSite.PROBE_FLAP, pid, dns_name, attempt_no):
                    raise ProbeFlapError(f"probe {pid} missed round {attempt_no}")
                # --- DNS ------------------------------------------------
                # SERVFAIL is keyed per pair (persistent: retries will
                # exhaust); timeouts per attempt (transient: clear).
                if plan.fires(FaultSite.DNS_SERVFAIL, pid, dns_name):
                    raise DnsServfail(f"SERVFAIL resolving {dns_name!r}")
                if plan.fires(FaultSite.DNS_TIMEOUT, pid, dns_name, attempt_no):
                    raise DnsTimeout(f"timeout resolving {dns_name!r}")
                if ledger is not None and not state["dns"]:
                    state["charged"] += ledger.charge("dns")
                    state["dns"] = True
                # --- traceroute -----------------------------------------
                if ledger is not None and not state["traceroute"]:
                    state["charged"] += ledger.charge("traceroute")
                    state["traceroute"] = True
                trace = engine.trace(
                    probe.asn,
                    probe.ip,
                    probe.city,
                    replica.ip,
                    rng=random.Random(derive_seed(config.seed, "trace", pid, dns_name)),
                )
                status, reason = _COMPLETED, None
                if plan.fires(FaultSite.TRACEROUTE_TRUNCATE, pid, dns_name):
                    _truncate_hops(
                        trace, plan.roll(FaultSite.TRACEROUTE_TRUNCATE, pid, dns_name, "cut")
                    )
                    status, reason = _DEGRADED, "truncated"
                elif plan.fires(FaultSite.TRACEROUTE_LOOP, pid, dns_name):
                    _inject_loop(
                        trace, plan.roll(FaultSite.TRACEROUTE_LOOP, pid, dns_name, "at")
                    )
                    status, reason = _DEGRADED, "loop"
                # --- result fetch (Atlas API) ---------------------------
                if plan.fires(FaultSite.API_RATE_LIMIT, pid, dns_name, attempt_no):
                    raise ApiRateLimit(f"429 fetching results for probe {pid}")
                if plan.fires(FaultSite.API_SERVER_ERROR, pid, dns_name, attempt_no):
                    raise ApiServerError(f"503 fetching results for probe {pid}")
                document = traceroute_to_json(trace, probe_id=pid)
                document["dns_name"] = dns_name
                if plan.fires(FaultSite.TRACEROUTE_GARBLE, pid, dns_name):
                    document = _garble(
                        document,
                        plan.roll(FaultSite.TRACEROUTE_GARBLE, pid, dns_name, "how"),
                    )
                parsed = traceroute_from_json(document)  # may raise Malformed...
                parsed.truth_as_path = trace.truth_as_path
                return status, reason, parsed, document

            call_stats = RetryStats()
            try:
                status, reason, parsed, document = retry.execute(
                    attempt, key=(pid, dns_name), stats=call_stats
                )
            except MalformedResultError as error:
                report.retry.merge(call_stats)
                report.record_quarantined(error.reason)
                publish(
                    CATEGORY_QUARANTINE,
                    "pair",
                    probe=pid,
                    name=dns_name,
                    reason=error.reason,
                )
                finalize(
                    probe, dns_name, _QUARANTINED, error.reason,
                    state["charged"], call_stats.attempts, None,
                )
            except RetryExhausted as error:
                report.retry.merge(call_stats)
                report.record_lost(error.reason)
                publish(
                    CATEGORY_CAMPAIGN,
                    "pair_lost",
                    probe=pid,
                    name=dns_name,
                    reason=error.reason,
                )
                finalize(
                    probe, dns_name, _LOST, error.reason,
                    state["charged"], call_stats.attempts, None,
                )
            except BudgetExceeded:
                report.retry.merge(call_stats)
                report.record_lost("budget")
                publish(
                    CATEGORY_CAMPAIGN,
                    "pair_lost",
                    probe=pid,
                    name=dns_name,
                    reason="budget",
                )
                finalize(
                    probe, dns_name, _LOST, "budget",
                    state["charged"], call_stats.attempts, None,
                )
            else:
                report.retry.merge(call_stats)
                measurements.append(
                    Measurement(
                        probe=probe,
                        dns_name=dns_name,
                        replica=replica,
                        traceroute=parsed,
                    )
                )
                if status == _COMPLETED:
                    report.record_completed(replica.asn)
                else:
                    report.record_degraded(reason or "degraded")
                finalize(
                    probe, dns_name, status, reason,
                    state["charged"], call_stats.attempts, document,
                )

    if journal is not None:
        journal.close()
    _record_campaign_metrics(report, len(measurements))
    return CampaignDataset(
        measurements=measurements,
        announced=announced,
        simulator=simulator,
        destination_asns=targets,
        destination_prefixes=destination_prefixes,
        budget_skipped=budget_skipped,
        robustness=report,
    )


def _record_campaign_metrics(report: RobustnessReport, measurements: int) -> None:
    """Fold one resilient run's accounting into the metrics registry.

    Folded once at campaign end — never incremented per pair — so the
    instrumented hot loop pays nothing beyond the disposition events.
    """
    metrics = get_obs().metrics
    if not metrics.enabled:
        return
    metrics.counter(
        "repro_campaign_measurements_total",
        "Measurements collected by the passive campaign.",
    ).labels(runner="resilient").inc(measurements)
    pairs = metrics.counter(
        "repro_campaign_pairs_total",
        "Campaign (probe, name) pairs by final disposition.",
    )
    pairs.labels(disposition="completed").inc(report.completed)
    pairs.labels(disposition="degraded").inc(sum(report.degraded.values()))
    pairs.labels(disposition="quarantined").inc(sum(report.quarantined.values()))
    pairs.labels(disposition="lost").inc(sum(report.lost.values()))
    pairs.labels(disposition="resumed").inc(report.resumed_pairs)
    retries = metrics.counter(
        "repro_retry_attempts_total",
        "Retry attempts spent by the campaign, per fault site.",
    )
    for site, count in sorted(report.retry.retries_by_site.items()):
        retries.labels(site=site).inc(count)
    metrics.gauge(
        "repro_retry_simulated_wait_seconds",
        "Virtual seconds the campaign spent in retry backoff.",
    ).set(round(report.retry.simulated_wait_s, 3))
