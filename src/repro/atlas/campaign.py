"""The passive traceroute campaign (paper Section 3.1).

Ties the substrates together: originate every prefix of every
destination AS into the BGP simulator, resolve each content DNS name at
each probe, traceroute to the resolved replica, and collect the raw
measurements the analysis pipeline consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.atlas.budget import CreditLedger
from repro.atlas.dns import CDNResolver
from repro.atlas.probes import Probe
from repro.bgp.simulator import BGPSimulator
from repro.dataplane.traceroute import TracerouteEngine, TracerouteResult
from repro.net.ip import Prefix
from repro.net.trie import PrefixTrie
from repro.topogen.internet import Internet, Replica


@dataclass
class CampaignConfig:
    """Knobs for one campaign run.

    ``ledger`` caps the campaign by measurement credits (Section 3.1's
    "maximum probing rate allowed by RIPE Atlas"): probes whose full
    DNS+traceroute sweep no longer fits the budget are skipped.
    """

    seed: int = 0
    missing_hop_rate: float = 0.04
    dns_locality: int = 2
    ledger: Optional[CreditLedger] = None


@dataclass(frozen=True)
class Measurement:
    """One probe's traceroute toward one resolved DNS name."""

    probe: Probe
    dns_name: str
    replica: Replica
    traceroute: TracerouteResult


@dataclass
class CampaignDataset:
    """Everything a campaign produced.

    ``simulator`` stays converged on the destination prefixes, so BGP
    collectors can be pointed at it afterwards for the control-plane
    side of the analysis (prefix-specific policy criteria).
    """

    measurements: List[Measurement]
    announced: PrefixTrie
    simulator: BGPSimulator
    destination_asns: Set[int]
    destination_prefixes: Dict[int, List[Prefix]] = field(default_factory=dict)

    def successful(self) -> List[Measurement]:
        return [m for m in self.measurements if m.traceroute.reached]


def destination_ases(internet: Internet) -> Set[int]:
    """Every AS hosting at least one content replica."""
    return {
        replica.asn
        for provider in internet.content
        for replica in provider.all_replicas()
    }


def run_campaign(
    internet: Internet,
    probes: List[Probe],
    config: Optional[CampaignConfig] = None,
    simulator: Optional[BGPSimulator] = None,
) -> CampaignDataset:
    """Run the full passive campaign and return the raw dataset."""
    config = config or CampaignConfig()
    if simulator is None:
        simulator = BGPSimulator(
            internet.graph,
            policies=internet.policies,
            country_of=internet.country_of,
        )

    # Originate every prefix of every destination AS so that the BGP
    # feeds expose per-prefix export behaviour (needed by PSP criteria).
    targets = destination_ases(internet)
    announced: PrefixTrie = PrefixTrie()
    destination_prefixes: Dict[int, List[Prefix]] = {}
    for asn in sorted(targets):
        for prefix in internet.prefixes[asn]:
            simulator.originate(asn, prefix)
            announced.insert(prefix, asn)
        destination_prefixes[asn] = list(internet.prefixes[asn])

    resolver = CDNResolver(internet, seed=config.seed, locality=config.dns_locality)
    engine = TracerouteEngine(
        internet,
        simulator,
        announced,
        seed=config.seed,
        missing_hop_rate=config.missing_hop_rate,
    )

    measurements: List[Measurement] = []
    ledger = config.ledger
    names = resolver.names()
    for probe in probes:
        if ledger is not None:
            sweep_cost = ledger.cost_of("dns", len(names)) + ledger.cost_of(
                "traceroute", len(names)
            )
            if sweep_cost > ledger.remaining:
                break  # daily budget exhausted; remaining probes skipped
        for dns_name in names:
            replica = resolver.resolve(dns_name, probe)
            if ledger is not None:
                ledger.charge("dns")
            if replica is None:
                continue
            if ledger is not None:
                ledger.charge("traceroute")
            trace = engine.trace(probe.asn, probe.ip, probe.city, replica.ip)
            measurements.append(
                Measurement(
                    probe=probe,
                    dns_name=dns_name,
                    replica=replica,
                    traceroute=trace,
                )
            )
    return CampaignDataset(
        measurements=measurements,
        announced=announced,
        simulator=simulator,
        destination_asns=targets,
        destination_prefixes=destination_prefixes,
    )
