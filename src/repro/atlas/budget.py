"""Measurement-credit accounting (RIPE Atlas style).

The paper works inside platform limits twice: "We used maximum probing
rate allowed by RIPE Atlas" (Section 3.1) and "the maximum number of
RIPE Atlas probes allowed within daily probing budget limits" (Section
3.2).  This module models the credit system those limits come from:
measurements debit a ledger, and a campaign can be capped by budget
rather than by measurement count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Credit costs per measurement type, mirroring Atlas pricing shape.
DEFAULT_COSTS = {
    "traceroute": 60,
    "dns": 10,
    "ping": 10,
}


class BudgetExceeded(RuntimeError):
    """A measurement was requested beyond the remaining budget."""


@dataclass
class CreditLedger:
    """Tracks spending against a daily credit budget."""

    daily_budget: int
    costs: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_COSTS))
    spent: int = 0
    #: (measurement type, count) history for reporting.
    history: List[Tuple[str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.daily_budget < 0:
            raise ValueError("budget must be non-negative")
        # charge() is check-then-act; concurrent spenders (the serve
        # daemon charges one ledger per tenant from many request
        # threads) must not be able to overdraw between the check and
        # the debit.
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: Dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def cost_of(self, measurement_type: str, count: int = 1) -> int:
        try:
            unit = self.costs[measurement_type]
        except KeyError:
            raise ValueError(f"unknown measurement type {measurement_type!r}") from None
        return unit * count

    @property
    def remaining(self) -> int:
        return max(0, self.daily_budget - self.spent)

    def can_afford(self, measurement_type: str, count: int = 1) -> bool:
        return self.cost_of(measurement_type, count) <= self.remaining

    def charge(self, measurement_type: str, count: int = 1) -> int:
        """Debit the ledger; raises :class:`BudgetExceeded` if short.

        Atomic under concurrent spenders: the affordability check and
        the debit happen under one lock, so the ledger can never be
        driven past ``daily_budget`` by interleaved charges.
        """
        cost = self.cost_of(measurement_type, count)
        with self._lock:
            if cost > self.remaining:
                raise BudgetExceeded(
                    f"{measurement_type} x{count} costs {cost}, "
                    f"only {self.remaining} credits left"
                )
            self.spent += cost
            self.history.append((measurement_type, count))
        return cost

    def max_affordable(self, measurement_type: str) -> int:
        """How many measurements of this type the remaining budget buys."""
        unit = self.costs.get(measurement_type)
        if unit is None:
            raise ValueError(f"unknown measurement type {measurement_type!r}")
        if unit == 0:
            raise ValueError("zero-cost measurements are unmetered")
        return self.remaining // unit


def plan_campaign(
    ledger: CreditLedger, num_probes: int, num_targets: int
) -> Tuple[int, int]:
    """How much of a (probes x targets) campaign the budget allows.

    Each (probe, target) pair costs one DNS lookup plus one traceroute.
    Returns ``(probes_covered, measurements)`` under the policy the
    paper uses: keep every target and drop probes (coverage of targets
    matters more than probe count).
    """
    if num_probes < 0 or num_targets < 0:
        raise ValueError("counts must be non-negative")
    if num_targets == 0 or num_probes == 0:
        return 0, 0
    pair_cost = ledger.cost_of("dns") + ledger.cost_of("traceroute")
    affordable_pairs = ledger.remaining // pair_cost
    probes_covered = min(num_probes, affordable_pairs // num_targets)
    return probes_covered, probes_covered * num_targets
