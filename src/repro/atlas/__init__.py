"""Measurement-platform simulation (RIPE Atlas style).

Provides a globally distributed probe population (with the real
platform's Europe skew), the paper's two probe-selection strategies —
continent-balanced round-robin for the passive campaign (Section 3.1)
and greedy AS-coverage maximization for PEERING monitoring (Section
3.2) — CDN-aware DNS resolution, and the traceroute campaign runner.
"""

from repro.atlas.probes import Probe, generate_probes
from repro.atlas.selection import select_probes_balanced, select_probes_greedy
from repro.atlas.dns import CDNResolver
from repro.atlas.campaign import (
    CampaignConfig,
    CampaignDataset,
    Measurement,
    run_campaign,
    run_resilient_campaign,
)
from repro.atlas.budget import BudgetExceeded, CreditLedger, plan_campaign
from repro.atlas.api import (
    QuarantinedLine,
    dump_measurements,
    load_measurements,
    load_measurements_resilient,
)

__all__ = [
    "Probe",
    "generate_probes",
    "select_probes_balanced",
    "select_probes_greedy",
    "CDNResolver",
    "CampaignConfig",
    "CampaignDataset",
    "Measurement",
    "run_campaign",
    "run_resilient_campaign",
    "BudgetExceeded",
    "CreditLedger",
    "plan_campaign",
    "QuarantinedLine",
    "dump_measurements",
    "load_measurements",
    "load_measurements_resilient",
]
