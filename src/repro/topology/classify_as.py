"""AS-type classification following Oliveira et al. (Table 1).

The paper buckets vantage-point ASes into Tier-1, Large ISP, Small ISP
and Stub-AS using the categorization of Oliveira et al., which keys off
the size of an AS's customer cone:

* **Tier-1** — no providers and a large customer cone (the clique at the
  top of the hierarchy).
* **Large ISP** — customer cone of at least ``large_isp_cone`` ASes.
* **Small ISP** — provides transit to at least one AS but with a small
  cone.
* **Stub-AS** — no customers at all.
"""

from __future__ import annotations

from typing import Dict

from repro.topology.asys import ASType
from repro.topology.graph import ASGraph

#: Minimum customer-cone size (exclusive of self) for a Large ISP.
DEFAULT_LARGE_ISP_CONE = 50


def classify_as_type(
    graph: ASGraph, asn: int, large_isp_cone: int = DEFAULT_LARGE_ISP_CONE
) -> ASType:
    """Classify one AS by its position in the relationship hierarchy."""
    customers = graph.customers(asn)
    if not customers:
        return ASType.STUB
    cone_size = len(graph.customer_cone(asn)) - 1
    if not graph.providers(asn) and cone_size >= large_isp_cone:
        return ASType.TIER1
    if cone_size >= large_isp_cone:
        return ASType.LARGE_ISP
    return ASType.SMALL_ISP


def classify_all(
    graph: ASGraph, large_isp_cone: int = DEFAULT_LARGE_ISP_CONE
) -> Dict[int, ASType]:
    """Classify every AS in the graph.

    Customer cones are computed per AS; for the topology sizes this
    library works with (tens of thousands of edges) the straightforward
    per-AS walk is fast enough and far simpler than cone propagation.
    """
    return {
        asn: classify_as_type(graph, asn, large_isp_cone) for asn in graph.asns()
    }
