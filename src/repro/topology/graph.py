"""The AS-level relationship graph.

:class:`ASGraph` is the central data structure of the library: a graph
of ASes whose edges are annotated with business relationships.  Both
the ground-truth topology produced by the generator and the CAIDA-like
inferred topologies consumed by the analysis are instances of it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.topology.asys import AS
from repro.topology.relationships import Relationship


class AdjacencyIndex:
    """Relationship-partitioned adjacency lists for routing computation.

    The Gao-Rexford engine's three construction stages each walk one
    relationship class of edges; pre-partitioning the adjacency into the
    lists each stage needs avoids re-filtering (and copying) the full
    neighbor map once per node per routing tree.  Lists preserve the
    neighbor map's insertion order so traversals (and therefore parent
    tie-breaking) are identical to filtering in place.
    """

    __slots__ = ("up", "peers", "down")

    def __init__(
        self,
        up: Dict[int, Tuple[int, ...]],
        peers: Dict[int, Tuple[int, ...]],
        down: Dict[int, Tuple[int, ...]],
    ) -> None:
        #: Neighbors that are providers or siblings of the key AS
        #: (customer routes propagate key -> neighbor).
        self.up = up
        #: Neighbors that are peers of the key AS.
        self.peers = peers
        #: Neighbors that are customers of the key AS
        #: (provider routes propagate key -> neighbor).
        self.down = down

    @classmethod
    def build(cls, neighbors: Dict[int, Dict[int, Relationship]]) -> "AdjacencyIndex":
        up: Dict[int, Tuple[int, ...]] = {}
        peers: Dict[int, Tuple[int, ...]] = {}
        down: Dict[int, Tuple[int, ...]] = {}
        for asn, edges in neighbors.items():
            up_list: List[int] = []
            peer_list: List[int] = []
            down_list: List[int] = []
            for neighbor, rel in edges.items():
                if rel is Relationship.CUSTOMER:
                    down_list.append(neighbor)
                elif rel is Relationship.PEER:
                    peer_list.append(neighbor)
                else:  # PROVIDER or SIBLING
                    up_list.append(neighbor)
            if up_list:
                up[asn] = tuple(up_list)
            if peer_list:
                peers[asn] = tuple(peer_list)
            if down_list:
                down[asn] = tuple(down_list)
        return cls(up, peers, down)


class ASGraph:
    """Graph of ASes with relationship-annotated edges.

    Edges are stored from both endpoints' perspectives so that
    ``relationship(a, b)`` answers "what is b to a?" in O(1).
    """

    #: Class-level defaults keep instances unpickled from older
    #: serializations working (their instance dicts lack these).
    _version: int = 0
    _index_cache: Optional[Tuple[int, AdjacencyIndex]] = None

    def __init__(self) -> None:
        self._ases: Dict[int, AS] = {}
        self._neighbors: Dict[int, Dict[int, Relationship]] = {}
        self._version = 0
        self._index_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_as(self, asys: AS) -> None:
        """Register an AS; replaces any prior record for the same ASN."""
        self._ases[asys.asn] = asys
        self._neighbors.setdefault(asys.asn, {})
        self._version += 1

    def ensure_asn(self, asn: int) -> None:
        """Register a bare ASN with no metadata if unseen.

        Relationship files mention ASNs with no administrative data; the
        graph must still hold edges for them.
        """
        if asn not in self._ases:
            self.add_as(AS(asn=asn))

    def add_link(self, asn: int, neighbor: int, relationship: Relationship) -> None:
        """Add an edge; ``relationship`` is the neighbor's role to ``asn``.

        ``add_link(1, 2, Relationship.CUSTOMER)`` records that AS2 is a
        customer of AS1.  The reverse direction is stored automatically.
        Re-adding an existing edge overwrites its relationship.
        """
        if asn == neighbor:
            raise ValueError(f"self-link on AS{asn}")
        self.ensure_asn(asn)
        self.ensure_asn(neighbor)
        self._neighbors[asn][neighbor] = relationship
        self._neighbors[neighbor][asn] = relationship.flipped()
        self._version += 1

    def remove_link(self, asn: int, neighbor: int) -> bool:
        """Remove the edge if present; returns whether it existed."""
        if neighbor not in self._neighbors.get(asn, {}):
            return False
        del self._neighbors[asn][neighbor]
        del self._neighbors[neighbor][asn]
        self._version += 1
        return True

    def remove_as(self, asn: int) -> bool:
        """Remove an AS and its incident links; returns whether it existed.

        The inverse of :meth:`add_as` plus edge cleanup, used by the
        temporal delta pipeline when a snapshot drops an AS entirely.
        """
        if asn not in self._ases:
            return False
        for neighbor in list(self._neighbors.get(asn, ())):
            del self._neighbors[neighbor][asn]
        self._neighbors.pop(asn, None)
        del self._ases[asn]
        self._version += 1
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __len__(self) -> int:
        return len(self._ases)

    def asns(self) -> Iterator[int]:
        return iter(self._ases)

    def ases(self) -> Iterator[AS]:
        return iter(self._ases.values())

    def get_as(self, asn: int) -> AS:
        return self._ases[asn]

    def has_link(self, asn: int, neighbor: int) -> bool:
        return neighbor in self._neighbors.get(asn, {})

    def relationship(self, asn: int, neighbor: int) -> Optional[Relationship]:
        """What ``neighbor`` is to ``asn``; ``None`` if not adjacent."""
        return self._neighbors.get(asn, {}).get(neighbor)

    def neighbors(self, asn: int) -> Dict[int, Relationship]:
        """Mapping neighbor ASN -> its relationship to ``asn``."""
        return dict(self._neighbors.get(asn, {}))

    def neighbor_set(self, asn: int) -> Iterable[int]:
        """The neighbor ASNs of ``asn`` without copying (read-only view)."""
        return self._neighbors.get(asn, {}).keys()

    def routing_adjacency(self) -> AdjacencyIndex:
        """Relationship-partitioned adjacency, cached until mutation.

        The cache key is an internal version counter bumped by every
        mutator, so callers may hold the graph across edits and still
        observe a consistent, current index.
        """
        cache = self._index_cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        index = AdjacencyIndex.build(self._neighbors)
        self._index_cache = (self._version, index)
        return index

    def neighbors_by_class(self, asn: int, relationship: Relationship) -> List[int]:
        return [
            neighbor
            for neighbor, rel in self._neighbors.get(asn, {}).items()
            if rel is relationship
        ]

    def customers(self, asn: int) -> List[int]:
        return self.neighbors_by_class(asn, Relationship.CUSTOMER)

    def providers(self, asn: int) -> List[int]:
        return self.neighbors_by_class(asn, Relationship.PROVIDER)

    def peers(self, asn: int) -> List[int]:
        return self.neighbors_by_class(asn, Relationship.PEER)

    def siblings(self, asn: int) -> List[int]:
        return self.neighbors_by_class(asn, Relationship.SIBLING)

    def degree(self, asn: int) -> int:
        return len(self._neighbors.get(asn, {}))

    def links(self) -> Iterator[Tuple[int, int, Relationship]]:
        """Iterate each undirected edge once.

        Edges are yielded as ``(a, b, rel)`` where ``rel`` is b's role
        to a, normalized so that customer-provider edges appear with the
        provider first (``rel`` is CUSTOMER) and symmetric edges with
        the lower ASN first.
        """
        for asn in sorted(self._neighbors):
            for neighbor, rel in sorted(self._neighbors[asn].items()):
                if rel is Relationship.CUSTOMER:
                    yield asn, neighbor, rel
                elif rel in (Relationship.PEER, Relationship.SIBLING) and asn < neighbor:
                    yield asn, neighbor, rel

    def num_links(self) -> int:
        return sum(1 for _ in self.links())

    def customer_cone(self, asn: int) -> frozenset:
        """The set of ASNs reachable by walking only provider->customer
        edges from ``asn``, including ``asn`` itself.

        This is CAIDA's "customer cone", used by the AS-type classifier.
        """
        cone = {asn}
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            for customer in self.customers(current):
                if customer not in cone:
                    cone.add(customer)
                    frontier.append(customer)
        return frozenset(cone)

    def copy(self) -> "ASGraph":
        clone = ASGraph()
        clone._ases = dict(self._ases)
        clone._neighbors = {asn: dict(nbrs) for asn, nbrs in self._neighbors.items()}
        return clone

    def subgraph(self, asns: Iterable[int]) -> "ASGraph":
        """The induced subgraph on ``asns`` (links between kept ASes)."""
        keep = set(asns)
        sub = ASGraph()
        for asn in keep:
            if asn in self._ases:
                sub.add_as(self._ases[asn])
        for asn, neighbor, rel in self.links():
            if asn in keep and neighbor in keep:
                sub.add_link(asn, neighbor, rel)
        return sub
