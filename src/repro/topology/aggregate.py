"""Multi-snapshot topology aggregation (paper Section 3.3).

The paper aggregates five monthly CAIDA snapshots to mitigate transient
link failures, resolving conflicting inferences by a majority poll that
weighs recent snapshots higher: *"if the latest two months had the same
inference, we used that inference regardless of the first three
months."*  This module implements exactly that policy over any number
of snapshots.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship

# A pair's inference is normalized to one of these codes with the pair
# ordered (low ASN, high ASN).
_PEER = "peer"
_SIBLING = "sibling"
_LOW_PROVIDER = "low-provider"  # the lower ASN is the provider
_HIGH_PROVIDER = "high-provider"


def _normalized_inference(a: int, b: int, rel: Relationship) -> Tuple[Tuple[int, int], str]:
    """Normalize an edge to an ordered pair plus inference code.

    ``rel`` is b's role to a, as yielded by :meth:`ASGraph.links`.
    """
    low, high = min(a, b), max(a, b)
    if rel is Relationship.PEER:
        return (low, high), _PEER
    if rel is Relationship.SIBLING:
        return (low, high), _SIBLING
    if rel is Relationship.CUSTOMER:  # a is the provider of b
        code = _LOW_PROVIDER if a == low else _HIGH_PROVIDER
        return (low, high), code
    # rel is PROVIDER: b is the provider of a
    code = _LOW_PROVIDER if b == low else _HIGH_PROVIDER
    return (low, high), code


def _snapshot_inferences(graph: ASGraph) -> Dict[Tuple[int, int], str]:
    inferences: Dict[Tuple[int, int], str] = {}
    for a, b, rel in graph.links():
        pair, code = _normalized_inference(a, b, rel)
        inferences[pair] = code
    return inferences


def _resolve(history: List[Tuple[int, str]], num_snapshots: int) -> str:
    """Pick one inference from ``(snapshot_index, code)`` observations.

    Recency override first (latest two snapshots agreeing win), then a
    recency-weighted majority, ties broken toward the most recent.
    """
    by_index = dict(history)
    latest = by_index.get(num_snapshots - 1)
    second_latest = by_index.get(num_snapshots - 2)
    if latest is not None and latest == second_latest:
        return latest

    weights: Counter = Counter()
    last_seen: Dict[str, int] = {}
    for index, code in history:
        weights[code] += index + 1
        last_seen[code] = max(last_seen.get(code, -1), index)
    best_weight = max(weights.values())
    candidates = [code for code, weight in weights.items() if weight == best_weight]
    # Break ties toward the code seen most recently.
    return max(candidates, key=lambda code: last_seen[code])


def aggregate_snapshots(
    snapshots: Sequence[ASGraph], min_appearances: int = 1
) -> ASGraph:
    """Merge topology snapshots (ordered oldest to newest) into one.

    ``min_appearances`` drops links seen in fewer snapshots, which
    filters one-off transient edges when set above 1.
    """
    if not snapshots:
        raise ValueError("no snapshots to aggregate")
    num_snapshots = len(snapshots)

    histories: Dict[Tuple[int, int], List[Tuple[int, str]]] = {}
    for index, snapshot in enumerate(snapshots):
        for pair, code in _snapshot_inferences(snapshot).items():
            histories.setdefault(pair, []).append((index, code))

    merged = ASGraph()
    # Carry over AS metadata, newest snapshot winning.
    for snapshot in snapshots:
        for asys in snapshot.ases():
            merged.add_as(asys)

    for (low, high), history in histories.items():
        if len(history) < min_appearances:
            continue
        code = _resolve(history, num_snapshots)
        if code == _PEER:
            merged.add_link(low, high, Relationship.PEER)
        elif code == _SIBLING:
            merged.add_link(low, high, Relationship.SIBLING)
        elif code == _LOW_PROVIDER:
            merged.add_link(low, high, Relationship.CUSTOMER)
        else:
            merged.add_link(high, low, Relationship.CUSTOMER)
    return merged
