"""CAIDA serial-format relationship file I/O.

CAIDA publishes inferred AS relationships as pipe-separated lines::

    # comment lines start with '#'
    <provider-asn>|<customer-asn>|-1
    <peer-asn>|<peer-asn>|0
    <sibling-asn>|<sibling-asn>|2   (serial-2 extension used here)

We read and write this format so inferred topologies can be persisted,
diffed and aggregated exactly like the paper handles CAIDA's five
monthly snapshots.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO, Tuple, Union

from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship

#: Relationship encoding used by CAIDA's files, plus a sibling code.
_CODE_TO_REL = {
    -1: Relationship.CUSTOMER,  # first AS is the provider of the second
    0: Relationship.PEER,
    2: Relationship.SIBLING,
}
_REL_TO_CODE = {rel: code for code, rel in _CODE_TO_REL.items()}


def parse_relationship_lines(lines: Iterable[str]) -> ASGraph:
    """Build an :class:`ASGraph` from serial-format lines."""
    graph = ASGraph()
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if len(fields) < 3:
            raise ValueError(f"line {line_number}: expected a|b|code, got {line!r}")
        try:
            first, second, code = int(fields[0]), int(fields[1]), int(fields[2])
        except ValueError as exc:
            raise ValueError(f"line {line_number}: non-integer field in {line!r}") from exc
        relationship = _CODE_TO_REL.get(code)
        if relationship is None:
            raise ValueError(f"line {line_number}: unknown relationship code {code}")
        graph.add_link(first, second, relationship)
    return graph


def load_relationships(source: Union[str, Path, TextIO]) -> ASGraph:
    """Load a serial-format relationship file from a path or stream."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return parse_relationship_lines(handle)
    return parse_relationship_lines(source)


def dump_relationships(graph: ASGraph, sink: Union[str, Path, TextIO, None] = None) -> str:
    """Serialize ``graph`` to serial format; returns the text.

    When ``sink`` is a path or stream the text is also written there.
    """
    buffer = io.StringIO()
    buffer.write("# repro AS relationships (serial format)\n")
    buffer.write("# <a>|<b>|<code>: -1 = a provider of b, 0 = peers, 2 = siblings\n")
    for asn, neighbor, rel in graph.links():
        buffer.write(f"{asn}|{neighbor}|{_REL_TO_CODE[rel]}\n")
    text = buffer.getvalue()
    if isinstance(sink, (str, Path)):
        with open(sink, "w", encoding="utf-8") as handle:
            handle.write(text)
    elif sink is not None:
        sink.write(text)
    return text


def link_set(graph: ASGraph) -> frozenset:
    """Normalized edge set for diffing two topologies.

    Each edge is ``(a, b, code)`` as produced by :meth:`ASGraph.links`.
    """
    return frozenset((a, b, _REL_TO_CODE[rel]) for a, b, rel in graph.links())


def diff_topologies(old: ASGraph, new: ASGraph) -> Tuple[frozenset, frozenset]:
    """Edges ``(added, removed)`` between two topologies."""
    old_links = link_set(old)
    new_links = link_set(new)
    return new_links - old_links, old_links - new_links
