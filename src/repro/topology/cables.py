"""Undersea cable registry (paper Section 6, Table 4).

Some undersea cables are operated by independent organizations with
their own ASNs and prefixes (the paper's EAC-C2C/PACNET example).  These
ASes provide point-to-point transit along the cable, originate no
traffic, and confuse relationship inference — the paper likens them to
"high-latency, high-cost IXPs".  The paper identifies them from the
TeleGeography Submarine Cable Map; we model that map as a
:class:`CableRegistry` the generator populates and the analysis queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class Cable:
    """One submarine cable system."""

    name: str
    landing_countries: FrozenSet[str]
    #: ASN of the independent operator, or ``None`` when the cable is
    #: jointly owned by large ISPs (Pan-American Crossing style) and has
    #: no ASN of its own.
    operator_asn: Optional[int] = None
    owners: FrozenSet[str] = frozenset()

    def is_independent(self) -> bool:
        return self.operator_asn is not None


class CableRegistry:
    """Queryable set of cables, indexed by operator ASN."""

    def __init__(self, cables: Iterable[Cable] = ()) -> None:
        self._cables: List[Cable] = []
        self._by_asn: Dict[int, Cable] = {}
        for cable in cables:
            self.add(cable)

    def add(self, cable: Cable) -> None:
        self._cables.append(cable)
        if cable.operator_asn is not None:
            if cable.operator_asn in self._by_asn:
                raise ValueError(
                    f"AS{cable.operator_asn} already operates "
                    f"{self._by_asn[cable.operator_asn].name}"
                )
            self._by_asn[cable.operator_asn] = cable

    def __len__(self) -> int:
        return len(self._cables)

    def cables(self) -> List[Cable]:
        return list(self._cables)

    def cable_asns(self) -> Set[int]:
        """ASNs of independently operated cables."""
        return set(self._by_asn)

    def is_cable_asn(self, asn: int) -> bool:
        return asn in self._by_asn

    def cable_for_asn(self, asn: int) -> Optional[Cable]:
        return self._by_asn.get(asn)

    def cables_between(self, country_a: str, country_b: str) -> List[Cable]:
        """Cables landing in both countries."""
        return [
            cable
            for cable in self._cables
            if country_a in cable.landing_countries
            and country_b in cable.landing_countries
        ]


def paths_with_cable_asns(
    registry: CableRegistry, paths: Iterable[Tuple[int, ...]]
) -> List[Tuple[int, ...]]:
    """Filter AS paths that traverse an independent cable AS."""
    cable_asns = registry.cable_asns()
    return [path for path in paths if any(asn in cable_asns for asn in path)]
