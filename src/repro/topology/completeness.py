"""Topology-completeness analysis (Oliveira et al. style).

The paper's motivation leans on the known incompleteness of inferred
topologies: route monitors "expose few paths to and from eyeball and
content networks" and miss "the rich peering mesh which exists near the
edge".  Given a ground-truth graph and an inferred one, this module
quantifies exactly that: per-relationship-class recall, precision, and
label accuracy, split by whether a link touches the network edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship


def _pair(a: int, b: int) -> Tuple[int, int]:
    return (min(a, b), max(a, b))


def _normalized_links(graph: ASGraph) -> Dict[Tuple[int, int], str]:
    """Each undirected link mapped to a direction-aware label."""
    links: Dict[Tuple[int, int], str] = {}
    for a, b, rel in graph.links():
        if rel is Relationship.CUSTOMER:
            label = f"c2p:{a}>{b}"  # a is the provider
        elif rel is Relationship.SIBLING:
            label = "sibling"
        else:
            label = "p2p"
        links[_pair(a, b)] = label
    return links


def _edge_asns(graph: ASGraph, degree_threshold: int = 4) -> Set[int]:
    return {
        asn
        for asn in graph.asns()
        if not graph.customers(asn) or graph.degree(asn) <= degree_threshold
    }


@dataclass
class CompletenessReport:
    """How much of the truth an inferred topology captures."""

    true_links: int = 0
    inferred_links: int = 0
    found_links: int = 0
    correctly_labeled: int = 0
    spurious_links: int = 0
    #: Recall split by link population.
    edge_peering_true: int = 0
    edge_peering_found: int = 0
    core_true: int = 0
    core_found: int = 0

    @property
    def recall(self) -> float:
        return 0.0 if self.true_links == 0 else self.found_links / self.true_links

    @property
    def precision(self) -> float:
        if self.inferred_links == 0:
            return 0.0
        return (self.inferred_links - self.spurious_links) / self.inferred_links

    @property
    def label_accuracy(self) -> float:
        """Among found links, the fraction with the right label."""
        return 0.0 if self.found_links == 0 else self.correctly_labeled / self.found_links

    @property
    def edge_peering_recall(self) -> float:
        if self.edge_peering_true == 0:
            return 0.0
        return self.edge_peering_found / self.edge_peering_true

    @property
    def core_recall(self) -> float:
        return 0.0 if self.core_true == 0 else self.core_found / self.core_true


def completeness(truth: ASGraph, inferred: ASGraph) -> CompletenessReport:
    """Compare an inferred topology against the ground truth."""
    true_links = _normalized_links(truth)
    inferred_links = _normalized_links(inferred)
    edge = _edge_asns(truth)

    report = CompletenessReport(
        true_links=len(true_links),
        inferred_links=len(inferred_links),
    )
    for pair, label in true_links.items():
        a, b = pair
        is_edge_peering = label == "p2p" and a in edge and b in edge
        if is_edge_peering:
            report.edge_peering_true += 1
        else:
            report.core_true += 1
        inferred_label = inferred_links.get(pair)
        if inferred_label is None:
            continue
        report.found_links += 1
        if is_edge_peering:
            report.edge_peering_found += 1
        else:
            report.core_found += 1
        # Sibling links have no inference class; any label counts as
        # found but never as correctly labeled.
        if inferred_label == label:
            report.correctly_labeled += 1
    report.spurious_links = sum(
        1 for pair in inferred_links if pair not in true_links
    )
    return report
