"""Customer cones and AS ranking (Luckie et al. style).

CAIDA's AS Rank orders ASes by customer-cone size — the set of ASes
reachable by walking only provider-to-customer links.  The per-AS walk
in :mod:`repro.topology.graph` is fine for a handful of queries; this
module computes every cone in one memoized pass over the (acyclic)
customer hierarchy, and derives the ranking and transit degrees used to
characterize topologies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.topology.graph import ASGraph


def customer_cones(graph: ASGraph) -> Dict[int, FrozenSet[int]]:
    """The customer cone of every AS, each including the AS itself.

    Uses memoized depth-first traversal over provider-to-customer
    edges.  The customer hierarchy of a sane topology is acyclic; if a
    cycle exists (possible in hand-built or corrupted inputs), members
    of the cycle receive mutually consistent cones rather than
    recursing forever.
    """
    cones: Dict[int, FrozenSet[int]] = {}
    in_progress: Dict[int, set] = {}

    def visit(asn: int) -> set:
        done = cones.get(asn)
        if done is not None:
            return set(done)
        pending = in_progress.get(asn)
        if pending is not None:
            # Back edge: a provider-customer cycle.  Return what we
            # have so far; the cycle members end up sharing members.
            return pending
        cone = {asn}
        in_progress[asn] = cone
        for customer in graph.customers(asn):
            cone.update(visit(customer))
        del in_progress[asn]
        cones[asn] = frozenset(cone)
        return cone

    for asn in graph.asns():
        visit(asn)
    return cones


def cone_sizes(graph: ASGraph) -> Dict[int, int]:
    """Customer-cone size per AS (the AS itself included)."""
    return {asn: len(cone) for asn, cone in customer_cones(graph).items()}


def as_rank(graph: ASGraph) -> List[Tuple[int, int, int]]:
    """``(rank, asn, cone size)`` rows, largest cone first.

    Ties share a cone size but still receive distinct consecutive
    ranks, ordered by ASN for determinism — the presentation CAIDA's
    AS Rank uses.
    """
    sizes = cone_sizes(graph)
    ordered = sorted(sizes.items(), key=lambda item: (-item[1], item[0]))
    return [
        (rank, asn, size) for rank, (asn, size) in enumerate(ordered, start=1)
    ]


def transit_degree(graph: ASGraph, asn: int) -> int:
    """Neighbors this AS transits traffic for or through.

    The customer+provider degree: peers exchange traffic but neither
    side transits for the other.
    """
    return len(graph.customers(asn)) + len(graph.providers(asn))
