"""Autonomous System objects.

An :class:`AS` carries the administrative facts the analysis needs:
which organization runs it, which countries it is registered and
operates in, what kind of network it is (Table 1's stub / small ISP /
large ISP / tier-1 taxonomy), and special roles such as content
provider or undersea-cable operator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple


class ASType(enum.Enum):
    """AS categories following Oliveira et al., as used in Table 1."""

    STUB = "Stub-AS"
    SMALL_ISP = "Small ISP"
    LARGE_ISP = "Large ISP"
    TIER1 = "Tier-1"

    def __str__(self) -> str:
        return self.value


class ASRole(enum.Enum):
    """Functional role of an AS in the synthetic Internet."""

    TRANSIT = "transit"
    EYEBALL = "eyeball"
    CONTENT = "content"
    CDN = "cdn"
    CABLE = "cable"
    EDUCATION = "education"
    IXP_ROUTE_SERVER = "ixp"


@dataclass(frozen=True)
class AS:
    """Static facts about one Autonomous System.

    ``country`` is the whois registration country (what Table 3's
    domestic-path analysis sees); ``presence`` is the set of countries
    the AS actually operates routers in, which may be wider for
    multinational networks.
    """

    asn: int
    name: str = ""
    org_id: str = ""
    country: str = ""
    presence: FrozenSet[str] = frozenset()
    role: ASRole = ASRole.TRANSIT
    continent: str = ""

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn}")
        if not self.presence and self.country:
            object.__setattr__(self, "presence", frozenset({self.country}))

    def is_multinational(self) -> bool:
        return len(self.presence) > 1

    def operates_in(self, country: str) -> bool:
        return country in self.presence

    def __str__(self) -> str:
        return f"AS{self.asn}"


@dataclass(frozen=True)
class ASPath:
    """An AS-level path as a tuple of ASNs, origin last.

    Paths never contain loops except through explicit poisoning, which
    is represented at the BGP layer (AS-sets), not here.
    """

    hops: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("empty AS path")

    @property
    def source(self) -> int:
        return self.hops[0]

    @property
    def destination(self) -> int:
        return self.hops[-1]

    def __len__(self) -> int:
        return len(self.hops)

    def __iter__(self):
        return iter(self.hops)

    def __getitem__(self, index):
        return self.hops[index]

    def suffix_from(self, asn: int) -> Optional["ASPath"]:
        """The sub-path from ``asn`` to the destination, or ``None``."""
        try:
            index = self.hops.index(asn)
        except ValueError:
            return None
        return ASPath(self.hops[index:])

    def adjacencies(self) -> Tuple[Tuple[int, int], ...]:
        """Consecutive (upstream, downstream) AS pairs along the path."""
        return tuple(zip(self.hops[:-1], self.hops[1:]))

    def __str__(self) -> str:
        return " ".join(str(h) for h in self.hops)
