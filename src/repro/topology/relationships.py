"""Business relationship types between ASes.

A relationship is always expressed from the point of view of one AS
toward a neighbor: ``Relationship.CUSTOMER`` means "the neighbor is my
customer".  The Gao-Rexford local-preference order (customer routes over
peer routes over provider routes) is encoded in :meth:`Relationship.rank`
— lower rank means cheaper, hence preferred.
"""

from __future__ import annotations

import enum


class Relationship(enum.Enum):
    """Role of a neighbor AS relative to the local AS."""

    CUSTOMER = "customer"
    PEER = "peer"
    PROVIDER = "provider"
    SIBLING = "sibling"

    def flipped(self) -> "Relationship":
        """The same link seen from the other endpoint."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return self

    def rank(self) -> int:
        """Gao-Rexford preference rank; lower is preferred (cheaper).

        Sibling links carry full routing tables in both directions and
        organizations do not charge themselves, so siblings rank with
        customers.
        """
        if self in (Relationship.CUSTOMER, Relationship.SIBLING):
            return 0
        if self is Relationship.PEER:
            return 1
        return 2

    def exports_all(self) -> bool:
        """Whether *all* routes may be exported to this neighbor.

        Under Gao-Rexford export policy, everything is announced to
        customers (they pay for it) and to siblings (same organization);
        peers and providers only receive customer routes.
        """
        return self in (Relationship.CUSTOMER, Relationship.SIBLING)


#: Relationship classes ordered from most to least preferred.
PREFERENCE_ORDER = (Relationship.CUSTOMER, Relationship.PEER, Relationship.PROVIDER)


def can_export(learned_from: Relationship, export_to: Relationship) -> bool:
    """Gao-Rexford export rule.

    A route learned from ``learned_from`` may be announced to a neighbor
    of class ``export_to`` iff the route is a customer/sibling route or
    the neighbor is a customer/sibling.
    """
    return learned_from.exports_all() or export_to.exports_all()
