"""AS-level topology: objects, relationships, graphs and datasets.

This subpackage holds everything the paper's analysis consumes about the
AS-level Internet: the graph of inferred business relationships (CAIDA
serial-format I/O plus the multi-snapshot aggregation of Section 3.3),
the complex-relationship dataset of Giotsas et al. used by the
``Complex`` refinement, AS-type classification behind Table 1, and the
undersea-cable AS registry behind Table 4.
"""

from repro.topology.asys import AS, ASType
from repro.topology.relationships import Relationship
from repro.topology.graph import ASGraph
from repro.topology.serial import load_relationships, dump_relationships
from repro.topology.aggregate import aggregate_snapshots
from repro.topology.classify_as import classify_as_type
from repro.topology.complex_rel import ComplexRelationships, HybridEntry, PartialTransitEntry
from repro.topology.cables import CableRegistry, Cable
from repro.topology.completeness import CompletenessReport, completeness
from repro.topology.asrank import as_rank, cone_sizes, customer_cones, transit_degree

__all__ = [
    "AS",
    "ASType",
    "Relationship",
    "ASGraph",
    "load_relationships",
    "dump_relationships",
    "aggregate_snapshots",
    "classify_as_type",
    "ComplexRelationships",
    "HybridEntry",
    "PartialTransitEntry",
    "CableRegistry",
    "Cable",
    "CompletenessReport",
    "completeness",
    "as_rank",
    "cone_sizes",
    "customer_cones",
    "transit_degree",
]
