"""Complex AS relationships (hybrid and partial transit).

Giotsas et al. ("Inferring Complex AS Relationships", IMC 2014) extend
plain relationship inference with two cases the paper's ``Complex``
refinement consumes:

* **Hybrid relationships** — an AS pair whose relationship differs by
  interconnection city (e.g. peers in Frankfurt, customer-provider in
  Singapore).  The dataset maps (AS pair, city) to a relationship.
* **Partial transit** — a provider that carries a customer's traffic
  only toward a subset of destinations (typically the provider's peers
  and customers, not its own providers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.topology.relationships import Relationship


@dataclass(frozen=True)
class HybridEntry:
    """Relationship of ``neighbor`` to ``asn`` at one city."""

    asn: int
    neighbor: int
    city: str
    relationship: Relationship


@dataclass(frozen=True)
class PartialTransitEntry:
    """``provider`` transits ``customer`` only toward some destinations.

    ``scope`` restricts which routes the provider exports to the
    customer's announcements: ``"peers-and-customers"`` (the common
    arrangement) or an explicit set of destination ASNs.
    """

    provider: int
    customer: int
    scope: str = "peers-and-customers"
    destinations: FrozenSet[int] = frozenset()


class ComplexRelationships:
    """A queryable dataset of hybrid and partial-transit relationships."""

    def __init__(
        self,
        hybrid: Iterable[HybridEntry] = (),
        partial_transit: Iterable[PartialTransitEntry] = (),
    ) -> None:
        self._hybrid: Dict[Tuple[int, int], Dict[str, Relationship]] = {}
        for entry in hybrid:
            self.add_hybrid(entry)
        self._partial: Dict[Tuple[int, int], PartialTransitEntry] = {}
        for entry in partial_transit:
            self.add_partial_transit(entry)

    # ------------------------------------------------------------------
    # Hybrid relationships
    # ------------------------------------------------------------------
    def add_hybrid(self, entry: HybridEntry) -> None:
        key = (entry.asn, entry.neighbor)
        self._hybrid.setdefault(key, {})[entry.city] = entry.relationship
        flipped = HybridEntry(
            asn=entry.neighbor,
            neighbor=entry.asn,
            city=entry.city,
            relationship=entry.relationship.flipped(),
        )
        reverse_key = (flipped.asn, flipped.neighbor)
        self._hybrid.setdefault(reverse_key, {})[flipped.city] = flipped.relationship

    def has_hybrid(self, asn: int, neighbor: int) -> bool:
        return (asn, neighbor) in self._hybrid

    def hybrid_relationship(
        self, asn: int, neighbor: int, city: Optional[str]
    ) -> Optional[Relationship]:
        """Relationship of ``neighbor`` to ``asn`` at ``city``.

        Returns ``None`` when the pair has no hybrid entry for that
        city — the caller should fall back to the base topology.
        """
        if city is None:
            return None
        return self._hybrid.get((asn, neighbor), {}).get(city)

    def hybrid_pairs(self) -> List[Tuple[int, int]]:
        """All (asn, neighbor) pairs with at least one hybrid entry."""
        return sorted(self._hybrid)

    def hybrid_entries(self) -> List[HybridEntry]:
        """Every hybrid entry, one orientation per pair (low ASN first)."""
        entries: List[HybridEntry] = []
        for (asn, neighbor), cities in sorted(self._hybrid.items()):
            if asn > neighbor:
                continue
            for city, relationship in sorted(cities.items()):
                entries.append(
                    HybridEntry(
                        asn=asn,
                        neighbor=neighbor,
                        city=city,
                        relationship=relationship,
                    )
                )
        return entries

    # ------------------------------------------------------------------
    # Partial transit
    # ------------------------------------------------------------------
    def add_partial_transit(self, entry: PartialTransitEntry) -> None:
        if entry.scope not in ("peers-and-customers", "explicit"):
            raise ValueError(f"unknown partial-transit scope {entry.scope!r}")
        if entry.scope == "explicit" and not entry.destinations:
            raise ValueError("explicit partial transit needs destinations")
        self._partial[(entry.provider, entry.customer)] = entry

    def partial_transit(self, provider: int, customer: int) -> Optional[PartialTransitEntry]:
        return self._partial.get((provider, customer))

    def partial_transit_entries(self) -> List[PartialTransitEntry]:
        return [self._partial[key] for key in sorted(self._partial)]

    def __len__(self) -> int:
        # Each hybrid pair is stored in both orientations; count once.
        pairs = {tuple(sorted(key)) for key in self._hybrid}
        return len(pairs) + len(self._partial)
