"""Low-level networking primitives.

This subpackage provides the IPv4 address and prefix types used
throughout the library, and a binary radix trie implementing
longest-prefix match, the lookup primitive behind IP-to-AS mapping and
data-plane forwarding.
"""

from repro.net.ip import IPAddress, Prefix
from repro.net.trie import PrefixTrie

__all__ = ["IPAddress", "Prefix", "PrefixTrie"]
