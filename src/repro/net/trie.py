"""Binary radix trie with longest-prefix match.

This is the lookup structure behind both the simulated data plane
(forwarding tables) and the measurement pipeline (IP-to-AS mapping).
Values are arbitrary Python objects; inserting the same prefix twice
replaces the value, matching how a routing table holds exactly one best
route per prefix.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, Tuple, TypeVar

from repro.net.ip import IPAddress, Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps IPv4 prefixes to values with longest-prefix-match lookup."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        for bit_index in range(prefix.length):
            bit = (prefix.network >> (31 - bit_index)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> bool:
        """Remove the entry at ``prefix``; returns whether it existed.

        Interior nodes are left in place — the trie is rebuilt rather
        than compacted in the workloads we run, so lazy deletion keeps
        the code simple without a measurable memory cost.
        """
        node: Optional[_Node[V]] = self._root
        for bit_index in range(prefix.length):
            if node is None:
                return False
            bit = (prefix.network >> (31 - bit_index)) & 1
            node = node.children[bit]
        if node is None or not node.has_value:
            return False
        node.value = None
        node.has_value = False
        self._size -= 1
        return True

    def lookup(self, address: IPAddress) -> Optional[V]:
        """Longest-prefix-match lookup; ``None`` when nothing covers it."""
        match = self.lookup_with_prefix(address)
        return None if match is None else match[1]

    def lookup_with_prefix(self, address: IPAddress) -> Optional[Tuple[Prefix, V]]:
        """Like :meth:`lookup` but also returns the matched prefix."""
        node: Optional[_Node[V]] = self._root
        best: Optional[Tuple[Prefix, V]] = None
        if self._root.has_value:
            best = (Prefix(0, 0), self._root.value)  # type: ignore[arg-type]
        for bit_index in range(32):
            if node is None:
                break
            bit = (address.value >> (31 - bit_index)) & 1
            node = node.children[bit]
            if node is not None and node.has_value:
                matched = Prefix.from_address(address, bit_index + 1)
                best = (matched, node.value)  # type: ignore[assignment]
        return best

    def lookup_all(self, address: IPAddress) -> list:
        """Every stored prefix covering ``address``, shortest first.

        The last element (if any) is exactly what
        :meth:`lookup_with_prefix` returns; the full chain is what
        coverage analyses and the longest-prefix-match oracle
        (:mod:`repro.check`) compare against.
        """
        node: Optional[_Node[V]] = self._root
        matches: list = []
        if self._root.has_value:
            matches.append((Prefix(0, 0), self._root.value))
        for bit_index in range(32):
            if node is None:
                break
            bit = (address.value >> (31 - bit_index)) & 1
            node = node.children[bit]
            if node is not None and node.has_value:
                matches.append(
                    (Prefix.from_address(address, bit_index + 1), node.value)
                )
        return matches

    def exact(self, prefix: Prefix) -> Optional[V]:
        """The value stored at exactly ``prefix``, or ``None``."""
        node: Optional[_Node[V]] = self._root
        for bit_index in range(prefix.length):
            if node is None:
                return None
            bit = (prefix.network >> (31 - bit_index)) & 1
            node = node.children[bit]
        if node is None or not node.has_value:
            return None
        return node.value

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate ``(prefix, value)`` pairs in preorder (shortest first)."""
        stack: list[Tuple[_Node[V], int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, length = stack.pop()
            if node.has_value:
                yield Prefix(network, length), node.value  # type: ignore[misc]
            # Push right child first so the left (0) branch pops first.
            for bit in (1, 0):
                child = node.children[bit]
                if child is not None:
                    child_network = network | (bit << (31 - length))
                    stack.append((child, child_network, length + 1))

    def __contains__(self, prefix: Prefix) -> bool:
        return self.exact(prefix) is not None
