"""IPv4 address and prefix primitives.

The library models the Internet at the granularity real BGP operates at:
IPv4 prefixes.  We implement our own small value types rather than using
:mod:`ipaddress` because the simulator manipulates millions of addresses
as plain integers and needs allocation helpers (subnetting, host
enumeration) that are cheap and deterministic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

_MAX_IPV4 = (1 << 32) - 1
_DOTTED_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def _parse_dotted(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer.

    Raises ``ValueError`` on malformed input, including octets > 255.
    """
    match = _DOTTED_RE.match(text)
    if match is None:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_dotted(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class IPAddress:
    """A single IPv4 address stored as a 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_IPV4:
            raise ValueError(f"IPv4 address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPAddress":
        """Parse dotted-quad notation, e.g. ``IPAddress.parse("10.0.0.1")``."""
        return cls(_parse_dotted(text))

    def __str__(self) -> str:
        return _format_dotted(self.value)

    def __int__(self) -> int:
        return self.value

    def __add__(self, offset: int) -> "IPAddress":
        return IPAddress(self.value + offset)


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix (network address plus mask length).

    The network address is canonicalized: host bits must be zero, which
    we enforce at construction so two equal prefixes always compare
    equal.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= _MAX_IPV4:
            raise ValueError(f"network address out of range: {self.network}")
        if self.network & ~self.mask():
            raise ValueError(
                f"host bits set in prefix {_format_dotted(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse CIDR notation, e.g. ``Prefix.parse("192.0.2.0/24")``."""
        try:
            network_text, length_text = text.split("/")
        except ValueError:
            raise ValueError(f"malformed prefix (missing '/'): {text!r}") from None
        return cls(_parse_dotted(network_text), int(length_text))

    @classmethod
    def from_address(cls, address: IPAddress, length: int) -> "Prefix":
        """Build the length-``length`` prefix covering ``address``."""
        mask = 0 if length == 0 else (_MAX_IPV4 << (32 - length)) & _MAX_IPV4
        return cls(address.value & mask, length)

    def mask(self) -> int:
        """The netmask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (_MAX_IPV4 << (32 - self.length)) & _MAX_IPV4

    def contains(self, address: IPAddress) -> bool:
        """Whether ``address`` falls inside this prefix."""
        return (address.value & self.mask()) == self.network

    def covers(self, other: "Prefix") -> bool:
        """Whether this prefix covers ``other`` (equal or less specific)."""
        return other.length >= self.length and (other.network & self.mask()) == self.network

    def num_addresses(self) -> int:
        return 1 << (32 - self.length)

    def first_address(self) -> IPAddress:
        return IPAddress(self.network)

    def last_address(self) -> IPAddress:
        return IPAddress(self.network + self.num_addresses() - 1)

    def address_at(self, offset: int) -> IPAddress:
        """The address ``offset`` positions into the prefix.

        Raises ``ValueError`` when ``offset`` walks off the end; silent
        wraparound would hand out addresses in someone else's prefix.
        """
        if not 0 <= offset < self.num_addresses():
            raise ValueError(f"offset {offset} outside {self}")
        return IPAddress(self.network + offset)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the subnets of this prefix at ``new_length``."""
        if new_length < self.length:
            raise ValueError(
                f"cannot subnet /{self.length} into shorter /{new_length}"
            )
        step = 1 << (32 - new_length)
        for network in range(self.network, self.network + self.num_addresses(), step):
            yield Prefix(network, new_length)

    def __str__(self) -> str:
        return f"{_format_dotted(self.network)}/{self.length}"


class PrefixAllocator:
    """Sequentially carves subnets out of a pool prefix.

    The topology generator uses one allocator per address pool (e.g. one
    for eyeball ASes, one for content providers) so that address
    assignment is deterministic given the generation order.
    """

    def __init__(self, pool: Prefix) -> None:
        self._pool = pool
        self._cursor = pool.network

    @property
    def pool(self) -> Prefix:
        return self._pool

    def allocate(self, length: int) -> Prefix:
        """Allocate the next free subnet of the given length.

        Raises ``RuntimeError`` when the pool is exhausted.
        """
        if length < self._pool.length:
            raise ValueError(
                f"cannot allocate /{length} from pool {self._pool}"
            )
        size = 1 << (32 - length)
        # Align the cursor to the requested size.
        aligned = (self._cursor + size - 1) & ~(size - 1)
        end = self._pool.network + self._pool.num_addresses()
        if aligned + size > end:
            raise RuntimeError(f"address pool {self._pool} exhausted")
        self._cursor = aligned + size
        return Prefix(aligned, length)

    def remaining_addresses(self) -> int:
        end = self._pool.network + self._pool.num_addresses()
        return max(0, end - self._cursor)
