"""Command-line front end.

Usage::

    repro generate [--seed N] [--small] [--out FILE]
        Generate a synthetic Internet and dump the inferred
        relationships in CAIDA serial format.

    repro study [--seed N] [--small] [--experiment ID]
          [--backend dict|array]
          [--fault-plan PLAN.json] [--checkpoint FILE] [--resume [FILE]]
          [--shard-checkpoint FILE] [--run-dir DIR]
          [--durability fsync|flush|none]
        Run the full study and print every experiment report (or just
        the one named by --experiment).  A fault plan injects failures
        at every substrate boundary — including the active control
        plane (poison filtering, damping, convergence stalls, feed
        gaps, withdrawal loss), the precompute process pool (worker
        crashes, hangs, corrupt results) and the filesystem (torn
        appends, ENOSPC, pre-rename crashes, stale locks).

        --run-dir DIR scopes all of a study's durable state to one
        ledger-managed directory (DIR/ledger.json, campaign.jsonl,
        active.jsonl, shards.jsonl) under an advisory lock, and a bare
        --run-dir DIR --resume restores the passive, active and
        precompute state together, byte-identical to an uninterrupted
        run.  Legacy per-file knobs remain: --checkpoint journals
        campaign progress (the active phase journals to FILE.active,
        the precompute pool's finished shards to FILE.shards) and
        --resume FILE restores a killed campaign from that journal;
        --shard-checkpoint journals the pool's shards to a specific
        file without a campaign checkpoint.  --checkpoint and --resume
        are mutually exclusive.  --durability picks the fsync policy
        checkpoint writes use (see DESIGN.md §12).

    repro temporal [--seed N] [--small] [--backend dict|array]
          [--snapshots N] [--churn F] [--run-dir DIR] [--resume]
          [--json]
        Run the longitudinal study incrementally over the monthly
        snapshot series: consecutive snapshots are diffed into typed
        deltas, only the routing trees the delta can affect are
        recomputed, and the per-epoch Figure-1 violation counts are
        reported as a time-series.  --run-dir journals every completed
        epoch durably (DIR/temporal.jsonl) and --resume replays the
        journaled prefix verbatim before continuing.  `repro study
        --temporal` attaches the same time-series to a full study run.

    repro list
        List available experiment ids.

    repro obs report MANIFEST [--prometheus FILE] [--jsonl FILE]
        Render a run manifest (produced by `repro study --obs-out`)
        as a terminal summary; optionally export it as Prometheus
        text or JSONL.

    repro perf bench [flags...]
        Run the pipeline benchmark (forwards to repro.perf.bench):
        `repro perf bench --quick --section hotpath --json` compares
        the dict and array backends and asserts identical results.

    repro serve [--host H] [--port P] [--workers N] [--max-queue N]
          [--tenant-budget CREDITS | --unmetered] [--run-dir DIR]
        Run the study-as-a-service daemon: JSON-over-HTTP study /
        classify / check / bench workloads with shared warm caches,
        per-tenant credit budgets, /metrics and /healthz.  SIGTERM or
        SIGINT drains in-flight requests before exit (see DESIGN.md
        §13).

    repro query WORKLOAD [--host H] [--port P] [--tenant NAME]
          [--seed N] [--scale small|full] [--backend dict|array]
          [--stream | --out FILE] [--seeds N] [--rounds N]
        Submit one workload to a running daemon.  --stream prints the
        NDJSON progress events as they arrive; otherwise the final
        JSON response is printed (or written to --out FILE).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Optional

from repro.core.pipeline import Study, StudyConfig, StudyResults
from repro.topogen.config import TopologyConfig, small_config
from repro.topogen.generator import generate_internet
from repro.topogen.inference import infer_topology
from repro.topology.serial import dump_relationships

#: Experiment id -> harness module path.
_EXPERIMENTS = {
    "figure1": "repro.experiments.figure1",
    "figure2": "repro.experiments.figure2",
    "figure3": "repro.experiments.figure3",
    "table1": "repro.experiments.table1",
    "table2": "repro.experiments.table2",
    "table3": "repro.experiments.table3",
    "table4": "repro.experiments.table4",
    "alternate-routes": "repro.experiments.alternate_routes",
    "psp-validation": "repro.experiments.psp_validation",
    "poisoning-dataset": "repro.experiments.poisoning_dataset",
}


def _topology_config(small: bool) -> TopologyConfig:
    return small_config() if small else TopologyConfig()


def _run_study(
    seed: int,
    small: bool,
    fault_plan: Optional[str] = None,
    checkpoint: Optional[str] = None,
    resume=None,
    shard_checkpoint: Optional[str] = None,
    obs: bool = False,
    backend: str = "dict",
    run_dir: Optional[str] = None,
    durability: Optional[str] = None,
) -> StudyResults:
    """Build and run a study from CLI-shaped arguments.

    ``resume`` is either a journal path (legacy ``--resume FILE``) or
    ``True`` (bare ``--resume``, ledger-managed via ``run_dir``).
    Conflicting combinations are rejected by :func:`_cmd_study` before
    this is called.
    """
    from repro.serve.protocol import build_study_config

    config = build_study_config(
        seed=seed, scale="small" if small else "full", backend=backend
    )
    if fault_plan is not None:
        from repro.faults import FaultPlan

        config.fault_plan = FaultPlan.load(fault_plan)
    if run_dir is not None:
        config.run_dir = run_dir
        config.resume = bool(resume)
    elif isinstance(resume, str):
        config.checkpoint_path = resume
        config.resume = True
    elif checkpoint is not None:
        config.checkpoint_path = checkpoint
    if shard_checkpoint is not None:
        config.shard_checkpoint_path = shard_checkpoint
    if durability is not None:
        config.durability = durability
    if obs:
        from repro.obs import Observability, using

        with using(Observability()):
            return Study(config).run()
    return Study(config).run()


def _cmd_generate(args: argparse.Namespace) -> int:
    internet = generate_internet(_topology_config(args.small), seed=args.seed)
    if args.json:
        from repro.topogen.serialization import save_internet

        save_internet(internet, args.json)
        print(f"wrote full ground-truth dataset to {args.json}")
    inferred, _complex = infer_topology(internet, seed=args.seed)
    text = dump_relationships(inferred, args.out)
    if args.out is None and not args.json:
        sys.stdout.write(text)
    elif args.out is not None:
        print(
            f"wrote {inferred.num_links()} inferred links "
            f"({len(internet.graph)} ASes) to {args.out}"
        )
    return 0


def _collect_reports(results: StudyResults, ids) -> list:
    import importlib

    reports = []
    for experiment_id in ids:
        module = importlib.import_module(_EXPERIMENTS[experiment_id])
        try:
            reports.append((experiment_id, module.run(results), module))
        except ValueError as error:
            reports.append((experiment_id, None, error))
    return reports


def _render_markdown(results: StudyResults, reports) -> str:
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Regenerated by `repro study --markdown EXPERIMENTS.md` over the",
        f"canonical scenario (seed {results.config.seed}, "
        f"{len(results.internet.graph)} ASes, "
        f"{len(results.dataset.measurements)} traceroutes, "
        f"{len(results.decisions)} routing decisions).",
        "",
        "Absolute numbers are not expected to match — the substrate is a",
        "synthetic Internet, not the authors' 2015 testbed — but every",
        "shape claim of the paper is asserted by the benchmark suite",
        "(`pytest benchmarks/ --benchmark-only`); a failed shape check",
        "fails the corresponding benchmark.",
        "",
    ]
    for experiment_id, report, module_or_error in reports:
        if report is None:
            lines.append(f"## {experiment_id}\n\nskipped: {module_or_error}\n")
            continue
        lines.append(f"## {report.experiment_id}: {report.title}")
        lines.append("")
        lines.append("| metric | paper | measured |")
        lines.append("|---|---|---|")
        for row in report.rows:
            paper = "-" if row.paper is None else f"{row.paper:.1f}{row.unit}"
            measured = (
                "-" if row.measured is None else f"{row.measured:.1f}{row.unit}"
            )
            lines.append(f"| {row.label} | {paper} | {measured} |")
        for note in report.notes:
            lines.append(f"\n{note}")
        shape = getattr(module_or_error, "shape_holds", None)
        if callable(shape):
            verdict = "holds" if shape(results) else "**DOES NOT HOLD**"
            lines.append(f"\nShape check: {verdict}.")
        lines.append("")
    return "\n".join(lines) + "\n"


def _write_figures(results: StudyResults, directory: str) -> list:
    """Render the paper's figures as text files in ``directory``."""
    import os

    from repro.core.classification import DecisionLabel
    from repro.core.geography import CONTINENT_ORDER
    from repro.core.pipeline import FIGURE1_LAYERS
    from repro.experiments.plots import cdf_plot, stacked_bar_chart

    os.makedirs(directory, exist_ok=True)
    written = []

    figure1_rows = {
        layer: {
            label.value: results.figure1[layer].percent(label)
            for label in DecisionLabel
        }
        for layer in FIGURE1_LAYERS
    }
    figure3_rows = {}
    for code in CONTINENT_ORDER:
        counts = results.continental.per_continent.get(code)
        if counts is not None and counts.total():
            figure3_rows[code] = {
                label.value: counts.percent(label) for label in DecisionLabel
            }
    figure3_rows["Cont"] = {
        label.value: results.continental.continental.percent(label)
        for label in DecisionLabel
    }
    figure3_rows["NonCont"] = {
        label.value: results.continental.intercontinental.percent(label)
        for label in DecisionLabel
    }
    figures = {
        "figure1.txt": stacked_bar_chart(figure1_rows),
        "figure2.txt": (
            "destination-AS violation CDF ('.' = no-skew reference)\n"
            + cdf_plot(results.skew.by_destination.cumulative_fractions())
            + "\n\nsource-AS violation CDF\n"
            + cdf_plot(results.skew.by_source.cumulative_fractions())
        ),
        "figure3.txt": stacked_bar_chart(figure3_rows),
    }
    for name, content in figures.items():
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content + "\n")
        written.append(path)
    return written


def _conflict_message(flag_a: str, flag_b: str, reason: str) -> str:
    """The one wording every mutually-exclusive-flag error uses."""
    return f"{flag_a} and {flag_b} are mutually exclusive: {reason}"


#: command -> ((flag_a, flag_b, reason), ...) pairwise flag exclusions.
#: Every command's handler routes its pairs through
#: :func:`_table_conflict` so new flags inherit the same error shape
#: instead of inventing their own wording.  Order matters: the first
#: violated pair wins.
_FLAG_EXCLUSIONS = {
    "study": (
        (
            "--run-dir",
            "--checkpoint",
            "the run ledger owns every checkpoint path inside the run "
            "directory",
        ),
        (
            "--run-dir",
            "--shard-checkpoint",
            "the run ledger owns every checkpoint path inside the run "
            "directory",
        ),
        (
            "--checkpoint",
            "--resume",
            "--resume FILE already names the journal to continue appending "
            "to (it was previously ignored silently)",
        ),
    ),
    "serve": (
        (
            "--tenant-budget",
            "--unmetered",
            "an unmetered daemon has no per-tenant ledger to size",
        ),
    ),
    "query": (
        (
            "--stream",
            "--out",
            "a streamed NDJSON response has no single result document to "
            "write to FILE",
        ),
    ),
}


def _flag_is_set(value: object) -> bool:
    return value is not None and value is not False


def _table_conflict(command: str, args: argparse.Namespace) -> Optional[str]:
    """The first violated exclusion for ``command``, or ``None``."""
    for flag_a, flag_b, reason in _FLAG_EXCLUSIONS.get(command, ()):
        value_a = getattr(args, flag_a.lstrip("-").replace("-", "_"), None)
        value_b = getattr(args, flag_b.lstrip("-").replace("-", "_"), None)
        if _flag_is_set(value_a) and _flag_is_set(value_b):
            return _conflict_message(flag_a, flag_b, reason)
    return None


def _study_flag_conflict(args: argparse.Namespace) -> Optional[str]:
    """The error message for an invalid flag combination, or ``None``.

    ``--checkpoint`` + ``--resume`` used to silently ignore
    ``--checkpoint``; persistence flags now fail loudly instead of
    guessing which journal the operator meant.  The pairwise cases live
    in :data:`_FLAG_EXCLUSIONS`; only the --resume value-shape rules
    (bare vs FILE) need bespoke checks here.
    """
    run_dir = getattr(args, "run_dir", None)
    resume = args.resume
    if run_dir is not None:
        conflict = _table_conflict("study", args)
        if conflict is not None:
            return conflict
        if isinstance(resume, str):
            return (
                "--resume takes no FILE when --run-dir is set: the ledger "
                "already knows its journals (use a bare --resume)"
            )
        return None
    if resume is True:
        return (
            "a bare --resume requires --run-dir DIR (ledger-managed runs); "
            "legacy journals need an explicit --resume FILE"
        )
    return _table_conflict("study", args)


def _cmd_study(args: argparse.Namespace) -> int:
    conflict = _study_flag_conflict(args)
    if conflict is not None:
        print(f"error: {conflict}", file=sys.stderr)
        return 2
    obs_out = getattr(args, "obs_out", None)
    results = _run_study(
        args.seed,
        args.small,
        fault_plan=args.fault_plan,
        checkpoint=args.checkpoint,
        resume=args.resume,
        shard_checkpoint=getattr(args, "shard_checkpoint", None),
        obs=bool(getattr(args, "obs", False)) or obs_out is not None,
        backend=getattr(args, "backend", "dict"),
        run_dir=getattr(args, "run_dir", None),
        durability=getattr(args, "durability", None),
    )
    if obs_out is not None and results.manifest is not None:
        results.manifest.save(obs_out)
        print(f"wrote run manifest to {obs_out}")
    ids = [args.experiment] if args.experiment else list(_EXPERIMENTS)
    reports = _collect_reports(results, ids)
    if results.robustness is not None:
        print(results.robustness.render())
        print()
    shard_report = results.shard_execution
    if shard_report is not None and (
        shard_report.resumed
        or shard_report.retries
        or shard_report.completed_serial
    ):
        print(
            "precompute pool: "
            f"{shard_report.shards_total} shard(s), "
            f"{shard_report.completed_parallel} parallel, "
            f"{shard_report.completed_serial} serial, "
            f"{shard_report.resumed} resumed; "
            f"{shard_report.worker_crashes} crash(es), "
            f"{shard_report.worker_hangs} hang(s), "
            f"{shard_report.corrupt_results} corrupt, "
            f"{shard_report.retries} retried, "
            f"{len(shard_report.quarantined)} quarantined"
            + (" [degraded to serial]" if shard_report.degraded_serial_mode else "")
        )
        print()
    if results.active_robustness is not None and (
        results.config.fault_plan is not None
        or results.config.checkpoint_path is not None
        or results.config.run_dir is not None
    ):
        print(results.active_robustness.render())
        print()
    if getattr(args, "temporal", False):
        print(_render_temporal(_attach_temporal(results, args)))
        print()
    if args.figures:
        for path in _write_figures(results, args.figures):
            print(f"wrote {path}")
    if args.markdown:
        text = _render_markdown(results, reports)
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.markdown}")
        return 0
    for experiment_id, report, error in reports:
        if report is None:
            print(f"== {experiment_id}: skipped ({error}) ==")
            continue
        print(report.render())
        print()
    return 0


def _render_temporal(temporal) -> str:
    """The per-epoch accounting table for a temporal run."""
    title = (
        f"longitudinal study: {len(temporal.epochs)} epoch(s), "
        f"backend {temporal.backend}"
    )
    if temporal.resumed_epochs:
        title += f", {temporal.resumed_epochs} replayed from journal"
    lines = [
        title,
        f"{'epoch':>5} {'delta':>6} {'dirty':>6} {'inval':>6} "
        f"{'regraded':>9} {'reused':>7} {'misses':>7}  "
        "violations Simple/All-1",
    ]
    for epoch in temporal.epochs:
        violations = epoch.violations()
        lines.append(
            f"{epoch.index:>5} "
            f"{sum(epoch.delta.values()):>6} "
            f"{epoch.dirty_destinations:>6} "
            f"{epoch.invalidated_trees:>6} "
            f"{epoch.regraded_groups:>9} "
            f"{epoch.reused_groups:>7} "
            f"{epoch.cache_misses:>7}  "
            f"{violations.get('Simple', 0)}/{violations.get('All-1', 0)}"
            + ("  [replayed]" if epoch.resumed else "")
        )
    return "\n".join(lines)


def _attach_temporal(results: StudyResults, args: argparse.Namespace):
    """Run the incremental time-series over a study's own snapshots.

    Journals to the run ledger's ``temporal.jsonl`` when the study has
    a ``--run-dir``; a bare ``--resume`` then replays the journaled
    epoch prefix verbatim before continuing.
    """
    import os

    from repro.temporal import TemporalInputs, run_incremental

    journal_path = None
    run_dir = getattr(args, "run_dir", None)
    if run_dir is not None:
        from repro.faults.ledger import TEMPORAL_JOURNAL

        journal_path = os.path.join(run_dir, TEMPORAL_JOURNAL)
    temporal = run_incremental(
        results.snapshots,
        TemporalInputs.from_study(results),
        journal_path=journal_path,
        resume=bool(getattr(args, "resume", None)),
    )
    results.temporal = temporal
    return temporal


def _cmd_temporal(args: argparse.Namespace) -> int:
    """Standalone incremental longitudinal study over snapshot series."""
    if args.resume and args.run_dir is None:
        print(
            "error: --resume requires --run-dir DIR (the epoch journal "
            "lives in the ledger-managed run directory)",
            file=sys.stderr,
        )
        return 2
    import dataclasses

    from repro.temporal import TemporalInputs, run_incremental, series_fingerprint

    results = _run_study(args.seed, args.small, backend=args.backend)
    inputs = TemporalInputs.from_study(results, backend=args.backend)
    snapshots = results.snapshots
    if args.snapshots is not None or args.churn is not None:
        from repro.topogen.inference import InferenceConfig, inferred_snapshots

        inference = results.config.inference or InferenceConfig()
        if args.snapshots is not None:
            inference = dataclasses.replace(inference, num_snapshots=args.snapshots)
        if args.churn is not None:
            inference = dataclasses.replace(inference, snapshot_churn=args.churn)
        snapshots, _ = inferred_snapshots(
            results.internet, inference, seed=results.config.seed + 1
        )

    ledger = None
    journal_path = None
    storage = None
    if args.run_dir is not None:
        from repro.faults.ledger import RunLedger

        ledger = RunLedger(args.run_dir)
        ledger.open(
            {"temporal-series": series_fingerprint(snapshots, inputs)},
            resume=bool(args.resume),
        )
        journal_path = ledger.temporal_path
        storage = ledger.storage()
    try:
        temporal = run_incremental(
            snapshots,
            inputs,
            journal_path=journal_path,
            resume=bool(args.resume),
            storage=storage,
        )
        if ledger is not None:
            ledger.finalize()
    finally:
        if ledger is not None:
            ledger.close()
    results.temporal = temporal
    if args.json:
        print(json.dumps(temporal.as_dict(), indent=2, sort_keys=True))
        return 0
    print(_render_temporal(temporal))
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for experiment_id in _EXPERIMENTS:
        print(experiment_id)
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import RunManifest, render_summary, write_jsonl, write_prometheus

    try:
        manifest = RunManifest.load(args.manifest)
    except (OSError, ValueError) as error:
        print(
            f"error: cannot load manifest {args.manifest}: {error}",
            file=sys.stderr,
        )
        return 1
    print(render_summary(manifest))
    if args.prometheus is not None:
        write_prometheus(manifest, args.prometheus)
        print(f"\nwrote Prometheus metrics to {args.prometheus}")
    if args.jsonl is not None:
        write_jsonl(manifest, args.jsonl)
        print(f"wrote JSONL export to {args.jsonl}")
    return 0


def _cmd_perf_bench(args: argparse.Namespace) -> int:
    """Forward to the benchmark CLI (``python -m repro.perf.bench``)."""
    from repro.perf.bench import main as bench_main

    return bench_main(list(args.bench_args))


def _cmd_check_run(args: argparse.Namespace) -> int:
    """Differential checks: optimized implementations vs oracles."""
    from repro.check import run_checks

    def progress(done: int, total: int) -> None:
        if args.progress and (done % 50 == 0 or done == total):
            print(f"  .. {done}/{total} seeds", file=sys.stderr)

    try:
        report = run_checks(
            args.seeds,
            base_seed=args.base_seed,
            only=args.only or None,
            progress=progress,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def _cmd_check_diff(args: argparse.Namespace) -> int:
    """Compare the canonical study against the blessed golden."""
    from repro.check import DEFAULT_GOLDEN_DIR, check_against_golden

    directory = args.golden_dir or DEFAULT_GOLDEN_DIR
    drifts = check_against_golden(directory=directory, seed=args.seed)
    if not drifts:
        print(f"golden clean: {directory} matches seed {args.seed}")
        return 0
    print(f"{len(drifts)} drift(s) against the blessed golden:")
    for drift in drifts:
        print(f"  {drift}")
    print("\nIf the change is intentional, re-bless with `repro check bless`.")
    return 1


def _cmd_check_bless(args: argparse.Namespace) -> int:
    """Snapshot the canonical study as the new blessed golden."""
    from repro.check import DEFAULT_GOLDEN_DIR, bless, compute_snapshot

    directory = args.golden_dir or DEFAULT_GOLDEN_DIR
    path = bless(compute_snapshot(args.seed), directory=directory, seed=args.seed)
    print(f"blessed golden written to {path}")
    return 0


def _default_budget() -> int:
    from repro.serve.protocol import DEFAULT_TENANT_BUDGET

    return DEFAULT_TENANT_BUDGET


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the study-as-a-service daemon until SIGTERM/SIGINT drain."""
    conflict = _table_conflict("serve", args)
    if conflict is not None:
        print(f"error: {conflict}", file=sys.stderr)
        return 2
    import asyncio

    from repro.serve.daemon import ReproDaemon, ServeConfig
    from repro.serve.protocol import DEFAULT_TENANT_BUDGET

    if args.unmetered:
        # Effectively infinite per-tenant credit; admission control
        # still bounds concurrency via the request queue.
        budget = 10**9
    elif args.tenant_budget is not None:
        budget = args.tenant_budget
    else:
        budget = DEFAULT_TENANT_BUDGET
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        tenant_budget=budget,
        run_dir=args.run_dir,
    )
    daemon = ReproDaemon(config)

    async def _run_and_announce() -> None:
        task = asyncio.ensure_future(daemon.run())
        while daemon.bound_port is None and not task.done():
            await asyncio.sleep(0.01)
        if daemon.bound_port is not None:
            print(
                f"repro serve listening on http://{config.host}:"
                f"{daemon.bound_port} (workers={config.workers}, "
                f"queue={config.max_queue}, "
                f"budget={'unmetered' if args.unmetered else budget}); "
                "SIGTERM/SIGINT drains",
                flush=True,
            )
        await task

    try:
        asyncio.run(_run_and_announce())
    except KeyboardInterrupt:
        # Loops without signal-handler support (rare) fall back to the
        # default SIGINT behavior; treat it as an operator-driven stop.
        pass
    except OSError as error:
        print(f"error: cannot start daemon: {error}", file=sys.stderr)
        return 1
    if daemon.startup_error is not None:
        print(f"error: {daemon.startup_error}", file=sys.stderr)
        return 1
    print("repro serve drained cleanly")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """Submit one workload to a running daemon and print the response."""
    conflict = _table_conflict("query", args)
    if conflict is not None:
        print(f"error: {conflict}", file=sys.stderr)
        return 2
    from repro.serve.client import ServeClient, ServeError

    params = {}
    if args.seeds is not None:
        params["seeds"] = args.seeds
    if args.rounds is not None:
        params["rounds"] = args.rounds
    client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.stream:
            result_doc = None
            for doc in client.stream(
                args.workload,
                tenant=args.tenant,
                seed=args.seed,
                scale=args.scale,
                backend=args.backend,
                params=params or None,
            ):
                print(json.dumps(doc, sort_keys=True), flush=True)
                if doc.get("kind") == "result":
                    result_doc = doc
            ok = bool(result_doc and result_doc.get("ok"))
            return 0 if ok else 1
        payload = client.submit(
            args.workload,
            tenant=args.tenant,
            seed=args.seed,
            scale=args.scale,
            backend=args.backend,
            params=params or None,
        )
    except ServeError as error:
        hint = (
            f" (Retry-After: {error.retry_after}s)"
            if error.retry_after is not None
            else ""
        )
        print(f"error: {error}{hint}", file=sys.stderr)
        return 1
    except OSError as error:
        print(
            f"error: cannot reach daemon at {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 1
    client.expect_protocol(payload)
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote response to {args.out}")
    else:
        print(rendered)
    return 0 if payload.get("ok") else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    """Run every experiment's shape check; non-zero exit on failure."""
    import importlib

    results = _run_study(args.seed, args.small)
    failures = 0
    for experiment_id, module_path in _EXPERIMENTS.items():
        module = importlib.import_module(module_path)
        shape = getattr(module, "shape_holds", None)
        if not callable(shape):
            continue
        sufficient = getattr(module, "has_sufficient_data", None)
        if callable(sufficient) and not sufficient(results):
            print(f"{experiment_id:<20} SKIPPED (insufficient data at this scale)")
            continue
        try:
            holds = shape(results)
        except ValueError:
            print(f"{experiment_id:<20} SKIPPED (needs active experiments)")
            continue
        verdict = "ok" if holds else "FAILED"
        print(f"{experiment_id:<20} {verdict}")
        failures += 0 if holds else 1
    if failures:
        print(f"{failures} shape check(s) failed")
        return 1
    print("all shape checks hold")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Investigating Interdomain Routing Policies "
            "in the Wild' (IMC 2015)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a topology and dump inferred relationships"
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--small", action="store_true", help="small topology")
    generate.add_argument("--out", default=None, help="output file (default stdout)")
    generate.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also save the full ground-truth dataset as JSON",
    )
    generate.set_defaults(handler=_cmd_generate)

    study = subparsers.add_parser("study", help="run the full study and report")
    study.add_argument("--seed", type=int, default=0)
    study.add_argument("--small", action="store_true", help="small, fast scenario")
    study.add_argument(
        "--experiment",
        choices=sorted(_EXPERIMENTS),
        default=None,
        help="report a single experiment",
    )
    study.add_argument(
        "--markdown",
        default=None,
        metavar="FILE",
        help="write a paper-vs-measured markdown report to FILE",
    )
    study.add_argument(
        "--figures",
        default=None,
        metavar="DIR",
        help="render the paper's figures as text files into DIR",
    )
    study.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="JSON fault plan injected into the campaign (see repro.faults)",
    )
    study.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="journal completed measurements to FILE (active experiments "
        "journal to FILE.active) for later resumption",
    )
    study.add_argument(
        "--resume",
        nargs="?",
        const=True,
        default=None,
        metavar="FILE",
        help="resume a killed study: bare --resume restores the "
        "--run-dir ledger (passive, active and precompute together); "
        "--resume FILE restores a legacy checkpoint journal (skips "
        "journaled work without re-spending credits; also replays "
        "FILE.shards precompute shards).  Mutually exclusive with "
        "--checkpoint",
    )
    study.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="durable run directory managed by the run ledger "
        "(DIR/ledger.json + campaign/active/shard journals under an "
        "advisory lock); resume it with --run-dir DIR --resume",
    )
    study.add_argument(
        "--durability",
        choices=("fsync", "flush", "none"),
        default=None,
        help="fsync policy for checkpoint and ledger writes (default "
        "fsync, or the REPRO_DURABILITY environment variable)",
    )
    study.add_argument(
        "--shard-checkpoint",
        default=None,
        metavar="FILE",
        help="journal finished precompute-pool shards to FILE "
        "(defaults to CHECKPOINT.shards when --checkpoint is set); a "
        "killed study resumes its routing-tree builds from it",
    )
    study.add_argument(
        "--obs",
        action="store_true",
        help="enable telemetry (spans, metrics, events) for this run",
    )
    study.add_argument(
        "--backend",
        choices=("dict", "array"),
        default="dict",
        help="route-tree engine backend: readable dict reference or the "
        "CSR array kernel (identical results; see DESIGN.md §10)",
    )
    study.add_argument(
        "--obs-out",
        default=None,
        metavar="FILE",
        help="write the run manifest JSON to FILE (implies --obs); "
        "render it later with `repro obs report FILE`",
    )
    study.add_argument(
        "--temporal",
        action="store_true",
        help="also run the incremental longitudinal study over the "
        "monthly snapshot series (journals epochs to the --run-dir "
        "ledger; see `repro temporal` for the standalone command)",
    )
    study.set_defaults(handler=_cmd_study)

    temporal = subparsers.add_parser(
        "temporal",
        help="incremental longitudinal study over the snapshot series",
    )
    temporal.add_argument("--seed", type=int, default=0)
    temporal.add_argument(
        "--small", action="store_true", help="small, fast scenario"
    )
    temporal.add_argument(
        "--backend",
        choices=("dict", "array"),
        default="dict",
        help="route-tree engine backend (identical results)",
    )
    temporal.add_argument(
        "--snapshots",
        type=int,
        default=None,
        metavar="N",
        help="regenerate the series with N monthly snapshots "
        "(default: the study's own series)",
    )
    temporal.add_argument(
        "--churn",
        type=float,
        default=None,
        metavar="FRACTION",
        help="regenerate the series with per-link churn FRACTION "
        "(default: the study's configured churn)",
    )
    temporal.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="ledger-managed run directory; every completed epoch is "
        "journaled durably to DIR/temporal.jsonl",
    )
    temporal.add_argument(
        "--resume",
        action="store_true",
        help="replay the journaled epoch prefix verbatim and continue "
        "from the first missing epoch (requires --run-dir)",
    )
    temporal.add_argument(
        "--json",
        action="store_true",
        help="print the full time-series and accounting as JSON",
    )
    temporal.set_defaults(handler=_cmd_temporal)

    list_parser = subparsers.add_parser("list", help="list experiment ids")
    list_parser.set_defaults(handler=_cmd_list)

    obs_parser = subparsers.add_parser(
        "obs", help="observability tools (run manifests)"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report", help="render a run manifest produced by --obs-out"
    )
    report.add_argument("manifest", help="manifest file (JSON or JSONL)")
    report.add_argument(
        "--prometheus",
        default=None,
        metavar="FILE",
        help="also export the metric snapshot in Prometheus text format",
    )
    report.add_argument(
        "--jsonl",
        default=None,
        metavar="FILE",
        help="also export the manifest as JSONL",
    )
    report.set_defaults(handler=_cmd_obs_report)

    perf = subparsers.add_parser(
        "perf", help="performance tooling (pipeline benchmarks)"
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    bench = perf_sub.add_parser(
        "bench",
        help="run the pipeline benchmark (flags forwarded to "
        "repro.perf.bench: --quick, --section, --json, "
        "--check-hotpath-speedup, ...)",
        add_help=False,
    )
    bench.add_argument("bench_args", nargs=argparse.REMAINDER)
    bench.set_defaults(handler=_cmd_perf_bench)

    check = subparsers.add_parser(
        "check",
        help="correctness tooling: differential oracles and golden runs",
    )
    check_sub = check.add_subparsers(dest="check_command", required=True)

    check_run = check_sub.add_parser(
        "run", help="run optimized-vs-oracle differential checks"
    )
    check_run.add_argument(
        "--seeds", type=int, default=100, help="number of seeded scenarios"
    )
    check_run.add_argument(
        "--base-seed", type=int, default=0, help="first seed of the range"
    )
    check_run.add_argument(
        "--only",
        action="append",
        metavar="CHECK",
        help="restrict to one check (repeatable): gr-tree, labels, "
        "metamorphic, temporal, bgp-decision, lpm; heavy opt-in checks "
        "(pool-supervised, ledger-resume) run only when named here",
    )
    check_run.add_argument(
        "--progress", action="store_true", help="print progress to stderr"
    )
    check_run.set_defaults(handler=_cmd_check_run)

    check_diff = check_sub.add_parser(
        "diff", help="diff the canonical study against the blessed golden"
    )
    check_bless = check_sub.add_parser(
        "bless", help="snapshot the canonical study as the blessed golden"
    )
    for sub in (check_diff, check_bless):
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--golden-dir",
            default=None,
            metavar="DIR",
            help="golden directory (default tests/golden)",
        )
    check_diff.set_defaults(handler=_cmd_check_diff)
    check_bless.set_defaults(handler=_cmd_check_bless)

    serve = subparsers.add_parser(
        "serve",
        help="run the concurrent multi-tenant study-as-a-service daemon",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=8151,
        help="bind port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="data-plane worker threads"
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="queued requests beyond the workers before 429 backpressure",
    )
    serve.add_argument(
        "--tenant-budget",
        type=int,
        default=None,
        metavar="CREDITS",
        help="per-tenant credit budget (default %d)" % _default_budget(),
    )
    serve.add_argument(
        "--unmetered",
        action="store_true",
        help="disable per-tenant credit budgets",
    )
    serve.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="write per-request run manifests under DIR (advisory-locked)",
    )
    serve.set_defaults(handler=_cmd_serve)

    query = subparsers.add_parser(
        "query", help="submit one workload to a running serve daemon"
    )
    query.add_argument(
        "workload",
        choices=("study", "classify", "check", "bench"),
        help="workload to submit",
    )
    query.add_argument("--host", default="127.0.0.1", help="daemon address")
    query.add_argument("--port", type=int, default=8151, help="daemon port")
    query.add_argument(
        "--tenant", default="cli", help="tenant name for budget accounting"
    )
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--scale",
        choices=("small", "full"),
        default="small",
        help="study scale (small matches `repro study --small`)",
    )
    query.add_argument(
        "--backend",
        choices=("dict", "array"),
        default="dict",
        help="route-tree engine backend",
    )
    query.add_argument(
        "--stream",
        action="store_true",
        help="stream NDJSON progress events instead of one JSON document",
    )
    query.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the response JSON to FILE instead of stdout",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="client-side request timeout",
    )
    query.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="check workload: number of differential seeds",
    )
    query.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="bench workload: number of timing rounds",
    )
    query.set_defaults(handler=_cmd_query)

    validate = subparsers.add_parser(
        "validate", help="run every experiment's shape check"
    )
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--small", action="store_true", help="small, fast scenario")
    validate.set_defaults(handler=_cmd_validate)
    return parser


def main(argv: Optional[list] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # argparse.REMAINDER mis-parses leading options, so the forwarding
    # subcommand is dispatched before the parser sees its flags.
    if list(argv[:2]) == ["perf", "bench"]:
        from repro.perf.bench import main as bench_main

        return bench_main(list(argv[2:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
