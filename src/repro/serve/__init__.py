"""repro.serve — the study-as-a-service daemon.

One long-lived process answers JSON-over-HTTP requests for the
repository's four workloads (``study``, ``classify``, ``check``,
``bench``) from many concurrent clients, sharing warm state that the
one-shot CLI rebuilds from scratch on every invocation:

* :mod:`repro.serve.cache` — the :class:`ArtifactStore` of routing
  engines (keyed by graph fingerprint, partial-transit set and
  backend) and memoized study snapshots, shared across tenants.
* :mod:`repro.serve.tenants` — per-tenant admission budgets built on
  :class:`repro.atlas.budget.CreditLedger`.
* :mod:`repro.serve.protocol` — request parsing/validation and the
  one :func:`build_study_config` both the daemon and the CLI use, so
  a daemon-submitted study is byte-identical to ``repro study``.
* :mod:`repro.serve.daemon` — the asyncio HTTP server: bounded
  admission queue (429 + ``Retry-After``), NDJSON progress streaming,
  ``/metrics`` (Prometheus) and ``/healthz``, graceful SIGTERM drain.
* :mod:`repro.serve.client` — the stdlib HTTP client behind
  ``repro query`` and the load generator.
* :mod:`repro.serve.loadgen` — the concurrency load generator behind
  ``repro perf bench --section serve``.

Everything is stdlib-only (``asyncio`` + ``http.client``); no new
dependencies.
"""

from repro.serve.cache import ArtifactStore
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import DaemonHandle, ReproDaemon, ServeConfig
from repro.serve.protocol import (
    CATEGORY_SERVE,
    PROTOCOL_VERSION,
    SERVE_COSTS,
    WORKLOADS,
    ProtocolError,
    ServeRequest,
    build_study_config,
    parse_request,
)
from repro.serve.tenants import TenantRegistry

__all__ = [
    "ArtifactStore",
    "CATEGORY_SERVE",
    "DaemonHandle",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproDaemon",
    "SERVE_COSTS",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeRequest",
    "TenantRegistry",
    "WORKLOADS",
    "build_study_config",
    "parse_request",
]
