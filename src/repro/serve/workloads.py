"""Workload handlers: what one admitted request actually computes.

Each handler runs on a daemon worker thread with the request's own
:class:`~repro.obs.context.Observability` installed thread-locally, so
``publish`` calls stream to that request's NDJSON subscribers only.
All shared warm state comes through the
:class:`~repro.serve.cache.ArtifactStore`; handlers themselves hold no
daemon state.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.core.classification import DecisionLabel, LayerConfig
from repro.core.pipeline import figure1_layer_configs
from repro.obs import publish
from repro.serve.cache import ArtifactStore
from repro.serve.protocol import CATEGORY_SERVE, ServeRequest


def _handle_study(request: ServeRequest, artifacts: ArtifactStore) -> Dict:
    """The full pipeline, memoized per (seed, scale, backend).

    ``snapshot_json`` is byte-for-byte what the CLI path produces for
    the same configuration (``serialize(snapshot_study(...))``) — the
    field the daemon-vs-CLI differential compares.
    """
    publish(CATEGORY_SERVE, "study.begin", seed=request.seed, scale=request.scale)
    snapshot_json = artifacts.study_snapshot(
        request.seed, request.scale, request.backend
    )
    results = artifacts.study(request.seed, request.scale, request.backend)
    publish(
        CATEGORY_SERVE,
        "study.done",
        seed=request.seed,
        decisions=len(results.decisions),
    )
    return {
        "snapshot_json": snapshot_json,
        "decisions": len(results.decisions),
        "measurements": len(results.dataset.measurements),
    }


def _handle_classify(request: ServeRequest, artifacts: ArtifactStore) -> Dict:
    """Re-grade all seven Figure-1 layers against warm shared engines.

    The engines come from the artifact store keyed by graph
    fingerprint, so a classify request from tenant B reuses the routing
    trees tenant A's study already built — the cross-tenant cache-reuse
    path the /metrics counters expose.
    """
    from repro.perf.parallel import ParallelClassifier

    results = artifacts.study(request.seed, request.scale, request.backend)
    partial = frozenset(
        (entry.provider, entry.customer)
        for entry in results.known_complex.partial_transit_entries()
    )
    engine_simple = artifacts.engine_for(
        results.inferred, backend=request.backend
    )
    engine_complex = artifacts.engine_for(
        results.inferred, partial_transit=partial, backend=request.backend
    )
    layer_configs = figure1_layer_configs(
        engine_simple,
        engine_complex,
        known_complex=results.known_complex,
        siblings=results.siblings,
        first_hops_1=results.first_hops_1,
        first_hops_2=results.first_hops_2,
    )
    publish(CATEGORY_SERVE, "classify.begin", layers=len(layer_configs))
    figure1 = ParallelClassifier().classify_layers(results.decisions, layer_configs)
    publish(CATEGORY_SERVE, "classify.done", layers=len(figure1))
    return {
        "figure1": {
            layer: {
                label.value: counts.counts[label] for label in DecisionLabel
            }
            for layer, counts in figure1.items()
        },
        "decisions": len(results.decisions),
    }


def _handle_check(request: ServeRequest, artifacts: ArtifactStore) -> Dict:
    """Differential oracle checks, with progress streamed as events."""
    from repro.check import run_checks

    seeds = int(request.params.get("seeds", 8))
    only = request.params.get("only")

    def progress(done: int, total: int) -> None:
        publish(CATEGORY_SERVE, "check.progress", done=done, total=total)

    report = run_checks(seeds, only=only, progress=progress)
    return {"ok": report.ok, "seeds": seeds, "render": report.render()}


def _handle_bench(request: ServeRequest, artifacts: ArtifactStore) -> Dict:
    """Grade one warm layer ``rounds`` times and report timings."""
    from repro.perf.parallel import ParallelClassifier

    results = artifacts.study(request.seed, request.scale, request.backend)
    engine = artifacts.engine_for(results.inferred, backend=request.backend)
    classifier = ParallelClassifier()
    rounds = int(request.params.get("rounds", 1))
    durations = []
    for round_index in range(rounds):
        start = time.perf_counter()
        classifier.label_layer(results.decisions, LayerConfig(engine=engine))
        durations.append(time.perf_counter() - start)
        publish(CATEGORY_SERVE, "bench.round", index=round_index)
    return {
        "rounds": rounds,
        "decisions": len(results.decisions),
        "mean_s": round(sum(durations) / len(durations), 6),
        "min_s": round(min(durations), 6),
    }


_HANDLERS = {
    "study": _handle_study,
    "classify": _handle_classify,
    "check": _handle_check,
    "bench": _handle_bench,
}


def run_workload(request: ServeRequest, artifacts: ArtifactStore) -> Dict:
    """Dispatch one validated request to its handler."""
    return _HANDLERS[request.workload](request, artifacts)
