"""Per-tenant admission budgets.

Admission control reuses the measurement-credit machinery the paper's
campaign already models (:class:`repro.atlas.budget.CreditLedger`):
each tenant gets a daily ledger with serve-shaped costs, every
admitted request debits it, and an exhausted ledger turns into HTTP
429 with a ``Retry-After`` hint instead of letting one tenant starve
the rest of the daemon.  Ledgers are created lazily and charged
concurrently — :meth:`CreditLedger.charge` is atomic under its own
lock, so two request threads can never jointly overdraw a tenant.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.atlas.budget import BudgetExceeded, CreditLedger
from repro.serve.protocol import DEFAULT_TENANT_BUDGET, SERVE_COSTS

#: Seconds a throttled client should wait before retrying.  The ledger
#: is a *daily* budget, but a blunt day-long hint would make the load
#: generator untestable; one minute keeps the semantics ("come back
#: later, not immediately") without baking wall-clock day math into
#: the daemon.
RETRY_AFTER_BUDGET_S = 60

__all__ = [
    "BudgetExceeded",
    "RETRY_AFTER_BUDGET_S",
    "TenantRegistry",
]


class TenantRegistry:
    """Lazily-created per-tenant credit ledgers."""

    def __init__(self, daily_budget: int = DEFAULT_TENANT_BUDGET) -> None:
        if daily_budget < 0:
            raise ValueError("daily_budget must be non-negative")
        self.daily_budget = daily_budget
        self._lock = threading.Lock()
        self._ledgers: Dict[str, CreditLedger] = {}

    def ledger_for(self, tenant: str) -> CreditLedger:
        with self._lock:
            ledger = self._ledgers.get(tenant)
            if ledger is None:
                ledger = CreditLedger(
                    daily_budget=self.daily_budget, costs=dict(SERVE_COSTS)
                )
                self._ledgers[tenant] = ledger
            return ledger

    def charge(self, tenant: str, workload: str) -> int:
        """Debit one admission; raises :class:`BudgetExceeded` if short."""
        return self.ledger_for(tenant).charge(workload)

    def remaining(self, tenant: str) -> int:
        return self.ledger_for(tenant).remaining

    def tenants(self) -> List[Tuple[str, int, int]]:
        """(tenant, spent, remaining) rows for /healthz, sorted by name."""
        with self._lock:
            ledgers = sorted(self._ledgers.items())
        return [
            (name, ledger.spent, ledger.remaining) for name, ledger in ledgers
        ]
