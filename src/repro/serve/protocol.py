"""Wire protocol of the serve daemon: request shape and study configs.

The daemon speaks newline-free JSON request bodies over HTTP POST and
answers either one JSON document or a chunked NDJSON stream (progress
events, then the result).  Everything the daemon and the CLI must
agree on byte-for-byte lives here — most importantly
:func:`build_study_config`, the **single** constructor of study
configurations used by ``repro study``, ``repro query`` and the daemon
workers, so a daemon-submitted study cannot drift from the CLI path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.pipeline import StudyConfig
from repro.topogen.config import small_config

#: Bumped when the request/response shape changes incompatibly.
PROTOCOL_VERSION = 1

#: The workloads a daemon accepts, in documentation order.
WORKLOADS: Tuple[str, ...] = ("study", "classify", "check", "bench")

#: Study scales a request may name.
SCALES: Tuple[str, ...] = ("small", "full")

#: Routing-engine backends a request may name.
BACKENDS: Tuple[str, ...] = ("dict", "array")

#: Event category for the daemon's own lifecycle events.
CATEGORY_SERVE = "serve"

#: Credits one admission of each workload debits from a tenant's
#: ledger (same :class:`~repro.atlas.budget.CreditLedger` machinery
#: the measurement campaign uses, with serve-shaped costs: a study is
#: the expensive traceroute-class request, a bench ping-class).
SERVE_COSTS: Dict[str, int] = {
    "study": 60,
    "classify": 20,
    "check": 30,
    "bench": 10,
}

#: Default per-tenant daily budget: enough for a realistic mixed
#: session, small enough that a runaway client is throttled.
DEFAULT_TENANT_BUDGET = 1200


class ProtocolError(ValueError):
    """A request that cannot be admitted (HTTP 400)."""


@dataclass(frozen=True)
class ServeRequest:
    """One validated workload request."""

    workload: str
    tenant: str = "anonymous"
    seed: int = 0
    scale: str = "small"
    backend: str = "dict"
    stream: bool = False
    #: Workload-specific knobs (``check``: seeds/only; ``bench``:
    #: rounds).  Validated by :func:`parse_request`.
    params: Dict[str, object] = field(default_factory=dict)


def build_study_config(
    seed: int = 0, scale: str = "small", backend: str = "dict"
) -> StudyConfig:
    """The canonical study configuration for one (seed, scale, backend).

    This is the one place the quick-scale parameter block lives:
    ``repro study --small``, :func:`repro.experiments.scenario.quick_study`
    and every daemon study worker call through here, which is what makes
    the daemon-vs-CLI byte-identity differential meaningful rather than
    a coincidence of copy-pasted numbers.
    """
    if scale not in SCALES:
        raise ProtocolError(f"unknown scale {scale!r} (expected one of {SCALES})")
    if backend not in BACKENDS:
        raise ProtocolError(
            f"unknown backend {backend!r} (expected one of {BACKENDS})"
        )
    if scale == "small":
        return StudyConfig(
            topology=small_config(),
            seed=seed,
            num_probes=400,
            probes_per_continent=25,
            active_vp_budget=40,
            max_discovery_targets=20,
            backend=backend,
        )
    return StudyConfig(seed=seed, backend=backend)


def _require_int(value: object, name: str, minimum: int, maximum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{name} must be an integer, got {value!r}")
    if not minimum <= value <= maximum:
        raise ProtocolError(
            f"{name} must be in [{minimum}, {maximum}], got {value}"
        )
    return value


def parse_request(body: bytes) -> ServeRequest:
    """Validate one POST body into a :class:`ServeRequest`.

    Strict about shape: unknown workloads, scales, backends and
    non-string tenants are protocol errors (HTTP 400), never silent
    defaults — a multi-tenant daemon must not guess what a client
    meant and bill some tenant for it.
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"request body is not valid JSON: {error}") from None
    if not isinstance(data, dict):
        raise ProtocolError("request body must be a JSON object")

    workload = data.get("workload")
    if workload not in WORKLOADS:
        raise ProtocolError(
            f"unknown workload {workload!r} (expected one of {WORKLOADS})"
        )
    tenant = data.get("tenant", "anonymous")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(f"tenant must be a non-empty string, got {tenant!r}")
    seed = _require_int(data.get("seed", 0), "seed", 0, 2**31 - 1)
    scale = data.get("scale", "small")
    if scale not in SCALES:
        raise ProtocolError(f"unknown scale {scale!r} (expected one of {SCALES})")
    backend = data.get("backend", "dict")
    if backend not in BACKENDS:
        raise ProtocolError(
            f"unknown backend {backend!r} (expected one of {BACKENDS})"
        )
    stream = data.get("stream", False)
    if not isinstance(stream, bool):
        raise ProtocolError(f"stream must be a boolean, got {stream!r}")

    params: Dict[str, object] = {}
    if workload == "check":
        params["seeds"] = _require_int(data.get("seeds", 8), "seeds", 1, 500)
        only = data.get("only")
        if only is not None:
            if not isinstance(only, list) or not all(
                isinstance(item, str) for item in only
            ):
                raise ProtocolError(f"only must be a list of strings, got {only!r}")
            params["only"] = list(only)
    elif workload == "bench":
        params["rounds"] = _require_int(data.get("rounds", 1), "rounds", 1, 100)

    known = {
        "workload",
        "tenant",
        "seed",
        "scale",
        "backend",
        "stream",
        "seeds",
        "only",
        "rounds",
    }
    unknown = sorted(set(data) - known)
    if unknown:
        raise ProtocolError(f"unknown request field(s): {', '.join(unknown)}")

    return ServeRequest(
        workload=workload,
        tenant=tenant,
        seed=seed,
        scale=scale,
        backend=backend,
        stream=stream,
        params=params,
    )


def request_to_dict(request: ServeRequest) -> Dict[str, object]:
    """The JSON body for one request (client side of :func:`parse_request`)."""
    body: Dict[str, object] = {
        "workload": request.workload,
        "tenant": request.tenant,
        "seed": request.seed,
        "scale": request.scale,
        "backend": request.backend,
    }
    if request.stream:
        body["stream"] = True
    body.update(request.params)
    return body


def study_cache_key(request: ServeRequest) -> Tuple[str, int, str, str]:
    """The artifact-store key a study/classify request shares."""
    return ("study", request.seed, request.scale, request.backend)
