"""The asyncio study-as-a-service daemon behind ``repro serve``.

Architecture (one process, two planes):

* **Control plane** — a single asyncio event loop owns the listening
  socket, parses HTTP, and makes every admission decision (draining →
  503, queue full → 429 + ``Retry-After``, tenant budget exhausted →
  429 + ``Retry-After``).  All admission counters live on the loop
  thread, so they need no locks.

* **Data plane** — admitted requests run on a bounded thread pool.
  Each worker installs a per-request :class:`Observability` context
  (thread-local, see :mod:`repro.obs.context`) and an ambient tracer,
  runs the workload against the shared :class:`ArtifactStore`, then
  folds the request's metric snapshot into the daemon-lifetime
  registry that ``/metrics`` serves.

Streaming responses use chunked transfer-encoding NDJSON: the
request's :class:`EventStream` forwards events from the worker thread
into an :class:`asyncio.Queue` via ``loop.call_soon_threadsafe``, and
the final line carries the result document.

Shutdown is a graceful drain: SIGTERM/SIGINT (or
:meth:`ReproDaemon.request_drain`) stops accepting connections,
in-flight requests finish, then the loop exits.  With ``--run-dir``
the daemon holds the directory's advisory :class:`RunLock` and writes
one :class:`RunManifest` per request under ``DIR/manifests/``.

Everything is stdlib: ``asyncio.start_server`` plus a hand-rolled
HTTP/1.1 subset (the repo adds no dependencies for the service layer).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.obs import (
    Observability,
    PROMETHEUS_CONTENT_TYPE,
    Tracer,
    build_manifest,
    metrics_to_prometheus,
    publish,
    set_obs,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import ArtifactStore
from repro.serve.protocol import (
    CATEGORY_SERVE,
    DEFAULT_TENANT_BUDGET,
    PROTOCOL_VERSION,
    ProtocolError,
    ServeRequest,
    parse_request,
    request_to_dict,
)
from repro.serve.tenants import (
    BudgetExceeded,
    RETRY_AFTER_BUDGET_S,
    TenantRegistry,
)
from repro.serve.workloads import run_workload

#: Seconds a 429-on-full-queue client should back off.
RETRY_AFTER_QUEUE_S = 2

#: Seconds a 503-while-draining client should wait before trying a
#: replacement daemon.
RETRY_AFTER_DRAINING_S = 5

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServeConfig:
    """Daemon settings (CLI flags map onto these one-to-one)."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (tests, load generator).
    port: int = 0
    #: Worker threads actually executing workloads.
    workers: int = 4
    #: Admitted-but-waiting requests beyond the workers; one more
    #: request than ``workers + max_queue`` in flight draws a 429.
    max_queue: int = 16
    #: Daily credits per tenant (:data:`SERVE_COSTS` units).
    tenant_budget: int = DEFAULT_TENANT_BUDGET
    #: Durable directory for per-request manifests (advisory-locked).
    run_dir: Optional[str] = None


class ReproDaemon:
    """One serve daemon: shared warm state + asyncio HTTP front end."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.artifacts = ArtifactStore()
        self.tenants = TenantRegistry(daily_budget=self.config.tenant_budget)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="serve-worker"
        )
        #: Daemon-lifetime registry served by /metrics; per-request
        #: registries merge into it after each request.
        self.metrics = MetricsRegistry(enabled=True)
        self._metrics_lock = threading.Lock()
        self._requests_total = self.metrics.counter(
            "serve_requests_total", "Requests finished, by workload/tenant/status."
        )
        self._rejected_total = self.metrics.counter(
            "serve_rejected_total", "Requests rejected at admission, by reason."
        )
        self._request_seconds = self.metrics.histogram(
            "serve_request_seconds", "Wall time of finished requests."
        )
        self._queue_depth = self.metrics.gauge(
            "serve_queue_depth", "Admitted requests waiting for a worker."
        )
        self._inflight_gauge = self.metrics.gauge(
            "serve_inflight_requests", "Admitted requests not yet finished."
        )
        self._engine_cache_hits = self.metrics.gauge(
            "serve_engine_cache_hits",
            "Routing-engine cache hits across all tenants.",
        )
        self._engine_cache_misses = self.metrics.gauge(
            "serve_engine_cache_misses",
            "Routing-engine cache misses (cold builds).",
        )
        self._engine_cache_entries = self.metrics.gauge(
            "serve_engine_cache_entries", "Warm routing engines held."
        )
        self._study_cache_hits = self.metrics.gauge(
            "serve_study_cache_hits", "Memoized-study hits across all tenants."
        )
        self._study_cache_misses = self.metrics.gauge(
            "serve_study_cache_misses", "Study computations run."
        )

        # Loop-thread state (no locks: touched only on the event loop).
        self._inflight = 0
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._drain_requested: Optional[asyncio.Event] = None

        # Cross-thread startup handshake for start_in_thread().
        self.ready = threading.Event()
        self.bound_port: Optional[int] = None
        self.startup_error: Optional[BaseException] = None

        self._request_seq = 0
        self._seq_lock = threading.Lock()
        self._run_lock = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Serve until a drain is requested; returns once drained."""
        self._loop = asyncio.get_running_loop()
        self._drain_requested = asyncio.Event()
        try:
            if self.config.run_dir is not None:
                from repro.faults.storage import RunLock

                os.makedirs(self.config.run_dir, exist_ok=True)
                self._run_lock = RunLock(
                    os.path.join(self.config.run_dir, "serve.lock")
                ).acquire()
            server = await asyncio.start_server(
                self._serve_connection, self.config.host, self.config.port
            )
        except BaseException as error:
            self.startup_error = error
            self.ready.set()
            raise
        self.bound_port = server.sockets[0].getsockname()[1]
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_drain)
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-main thread (tests, load generator) or platforms
                # without signal support: drain stays available via
                # request_drain().
                pass
        self.ready.set()
        try:
            async with server:
                await self._drain_requested.wait()
                server.close()
                await server.wait_closed()
                while self._inflight > 0:
                    await asyncio.sleep(0.02)
        finally:
            self._executor.shutdown(wait=True)
            if self._run_lock is not None:
                self._run_lock.release()

    def request_drain(self) -> None:
        """Begin a graceful drain; safe to call from any thread."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._begin_drain)

    def _begin_drain(self) -> None:
        self._draining = True
        if self._drain_requested is not None:
            self._drain_requested.set()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                header_blob = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=30
                )
            except (
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
                asyncio.TimeoutError,
            ):
                return
            lines = header_blob.decode("latin-1").split("\r\n")
            parts = lines[0].split()
            if len(parts) != 3:
                await self._respond_json(
                    writer, 400, {"ok": False, "error": "malformed request line"}
                )
                return
            method, target = parts[0].upper(), parts[1]
            path = target.split("?", 1)[0]
            headers: Dict[str, str] = {}
            for line in lines[1:]:
                if ":" in line:
                    key, value = line.split(":", 1)
                    headers[key.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            body = await reader.readexactly(length) if length else b""
            await self._route(writer, method, path, body)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond_json(writer, 200, self._health_document())
            return
        if path == "/metrics" and method == "GET":
            await self._respond_metrics(writer)
            return
        if path == "/v1/submit":
            if method != "POST":
                await self._respond_json(
                    writer, 405, {"ok": False, "error": "submit requires POST"}
                )
                return
            await self._handle_submit(writer, body)
            return
        await self._respond_json(
            writer, 404, {"ok": False, "error": f"unknown path {path}"}
        )

    async def _handle_submit(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        if self._draining:
            self._count_rejection("draining")
            await self._respond_json(
                writer,
                503,
                {"ok": False, "error": "daemon is draining"},
                retry_after=RETRY_AFTER_DRAINING_S,
            )
            return
        try:
            request = parse_request(body)
        except ProtocolError as error:
            self._count_rejection("protocol")
            await self._respond_json(writer, 400, {"ok": False, "error": str(error)})
            return
        if self._inflight >= self.config.workers + self.config.max_queue:
            self._count_rejection("queue")
            await self._respond_json(
                writer,
                429,
                {
                    "ok": False,
                    "error": "request queue is full",
                    "inflight": self._inflight,
                },
                retry_after=RETRY_AFTER_QUEUE_S,
            )
            return
        try:
            self.tenants.charge(request.tenant, request.workload)
        except BudgetExceeded as error:
            self._count_rejection("budget")
            await self._respond_json(
                writer,
                429,
                {"ok": False, "error": str(error), "tenant": request.tenant},
                retry_after=RETRY_AFTER_BUDGET_S,
            )
            return

        self._inflight += 1
        try:
            if request.stream:
                await self._respond_streaming(writer, request)
            else:
                status, payload = await self._run_on_worker(request, None)
                await self._respond_json(writer, status, payload)
        finally:
            self._inflight -= 1

    async def _run_on_worker(self, request: ServeRequest, sink):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self._run_request, request, sink
        )

    async def _respond_streaming(
        self, writer: asyncio.StreamWriter, request: ServeRequest
    ) -> None:
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[Tuple[str, object]]" = asyncio.Queue()

        def sink(event) -> None:
            # Runs on the worker thread: hop to the loop.
            loop.call_soon_threadsafe(
                queue.put_nowait, ("event", event.to_dict())
            )

        future = asyncio.ensure_future(self._run_on_worker(request, sink))
        future.add_done_callback(lambda _f: queue.put_nowait(("done", None)))

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        done = False
        while not done or not queue.empty():
            kind, data = await queue.get()
            if kind == "done":
                done = True
                continue
            await self._write_chunk(
                writer, json.dumps({"kind": "event", "event": data}, sort_keys=True)
            )
        try:
            status, payload = await future
        except Exception as error:  # worker infrastructure failure
            status, payload = 500, {"ok": False, "error": str(error)}
        await self._write_chunk(
            writer,
            json.dumps(
                {"kind": "result", "status": status, **payload}, sort_keys=True
            ),
        )
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    @staticmethod
    async def _write_chunk(writer: asyncio.StreamWriter, line: str) -> None:
        data = (line + "\n").encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
        await writer.drain()

    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict,
        retry_after: Optional[int] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        extra = f"Retry-After: {retry_after}\r\n" if retry_after is not None else ""
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _respond_metrics(self, writer: asyncio.StreamWriter) -> None:
        body = self._render_metrics().encode("utf-8")
        head = (
            f"HTTP/1.1 200 OK\r\n"
            f"Content-Type: {PROMETHEUS_CONTENT_TYPE}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Introspection documents
    # ------------------------------------------------------------------
    def _queue_depth_now(self) -> int:
        return max(0, self._inflight - self.config.workers)

    def _health_document(self) -> Dict:
        stats = self.artifacts.stats()
        return {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "inflight": self._inflight,
            "queue_depth": self._queue_depth_now(),
            "workers": self.config.workers,
            "max_queue": self.config.max_queue,
            "artifacts": stats,
            "tenants": [
                {"tenant": name, "spent": spent, "remaining": remaining}
                for name, spent, remaining in self.tenants.tenants()
            ],
        }

    def _render_metrics(self) -> str:
        stats = self.artifacts.stats()
        with self._metrics_lock:
            self._queue_depth.set(self._queue_depth_now())
            self._inflight_gauge.set(self._inflight)
            self._engine_cache_hits.set(stats["engine_hits"])
            self._engine_cache_misses.set(stats["engine_misses"])
            self._engine_cache_entries.set(stats["engines"])
            self._study_cache_hits.set(stats["study_hits"])
            self._study_cache_misses.set(stats["study_misses"])
            snapshot = self.metrics.snapshot()
        return metrics_to_prometheus(snapshot)

    def _count_rejection(self, reason: str) -> None:
        with self._metrics_lock:
            self._rejected_total.labels(reason=reason).inc()

    # ------------------------------------------------------------------
    # Worker-thread side
    # ------------------------------------------------------------------
    def _run_request(self, request: ServeRequest, sink) -> Tuple[int, Dict]:
        """Execute one admitted request (worker thread).

        Installs the request's thread-local telemetry, runs the
        workload, builds the per-request manifest, and folds the
        request's metric snapshot into the daemon registry.
        """
        obs = Observability(enabled=True)
        if sink is not None:
            obs.events.subscribe(sink)
        tracer = Tracer()
        previous = set_obs(obs)
        start = time.perf_counter()
        result: Optional[Dict] = None
        error: Optional[str] = None
        try:
            with tracer.activate():
                with tracer.span(
                    "serve.request",
                    workload=request.workload,
                    tenant=request.tenant,
                ):
                    publish(
                        CATEGORY_SERVE,
                        "request.start",
                        workload=request.workload,
                        tenant=request.tenant,
                        seed=request.seed,
                    )
                    result = run_workload(request, self.artifacts)
                    publish(
                        CATEGORY_SERVE,
                        "request.finish",
                        workload=request.workload,
                        tenant=request.tenant,
                    )
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        finally:
            set_obs(previous)
        elapsed = time.perf_counter() - start

        manifest = build_manifest(
            obs,
            tracer,
            kind="serve",
            config=request_to_dict(request),
            meta={
                "workload": request.workload,
                "tenant": request.tenant,
                "ok": error is None,
            },
        )
        manifest_path = self._write_manifest(manifest, request)

        status = "ok" if error is None else "error"
        with self._metrics_lock:
            self._requests_total.labels(
                workload=request.workload, tenant=request.tenant, status=status
            ).inc()
            self._request_seconds.labels(workload=request.workload).observe(
                elapsed
            )
            self.metrics.merge_snapshot(obs.metrics.snapshot())

        base = {
            "protocol": PROTOCOL_VERSION,
            "workload": request.workload,
            "tenant": request.tenant,
            "seed": request.seed,
            "scale": request.scale,
            "backend": request.backend,
            "elapsed_s": round(elapsed, 6),
            "manifest": {
                "config_digest": manifest.config_digest,
                "event_counts": manifest.event_counts,
                "path": manifest_path,
            },
        }
        if error is not None:
            return 500, {"ok": False, "error": error, **base}
        return 200, {"ok": True, "result": result, **base}

    def _write_manifest(self, manifest, request: ServeRequest) -> Optional[str]:
        if self.config.run_dir is None:
            return None
        with self._seq_lock:
            self._request_seq += 1
            seq = self._request_seq
        directory = os.path.join(self.config.run_dir, "manifests")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"req-{seq:06d}-{request.workload}.json")
        manifest.save(path)
        return path


@dataclass
class DaemonHandle:
    """A daemon running on a background thread (tests, load generator)."""

    daemon: ReproDaemon
    thread: threading.Thread

    @property
    def port(self) -> int:
        assert self.daemon.bound_port is not None
        return self.daemon.bound_port

    @property
    def host(self) -> str:
        return self.daemon.config.host

    def shutdown(self, timeout: float = 120.0) -> None:
        """Drain and join; raises if the daemon fails to stop in time."""
        self.daemon.request_drain()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise RuntimeError("serve daemon did not drain within the timeout")


def start_in_thread(
    config: Optional[ServeConfig] = None, startup_timeout: float = 60.0
) -> DaemonHandle:
    """Run a daemon on a background thread; returns once it is bound."""
    daemon = ReproDaemon(config)

    def runner() -> None:
        try:
            asyncio.run(daemon.run())
        except BaseException as error:  # surfaced via startup_error
            if daemon.startup_error is None:
                daemon.startup_error = error
            daemon.ready.set()

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    thread.start()
    if not daemon.ready.wait(startup_timeout):
        raise RuntimeError("serve daemon did not start within the timeout")
    if daemon.startup_error is not None:
        raise RuntimeError(
            f"serve daemon failed to start: {daemon.startup_error}"
        )
    return DaemonHandle(daemon=daemon, thread=thread)
