"""Stdlib HTTP client for the serve daemon.

Backs ``repro query`` and the load generator.  One
:class:`ServeClient` is cheap and single-use-friendly: every call
opens its own connection (the daemon is connection-per-request), so
one client object can be shared across sequential calls but threads
should each build their own.

``http.client`` decodes chunked transfer-encoding transparently, so
:meth:`ServeClient.stream` is a plain ``readline`` loop over the
daemon's NDJSON chunks.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, Optional

from repro.serve.protocol import PROTOCOL_VERSION

DEFAULT_TIMEOUT_S = 600.0


class ServeError(RuntimeError):
    """A non-2xx daemon response."""

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[int] = None,
        payload: Optional[Dict] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after
        self.payload = payload or {}


class ServeClient:
    """JSON-over-HTTP client for one daemon address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    @staticmethod
    def _raise_for_status(status: int, headers, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            payload = {}
        retry_after_raw = headers.get("Retry-After")
        retry_after = int(retry_after_raw) if retry_after_raw else None
        raise ServeError(
            status,
            str(payload.get("error", body[:200].decode("utf-8", "replace"))),
            retry_after=retry_after,
            payload=payload,
        )

    def _request_body(
        self,
        workload: str,
        tenant: str,
        seed: int,
        scale: str,
        backend: str,
        stream: bool,
        params: Optional[Dict],
    ) -> bytes:
        body: Dict[str, object] = {
            "workload": workload,
            "tenant": tenant,
            "seed": seed,
            "scale": scale,
            "backend": backend,
        }
        if stream:
            body["stream"] = True
        if params:
            body.update(params)
        return json.dumps(body, sort_keys=True).encode("utf-8")

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def submit(
        self,
        workload: str,
        tenant: str = "anonymous",
        seed: int = 0,
        scale: str = "small",
        backend: str = "dict",
        params: Optional[Dict] = None,
    ) -> Dict:
        """One blocking request; returns the parsed response payload."""
        body = self._request_body(
            workload, tenant, seed, scale, backend, False, params
        )
        conn = self._connection()
        try:
            conn.request(
                "POST",
                "/v1/submit",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                self._raise_for_status(response.status, response.headers, data)
            return json.loads(data.decode("utf-8"))
        finally:
            conn.close()

    def stream(
        self,
        workload: str,
        tenant: str = "anonymous",
        seed: int = 0,
        scale: str = "small",
        backend: str = "dict",
        params: Optional[Dict] = None,
    ) -> Iterator[Dict]:
        """Yield NDJSON documents: progress events, then the result.

        The final yielded document has ``kind == "result"``; a non-200
        admission response raises :class:`ServeError` before the first
        yield.
        """
        body = self._request_body(
            workload, tenant, seed, scale, backend, True, params
        )
        conn = self._connection()
        try:
            conn.request(
                "POST",
                "/v1/submit",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            if response.status != 200:
                self._raise_for_status(
                    response.status, response.headers, response.read()
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def healthz(self) -> Dict:
        conn = self._connection()
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                self._raise_for_status(response.status, response.headers, data)
            return json.loads(data.decode("utf-8"))
        finally:
            conn.close()

    def metrics(self) -> Dict[str, str]:
        """The Prometheus exposition text plus its content type."""
        conn = self._connection()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            data = response.read()
            if response.status != 200:
                self._raise_for_status(response.status, response.headers, data)
            return {
                "content_type": response.headers.get("Content-Type", ""),
                "text": data.decode("utf-8"),
            }
        finally:
            conn.close()

    def expect_protocol(self, payload: Dict) -> None:
        """Assert the response speaks this client's protocol version."""
        version = payload.get("protocol")
        if version != PROTOCOL_VERSION:
            raise ServeError(
                200, f"protocol mismatch: daemon={version}, client={PROTOCOL_VERSION}"
            )
