"""Concurrency load generator for the serve daemon.

Drives one in-process daemon with N client threads (default 8, the
acceptance floor) issuing a study/classify mix, and reports
throughput, tail latency and cache reuse — the numbers
``repro perf bench --section serve`` records into BENCH_pipeline.json.

The study responses double as the **differential proof**: every one is
compared byte-for-byte against the CLI-path snapshot
(``serialize(snapshot_study(quick_study(seed)))`` computed locally in
this process), so the load test fails if daemon plumbing ever perturbs
a study result.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ServeConfig, start_in_thread

#: Acceptance floor: the daemon must sustain at least this many
#: concurrent clients with byte-identical study responses.
MIN_CLIENTS = 8


@dataclass
class LoadReport:
    """Aggregate of one load run."""

    clients: int = 0
    requests: int = 0
    errors: int = 0
    throttled: int = 0
    mismatches: int = 0
    duration_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)

    def _percentile(self, fraction: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, max(0, int(fraction * len(ordered) + 0.5) - 1))
        return ordered[index]

    @property
    def req_per_s(self) -> float:
        done = len(self.latencies_s)
        return done / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def byte_identical(self) -> bool:
        return self.mismatches == 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "completed": len(self.latencies_s),
            "errors": self.errors,
            "throttled": self.throttled,
            "byte_identical": self.byte_identical,
            "duration_s": round(self.duration_s, 4),
            "req_per_s": round(self.req_per_s, 2),
            "p50_s": round(self._percentile(0.50), 6),
            "p99_s": round(self._percentile(0.99), 6),
        }


def _client_worker(
    host: str,
    port: int,
    tenant: str,
    workloads: Sequence[str],
    seed: int,
    expected_snapshot: Optional[str],
    report: LoadReport,
    lock: threading.Lock,
) -> None:
    client = ServeClient(host, port)
    for workload in workloads:
        start = time.perf_counter()
        try:
            payload = client.submit(workload, tenant=tenant, seed=seed)
        except ServeError as error:
            with lock:
                if error.status == 429:
                    report.throttled += 1
                else:
                    report.errors += 1
            # Backpressure is a signal, not a failure: honor the hint
            # (capped so a load test cannot stall on a long Retry-After).
            if error.status == 429:
                time.sleep(min(0.2, float(error.retry_after or 1)))
            continue
        elapsed = time.perf_counter() - start
        mismatch = (
            workload == "study"
            and expected_snapshot is not None
            and payload.get("result", {}).get("snapshot_json") != expected_snapshot
        )
        with lock:
            report.latencies_s.append(elapsed)
            if mismatch:
                report.mismatches += 1


def run_load(
    host: str,
    port: int,
    clients: int = MIN_CLIENTS,
    requests_per_client: int = 3,
    seed: int = 0,
    expected_snapshot: Optional[str] = None,
    mix: Sequence[str] = ("study", "classify", "classify"),
) -> LoadReport:
    """Hammer a running daemon with ``clients`` concurrent threads."""
    report = LoadReport(clients=clients, requests=clients * requests_per_client)
    lock = threading.Lock()
    threads = []
    start = time.perf_counter()
    for index in range(clients):
        workloads = [mix[i % len(mix)] for i in range(requests_per_client)]
        thread = threading.Thread(
            target=_client_worker,
            args=(
                host,
                port,
                f"tenant-{index}",
                workloads,
                seed,
                expected_snapshot,
                report,
                lock,
            ),
            name=f"loadgen-{index}",
        )
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_s = time.perf_counter() - start
    return report


def bench_serve(
    clients: int = MIN_CLIENTS,
    requests_per_client: int = 3,
    seed: int = 0,
    workers: int = 4,
) -> Dict[str, object]:
    """The ``serve`` bench section: start, load, measure, drain.

    Returns the JSON payload recorded under ``serve`` in
    BENCH_pipeline.json: throughput, tail latency, cache hit rates
    across tenants, and the byte-identity verdict of every study
    response against the CLI path.
    """
    from repro.check.golden import serialize, snapshot_study
    from repro.experiments.scenario import quick_study

    # The CLI-path reference bytes, computed in this process exactly as
    # `repro study --small` + `repro check` would.
    expected = serialize(snapshot_study(quick_study(seed)))

    handle = start_in_thread(
        ServeConfig(port=0, workers=workers, max_queue=max(16, clients * 2))
    )
    try:
        client = ServeClient(handle.host, handle.port)
        # Warm the shared caches with one study so the measured load
        # reflects steady-state service, not first-build latency.
        warm = client.submit("study", tenant="warmup", seed=seed)
        warm_identical = (
            warm.get("result", {}).get("snapshot_json") == expected
        )
        report = run_load(
            handle.host,
            handle.port,
            clients=clients,
            requests_per_client=requests_per_client,
            seed=seed,
            expected_snapshot=expected,
        )
        health = client.healthz()
    finally:
        handle.shutdown()
    artifacts = health.get("artifacts", {})
    payload = report.as_dict()
    payload.update(
        {
            "warm_identical": warm_identical,
            "byte_identical": report.byte_identical and warm_identical,
            "engine_cache_hit_rate": artifacts.get("engine_hit_rate", 0.0),
            "study_cache_hit_rate": artifacts.get("study_hit_rate", 0.0),
            "engines_cached": artifacts.get("engines", 0),
            "tenants_seen": len(health.get("tenants", [])),
        }
    )
    return payload
