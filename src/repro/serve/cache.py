"""Process-wide warm state shared across daemon tenants.

The one-shot CLI rebuilds routing trees from nothing on every run; a
long-lived daemon should not.  :class:`ArtifactStore` keeps two caches:

* **Engines** — :class:`~repro.core.gao_rexford.GaoRexfordEngine`
  instances keyed by ``(graph fingerprint, partial-transit
  fingerprint, backend)``.  The fingerprint hashes the full link set
  (:func:`repro.perf.parallel._graph_fingerprint`), so two tenants
  studying the same seeded topology — even via *different* graph
  objects — share one engine and therefore one warm routing-tree
  cache.  Correctness rests on trees being a pure function of (links,
  partial-transit, backend); the differential suite in
  :mod:`repro.check` proves cached and cold engines grade identically.

* **Studies** — byte-deterministic study snapshots (and the underlying
  :class:`~repro.core.pipeline.StudyResults`) keyed by ``(seed, scale,
  backend)``.  Studies are deterministic, so memoizing them is exact;
  a per-key lock collapses concurrent identical requests into one
  computation that every waiter shares.

All mutation is lock-guarded; handed-out engines are made thread-safe
before they escape the store.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, Optional, Tuple

from repro.core.gao_rexford import GaoRexfordEngine
from repro.core.pipeline import Study, StudyResults
from repro.serve.protocol import build_study_config

#: Bound on retained StudyResults (snapshot strings are tiny and kept
#: unbounded; full results hold the world and are the heavy part).
DEFAULT_MAX_RESULTS = 4


def _partial_fingerprint(partial: Optional[FrozenSet[Tuple[int, int]]]) -> str:
    if not partial:
        return "-"
    digest = hashlib.blake2b(digest_size=8)
    for provider, customer in sorted(partial):
        digest.update(f"{provider}|{customer}\n".encode("utf-8"))
    return digest.hexdigest()


class ArtifactStore:
    """Shared warm engines and memoized studies for the serve daemon."""

    def __init__(self, max_results: int = DEFAULT_MAX_RESULTS) -> None:
        self._lock = threading.Lock()
        self._engines: Dict[Tuple[str, str, str], GaoRexfordEngine] = {}
        self.engine_hits = 0
        self.engine_misses = 0

        self._max_results = max_results
        #: (seed, scale, backend) -> serialized golden-format snapshot.
        self._snapshots: Dict[Tuple[int, str, str], str] = {}
        #: Bounded LRU of full results for the classify/bench workloads.
        self._results: "OrderedDict[Tuple[int, str, str], StudyResults]"
        self._results = OrderedDict()
        #: Per-key build locks so concurrent identical study requests
        #: run the pipeline once, not N times.
        self._building: Dict[Tuple[int, str, str], threading.Lock] = {}
        self.study_hits = 0
        self.study_misses = 0

    # ------------------------------------------------------------------
    # Engines
    # ------------------------------------------------------------------
    def engine_for(
        self,
        graph,
        partial_transit: Optional[FrozenSet[Tuple[int, int]]] = None,
        backend: str = "dict",
    ) -> GaoRexfordEngine:
        """A warm, thread-safe engine for this link set.

        Duck-typed to what :class:`~repro.core.pipeline.Study` expects
        from its ``artifacts`` hook.  A hit returns the engine built by
        an *earlier* request (possibly another tenant's, possibly bound
        to a different graph object with identical links) along with
        its populated routing-tree cache.
        """
        from repro.perf.parallel import _graph_fingerprint

        key = (
            _graph_fingerprint(graph),
            _partial_fingerprint(partial_transit),
            backend,
        )
        with self._lock:
            engine = self._engines.get(key)
            if engine is not None:
                self.engine_hits += 1
                return engine
            self.engine_misses += 1
        # Build outside the store lock — tree prewarm is the expensive
        # part and must not serialize unrelated requests.  A racing
        # duplicate build is harmless (identical engines); first writer
        # wins so every later request shares one cache.
        engine = GaoRexfordEngine(
            graph, partial_transit=partial_transit or frozenset(), backend=backend
        ).make_thread_safe()
        with self._lock:
            return self._engines.setdefault(key, engine)

    # ------------------------------------------------------------------
    # Studies
    # ------------------------------------------------------------------
    def _build_lock(self, key: Tuple[int, str, str]) -> threading.Lock:
        with self._lock:
            lock = self._building.get(key)
            if lock is None:
                lock = self._building[key] = threading.Lock()
            return lock

    def study(self, seed: int, scale: str, backend: str) -> StudyResults:
        """The memoized study for one (seed, scale, backend)."""
        key = (seed, scale, backend)
        with self._lock:
            cached = self._results.get(key)
            if cached is not None:
                self._results.move_to_end(key)
                self.study_hits += 1
                return cached
        with self._build_lock(key):
            # Re-check: a concurrent identical request may have built
            # it while this one waited on the per-key lock.
            with self._lock:
                cached = self._results.get(key)
                if cached is not None:
                    self._results.move_to_end(key)
                    self.study_hits += 1
                    return cached
                self.study_misses += 1
            config = build_study_config(seed=seed, scale=scale, backend=backend)
            results = Study(config, artifacts=self).run()
            with self._lock:
                self._results[key] = results
                self._results.move_to_end(key)
                while len(self._results) > self._max_results:
                    self._results.popitem(last=False)
            return results

    def study_snapshot(self, seed: int, scale: str, backend: str) -> str:
        """The byte-deterministic snapshot JSON for one study.

        Exactly ``serialize(snapshot_study(results))`` — the same bytes
        ``repro check bless`` writes — which is what the daemon-vs-CLI
        differential compares.
        """
        from repro.check.golden import serialize, snapshot_study

        key = (seed, scale, backend)
        with self._lock:
            text = self._snapshots.get(key)
            if text is not None:
                return text
        results = self.study(seed, scale, backend)
        text = serialize(snapshot_study(results))
        with self._lock:
            return self._snapshots.setdefault(key, text)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        with self._lock:
            engine_lookups = self.engine_hits + self.engine_misses
            study_lookups = self.study_hits + self.study_misses
            return {
                "engines": len(self._engines),
                "engine_hits": self.engine_hits,
                "engine_misses": self.engine_misses,
                "engine_hit_rate": (
                    round(self.engine_hits / engine_lookups, 4)
                    if engine_lookups
                    else 0.0
                ),
                "studies": len(self._results),
                "study_hits": self.study_hits,
                "study_misses": self.study_misses,
                "study_hit_rate": (
                    round(self.study_hits / study_lookups, 4)
                    if study_lookups
                    else 0.0
                ),
            }
