"""Temporal delta pipeline: incremental studies over snapshot series.

Diffs consecutive inferred-topology snapshots into typed
:class:`GraphDelta` objects, invalidates exactly the cached routing
trees a delta can change, re-grades only the impacted decisions, and
emits the longitudinal violation time-series — proven equivalent to
from-scratch recomputation by the ``temporal`` differential check.
"""

from repro.temporal.delta import GraphDelta, apply_delta, diff_graphs
from repro.temporal.dirty import dirty_cache_keys, keys_to_invalidate
from repro.temporal.study import (
    EpochReport,
    TemporalInputs,
    TemporalJournal,
    TemporalResults,
    epoch_snapshot,
    run_incremental,
    run_scratch,
    serialize_epoch,
    series_fingerprint,
)

__all__ = [
    "GraphDelta",
    "apply_delta",
    "diff_graphs",
    "dirty_cache_keys",
    "keys_to_invalidate",
    "EpochReport",
    "TemporalInputs",
    "TemporalJournal",
    "TemporalResults",
    "epoch_snapshot",
    "run_incremental",
    "run_scratch",
    "serialize_epoch",
    "series_fingerprint",
]
