"""Typed diffs between consecutive :class:`ASGraph` snapshots.

A :class:`GraphDelta` captures everything that changed between two
monthly inferred topologies — links that appeared, vanished or flipped
relationship label, plus ASes that entered or left the graph — in the
normalized link form :meth:`ASGraph.links` yields (customer-provider
edges provider-first, symmetric edges lower-ASN-first).  Deltas are
pure data: they round-trip through JSON (:meth:`to_dict` /
:meth:`from_dict`) so the temporal journal can persist them, and
:func:`apply_delta` patches a graph forward so that
``apply_delta(old, diff_graphs(old, new))`` matches ``new``
link-for-link — the codec property the fuzz battery asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Tuple

from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship

#: One normalized undirected link: ``(a, b, rel)`` where ``rel`` is b's
#: role to a, in :meth:`ASGraph.links` normal form.
Link = Tuple[int, int, Relationship]

#: A relabeled link: the pair's old and new normalized triples.
Relabel = Tuple[Link, Link]


def _link_index(graph: ASGraph) -> Dict[Tuple[int, int], Link]:
    """Normalized triple per unordered AS pair."""
    return {
        (min(a, b), max(a, b)): (a, b, rel) for a, b, rel in graph.links()
    }


@dataclass(frozen=True)
class GraphDelta:
    """Everything that changed from one snapshot to the next."""

    added_asns: Tuple[int, ...] = ()
    removed_asns: Tuple[int, ...] = ()
    added: Tuple[Link, ...] = ()
    removed: Tuple[Link, ...] = ()
    relabeled: Tuple[Relabel, ...] = ()

    @property
    def empty(self) -> bool:
        return not (
            self.added_asns
            or self.removed_asns
            or self.added
            or self.removed
            or self.relabeled
        )

    def touched_pairs(self) -> FrozenSet[Tuple[int, int]]:
        """Unordered AS pairs whose adjacency or label changed.

        The grading reuse test intersects a decision group's
        (asn, next_hop) pairs with this set: a decision whose measured
        adjacency changed label must be re-graded even when its routing
        tree did not move.
        """
        pairs = set()
        for a, b, _rel in self.added:
            pairs.add((min(a, b), max(a, b)))
        for a, b, _rel in self.removed:
            pairs.add((min(a, b), max(a, b)))
        for (a, b, _old), _new in self.relabeled:
            pairs.add((min(a, b), max(a, b)))
        return frozenset(pairs)

    def removed_links(self) -> Iterator[Link]:
        """Old-graph links that no longer hold: removals plus the old
        side of every relabel (a relabel is remove-old + add-new)."""
        yield from self.removed
        for old, _new in self.relabeled:
            yield old

    def added_links(self) -> Iterator[Link]:
        """New-graph links that did not hold before: additions plus the
        new side of every relabel."""
        yield from self.added
        for _old, new in self.relabeled:
            yield new

    def summary(self) -> Dict[str, int]:
        return {
            "asns_added": len(self.added_asns),
            "asns_removed": len(self.removed_asns),
            "links_added": len(self.added),
            "links_removed": len(self.removed),
            "links_relabeled": len(self.relabeled),
        }

    # ------------------------------------------------------------------
    # JSON codec
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "added_asns": list(self.added_asns),
            "removed_asns": list(self.removed_asns),
            "added": [[a, b, rel.value] for a, b, rel in self.added],
            "removed": [[a, b, rel.value] for a, b, rel in self.removed],
            "relabeled": [
                [[a, b, old.value], [c, d, new.value]]
                for (a, b, old), (c, d, new) in self.relabeled
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "GraphDelta":
        def link(raw) -> Link:
            a, b, value = raw
            return (int(a), int(b), Relationship(value))

        return cls(
            added_asns=tuple(int(asn) for asn in payload.get("added_asns", ())),
            removed_asns=tuple(
                int(asn) for asn in payload.get("removed_asns", ())
            ),
            added=tuple(link(raw) for raw in payload.get("added", ())),
            removed=tuple(link(raw) for raw in payload.get("removed", ())),
            relabeled=tuple(
                (link(old), link(new))
                for old, new in payload.get("relabeled", ())
            ),
        )


def diff_graphs(old: ASGraph, new: ASGraph) -> GraphDelta:
    """The typed delta turning ``old`` into ``new``.

    Links are compared per unordered AS pair: a pair present in only
    one graph is an addition/removal, a pair present in both with a
    different normalized triple is a relabel (this covers both a
    relationship-class flip and a customer-provider orientation swap).
    """
    old_asns = set(old.asns())
    new_asns = set(new.asns())
    old_links = _link_index(old)
    new_links = _link_index(new)

    added = []
    removed = []
    relabeled = []
    for pair, triple in old_links.items():
        replacement = new_links.get(pair)
        if replacement is None:
            removed.append(triple)
        elif replacement != triple:
            relabeled.append((triple, replacement))
    for pair, triple in new_links.items():
        if pair not in old_links:
            added.append(triple)

    return GraphDelta(
        added_asns=tuple(sorted(new_asns - old_asns)),
        removed_asns=tuple(sorted(old_asns - new_asns)),
        added=tuple(sorted(added)),
        removed=tuple(sorted(removed)),
        relabeled=tuple(sorted(relabeled)),
    )


def apply_delta(
    graph: ASGraph, delta: GraphDelta, in_place: bool = False
) -> ASGraph:
    """Patch ``graph`` forward by ``delta``; returns the patched graph.

    With ``in_place=False`` (default) the input graph is left intact
    and a patched copy is returned.  The temporal pipeline patches in
    place so the engines' shared graph object advances with the epochs
    (their version guard sees exactly one mutation burst per epoch).
    """
    target = graph if in_place else graph.copy()
    for asn in delta.removed_asns:
        target.remove_as(asn)
    for asn in delta.added_asns:
        target.ensure_asn(asn)
    for a, b, _rel in delta.removed:
        target.remove_link(a, b)
    for (a, b, _old), (c, d, new) in delta.relabeled:
        # add_link overwrites both directions, which also handles an
        # orientation swap of a customer-provider pair.
        target.remove_link(a, b)
        target.add_link(c, d, new)
    for a, b, rel in delta.added:
        target.add_link(a, b, rel)
    return target
