"""Incremental longitudinal study over an inferred-snapshot series.

The study pipeline grades every Figure-1 layer against one aggregated
topology; this module runs the same grading against *each* monthly
snapshot and emits the violation time-series — without recomputing the
world from scratch per epoch.  Consecutive snapshots are diffed into a
:class:`~repro.temporal.delta.GraphDelta`, the provably-affected route
trees are invalidated (:mod:`repro.temporal.dirty`), the shared graph
is patched forward in place, and only the dirty trees are recomputed
and re-graded; per-(layer, tree) label tallies from the previous epoch
are reused everywhere else.

The incremental path is held to the from-scratch path by construction
and by proof: :func:`run_scratch` grades each snapshot with fresh
engines through the canonical :func:`~repro.core.classification.classify_decisions`,
and the ``temporal`` differential check (:mod:`repro.check.differential`)
asserts the two legs' per-epoch snapshots are byte-identical JSON on
both backends.

Epochs are journal-backed: with a journal path each completed epoch is
appended as one durable record, and ``resume=True`` replays journaled
epochs verbatim, rebuilds the working state by cold-grading the last
completed snapshot (a pure function of the snapshot, so the rebuild is
exact), and continues incrementally from the first missing epoch.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.classification import (
    Decision,
    DecisionLabel,
    GradeKey,
    GroupedDecisions,
    LabelCounts,
    TreeKey,
    _grade_unique,
    classify_decisions,
)
from repro.core.gao_rexford import CacheKey, GaoRexfordEngine, RoutingInfo
from repro.core.pipeline import FIGURE1_LAYERS, StudyResults, figure1_layer_configs
from repro.faults.journal import CheckpointJournal
from repro.faults.storage import StoragePolicy
from repro.net.ip import Prefix
from repro.obs.context import get_obs
from repro.obs.trace import span
from repro.temporal import dirty
from repro.temporal.delta import GraphDelta, apply_delta, diff_graphs
from repro.topology.complex_rel import ComplexRelationships
from repro.topology.graph import ASGraph
from repro.whois.siblings import SiblingGroups

#: Schema tag of the per-epoch comparison snapshot and journal records.
EPOCH_SCHEMA = 1

#: Figure-1 layers as (name, engine kind, grouping kind, complex, sibs)
#: rows.  Must mirror :func:`repro.core.pipeline.figure1_layer_configs`
#: exactly — the differential check holds the incremental grading to
#: the canonical per-layer configurations built from that function.
_LAYERS: Tuple[Tuple[str, str, str, bool, bool], ...] = (
    ("Simple", "simple", "none", False, False),
    ("Complex", "complex", "none", True, False),
    ("Sibs", "simple", "none", False, True),
    ("PSP-1", "simple", "fh1", False, False),
    ("PSP-2", "simple", "fh2", False, False),
    ("All-1", "complex", "fh1", True, True),
    ("All-2", "complex", "fh2", True, True),
)


@dataclass
class TemporalInputs:
    """Everything epoch grading needs besides the snapshots themselves.

    Decisions, PSP first-hop maps, hybrid relationships and sibling
    groups are *measurement-side* artifacts: the paper derives them from
    the campaign, not from any one monthly topology, so the longitudinal
    axis holds them fixed and varies only the inferred graph.
    """

    decisions: List[Decision]
    first_hops_1: Dict[Prefix, FrozenSet[int]] = field(default_factory=dict)
    first_hops_2: Dict[Prefix, FrozenSet[int]] = field(default_factory=dict)
    known_complex: Optional[ComplexRelationships] = None
    siblings: Optional[SiblingGroups] = None
    partial_transit: FrozenSet[Tuple[int, int]] = frozenset()
    backend: str = "dict"

    @classmethod
    def from_study(
        cls, results: StudyResults, backend: Optional[str] = None
    ) -> "TemporalInputs":
        """Lift a completed study's artifacts into temporal inputs."""
        partial: FrozenSet[Tuple[int, int]] = frozenset()
        if results.known_complex is not None:
            partial = frozenset(
                (entry.provider, entry.customer)
                for entry in results.known_complex.partial_transit_entries()
            )
        return cls(
            decisions=results.decisions,
            first_hops_1=results.first_hops_1,
            first_hops_2=results.first_hops_2,
            known_complex=results.known_complex,
            siblings=results.siblings,
            partial_transit=partial,
            backend=backend or results.config.backend,
        )


@dataclass
class EpochReport:
    """What one epoch did: the delta, the dirty set, and the tallies."""

    index: int
    #: :meth:`GraphDelta.summary` of the diff from the previous epoch
    #: (empty for epoch 0 and for replayed epochs).
    delta: Dict[str, int] = field(default_factory=dict)
    #: Destinations dirtied unconditionally (incident changes), summed
    #: over both engines.
    dirty_destinations: int = 0
    #: Cached trees dropped from the engines this epoch.
    invalidated_trees: int = 0
    #: (layer, tree) groups re-graded this epoch.
    regraded_groups: int = 0
    #: (layer, tree) groups whose previous tally was reused verbatim.
    reused_groups: int = 0
    #: Routing-cache misses charged during the epoch (both engines) —
    #: the zero-diff edge case asserts this is 0.
    cache_misses: int = 0
    #: Raw Figure-1 counts per layer, :func:`epoch_snapshot` shape.
    figure1: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Whether this epoch was replayed from the journal on resume.
    resumed: bool = False

    def violations(self) -> Dict[str, int]:
        """Per-layer violation totals (everything but Best/Short)."""
        best = DecisionLabel.BEST_SHORT.value
        return {
            layer: sum(count for label, count in counts.items() if label != best)
            for layer, counts in self.figure1.items()
        }


@dataclass
class TemporalResults:
    """The longitudinal violation time-series and its accounting."""

    backend: str
    epochs: List[EpochReport] = field(default_factory=list)
    #: Epochs replayed from the journal rather than computed.
    resumed_epochs: int = 0

    def figure1_series(self) -> List[Dict[str, Dict[str, int]]]:
        return [epoch.figure1 for epoch in self.epochs]

    def violation_series(self) -> List[Dict[str, int]]:
        return [epoch.violations() for epoch in self.epochs]

    def as_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "resumed_epochs": self.resumed_epochs,
            "epochs": [
                {
                    "index": epoch.index,
                    "delta": dict(epoch.delta),
                    "dirty_destinations": epoch.dirty_destinations,
                    "invalidated_trees": epoch.invalidated_trees,
                    "regraded_groups": epoch.regraded_groups,
                    "reused_groups": epoch.reused_groups,
                    "cache_misses": epoch.cache_misses,
                    "resumed": epoch.resumed,
                    "figure1": epoch.figure1,
                }
                for epoch in self.epochs
            ],
        }


# ---------------------------------------------------------------------------
# Per-epoch comparison snapshot
# ---------------------------------------------------------------------------


def epoch_snapshot(index: int, figure1: Dict[str, Dict[str, int]]) -> Dict[str, object]:
    """The canonical JSON-able record of one epoch's Figure-1 counts.

    Both the incremental and the from-scratch legs emit this exact
    shape; the differential check compares their serializations
    byte-for-byte per epoch.
    """
    return {"schema": EPOCH_SCHEMA, "epoch": index, "figure1": figure1}


def serialize_epoch(snapshot: Dict[str, object]) -> str:
    """Byte-deterministic serialization (same format as the goldens)."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def _counts_dict(figure1: Dict[str, LabelCounts]) -> Dict[str, Dict[str, int]]:
    """Raw per-layer counts in presentation/enum order (JSON-able)."""
    return {
        layer: {
            label.value: figure1[layer].counts[label] for label in DecisionLabel
        }
        for layer in FIGURE1_LAYERS
        if layer in figure1
    }


# ---------------------------------------------------------------------------
# Journal
# ---------------------------------------------------------------------------


class TemporalJournal(CheckpointJournal):
    """Append-only epoch journal (one record per completed epoch).

    Rides the campaign journal's CRC-framed, torn-tail-safe storage
    layer; only the record schema differs.
    """

    record_kind = "epoch"
    required_fields = ("epoch", "figure1")


def series_fingerprint(snapshots: List[ASGraph], inputs: TemporalInputs) -> str:
    """Identity of one temporal run: the snapshots plus the decisions.

    Stamped into the journal header; resume refuses a journal whose
    fingerprint differs (epochs from a different series would be
    silently interleaved otherwise).
    """
    # Imported lazily: repro.perf.parallel imports from repro.core.
    from repro.perf.parallel import _graph_fingerprint

    digest = hashlib.blake2b(digest_size=8)
    for snapshot in snapshots:
        digest.update(_graph_fingerprint(snapshot).encode("utf-8"))
    digest.update(
        f"|{len(inputs.decisions)}|{inputs.backend}".encode("utf-8")
    )
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Incremental runner
# ---------------------------------------------------------------------------


def _tally_tree(
    engine: GaoRexfordEngine,
    grouping: GroupedDecisions,
    tree_key: TreeKey,
    complex_rel: Optional[ComplexRelationships],
    siblings: Optional[SiblingGroups],
) -> Tuple[LabelCounts, Dict[GradeKey, DecisionLabel]]:
    """Grade one tree's unique decisions into a :class:`LabelCounts`.

    The exact inner loop of
    :func:`repro.core.classification.classify_grouped`, run for a single
    tree so tallies can be cached and reused per (layer, tree).  Also
    returns the per-grade-key labels, which the diff re-tally uses to
    carry unaffected labels across epochs.
    """
    destination, allowed = tree_key
    info = engine.routing_info(destination, allowed)
    graph = engine.graph
    counts = LabelCounts()
    labels: Dict[GradeKey, DecisionLabel] = {}
    node_state: Dict[int, Tuple[object, Optional[int]]] = {}
    decisions = grouping.decisions
    for grade_key, indices in grouping.groups[tree_key].items():
        label = _grade_unique(
            decisions[indices[0]], info, graph, complex_rel, siblings, node_state
        )
        labels[grade_key] = label
        counts.add(label, len(indices))
    return counts, labels


def _retally_tree_diff(
    engine: GaoRexfordEngine,
    grouping: GroupedDecisions,
    tree_key: TreeKey,
    complex_rel: Optional[ComplexRelationships],
    siblings: Optional[SiblingGroups],
    old_info,
    old_labels: Dict[GradeKey, DecisionLabel],
    counts: LabelCounts,
    touched: FrozenSet[Tuple[int, int]],
    by_asn: Dict[int, List[Tuple[GradeKey, int]]],
    by_pair: Dict[Tuple[int, int], List[Tuple[GradeKey, int]]],
    pair_set: FrozenSet[Tuple[int, int]],
) -> None:
    """Re-tally a dirty tree by adjusting its previous-epoch tally.

    A label is a pure function of the tree's model facts at the
    decision maker (``best_class``, ``gr_route_length`` at the asn),
    the inferred relationship on the measured adjacency, and inputs
    the temporal axis holds fixed (siblings, hybrid dataset, measured
    length, border city).  So instead of re-grading every grade key of
    a dirty tree, only the keys that can move are re-graded: keys whose
    measured pair the delta touched, plus — when the tree itself was
    recomputed — keys whose asn's model facts differ between the old
    and new tree.  ``counts`` and ``old_labels`` (the carried tally and
    label map) are adjusted in place by the label deltas.

    A tree that is stale only through a touched pair was never
    invalidated, so ``engine.routing_info`` returns the identical
    cached object and the per-asn comparison short-circuits entirely.
    """
    destination, allowed = tree_key
    info = engine.routing_info(destination, allowed)
    graph = engine.graph
    node_state: Dict[int, Tuple[object, Optional[int]]] = {}
    targets: Dict[GradeKey, int] = {}
    for pair in pair_set & touched:
        for grade_key, weight in by_pair[pair]:
            targets[grade_key] = weight
    if info is not old_info:
        if type(info) is RoutingInfo and type(old_info) is RoutingInfo:
            # Dict backend: (best_class, gr_route_length) at an asn is
            # determined by its membership/value across the three dist
            # maps, so compare those directly — ~10x cheaper than the
            # method calls for the hundreds of asns per tree.
            nc, npe, npr = info.customer_dist, info.peer_dist, info.provider_dist
            oc, ope, opr = (
                old_info.customer_dist,
                old_info.peer_dist,
                old_info.provider_dist,
            )
            for asn, entries in by_asn.items():
                if asn in nc:
                    changed = nc[asn] != oc.get(asn)
                elif asn in npe:
                    changed = asn in oc or npe[asn] != ope.get(asn)
                elif asn in npr:
                    changed = asn in oc or asn in ope or npr[asn] != opr.get(asn)
                else:
                    changed = asn in oc or asn in ope or asn in opr
                if changed:
                    for grade_key, weight in entries:
                        targets[grade_key] = weight
        else:
            changed_asns = None
            finder = getattr(info, "changed_asns", None)
            if finder is not None and type(info) is type(old_info):
                # Array backend: one vectorized compare of the cached
                # rank/length vectors replaces per-asn scalar queries.
                changed_asns = finder(old_info, by_asn)
            if changed_asns is not None:
                for asn in changed_asns:
                    for grade_key, weight in by_asn[asn]:
                        targets[grade_key] = weight
            else:
                for asn, entries in by_asn.items():
                    if info.best_class(asn) is not old_info.best_class(
                        asn
                    ) or info.gr_route_length(asn) != old_info.gr_route_length(asn):
                        for grade_key, weight in entries:
                            targets[grade_key] = weight
    if not targets:
        return
    groups = grouping.groups[tree_key]
    decisions = grouping.decisions
    for grade_key, weight in targets.items():
        label = _grade_unique(
            decisions[groups[grade_key][0]],
            info,
            graph,
            complex_rel,
            siblings,
            node_state,
        )
        previous = old_labels[grade_key]
        if label is not previous:
            counts.add(previous, -weight)
            counts.add(label, weight)
            old_labels[grade_key] = label


class _EpochState:
    """The warm state the incremental runner carries across epochs."""

    def __init__(self, start: ASGraph, inputs: TemporalInputs) -> None:
        self.inputs = inputs
        #: The working topology, patched forward in place per epoch.
        self.graph = start.copy()
        self.engines: Dict[str, GaoRexfordEngine] = {
            "simple": GaoRexfordEngine(self.graph, backend=inputs.backend),
            "complex": GaoRexfordEngine(
                self.graph,
                partial_transit=inputs.partial_transit,
                backend=inputs.backend,
            ),
        }
        #: Decisions grouped by tree, shared across layers (the grouping
        #: depends only on the decisions and the first-hop maps, never
        #: on the graph, so it is built exactly once for the series).
        self.groupings: Dict[str, GroupedDecisions] = {
            "none": GroupedDecisions(inputs.decisions, None),
            "fh1": GroupedDecisions(inputs.decisions, inputs.first_hops_1),
            "fh2": GroupedDecisions(inputs.decisions, inputs.first_hops_2),
        }
        #: Per grouping, per tree: the normalized measured adjacencies
        #: its decisions grade — a reused tally additionally requires
        #: these pairs to be disjoint from the delta's touched pairs
        #: (``graph.relationship(asn, next_hop)`` feeds Best directly).
        self.pair_sets: Dict[str, Dict[TreeKey, FrozenSet[Tuple[int, int]]]] = {}
        #: Per grouping, per tree: asn -> [(grade key, decision count)]
        #: and normalized pair -> [(grade key, decision count)] — the
        #: indexes the diff re-tally uses to find exactly the grade
        #: keys a delta can move.
        self.by_asn: Dict[
            str, Dict[TreeKey, Dict[int, List[Tuple[GradeKey, int]]]]
        ] = {}
        self.by_pair: Dict[
            str, Dict[TreeKey, Dict[Tuple[int, int], List[Tuple[GradeKey, int]]]]
        ] = {}
        for name, grouping in self.groupings.items():
            pair_sets: Dict[TreeKey, FrozenSet[Tuple[int, int]]] = {}
            asn_index: Dict[TreeKey, Dict[int, List[Tuple[GradeKey, int]]]] = {}
            pair_index: Dict[
                TreeKey, Dict[Tuple[int, int], List[Tuple[GradeKey, int]]]
            ] = {}
            for tree_key, by_grade in grouping.groups.items():
                asn_map: Dict[int, List[Tuple[GradeKey, int]]] = {}
                pair_map: Dict[Tuple[int, int], List[Tuple[GradeKey, int]]] = {}
                for grade_key, indices in by_grade.items():
                    asn, hop = grade_key[0], grade_key[1]
                    entry = (grade_key, len(indices))
                    pair = (asn, hop) if asn <= hop else (hop, asn)
                    asn_map.setdefault(asn, []).append(entry)
                    pair_map.setdefault(pair, []).append(entry)
                pair_sets[tree_key] = frozenset(pair_map)
                asn_index[tree_key] = asn_map
                pair_index[tree_key] = pair_map
            self.pair_sets[name] = pair_sets
            self.by_asn[name] = asn_index
            self.by_pair[name] = pair_index
        #: layer -> tree -> tally from the last completed epoch.
        self.tallies: Dict[str, Dict[TreeKey, LabelCounts]] = {}
        #: layer -> tree -> grade key -> label from the last completed
        #: epoch; lets a dirty tree's re-tally carry labels whose inputs
        #: provably did not move (see :func:`_retally_tree_diff`).
        self.labels: Dict[str, Dict[TreeKey, Dict[GradeKey, DecisionLabel]]] = {}

    def cache_misses(self) -> int:
        return sum(
            engine.cache_stats().misses for engine in self.engines.values()
        )

    def _prewarm(self, needed: Dict[str, Dict[TreeKey, None]]) -> None:
        """Warm each engine's missing trees in one batch.

        On the array backend this is a single CSR kernel sweep over all
        missing destinations — the epoch's whole routing recompute.
        """
        for kind, keys in needed.items():
            if keys:
                self.engines[kind].warm_batch(list(keys))

    def full_grade(self) -> int:
        """Grade every layer's every tree from the current graph.

        Used for epoch 0 and for the state rebuild on resume.  Returns
        the number of (layer, tree) groups graded.
        """
        needed: Dict[str, Dict[TreeKey, None]] = {"simple": {}, "complex": {}}
        for _layer, engine_kind, grouping_kind, _cx, _sb in _LAYERS:
            for tree_key in self.groupings[grouping_kind].groups:
                needed[engine_kind][tree_key] = None
        self._prewarm(needed)
        inputs = self.inputs
        graded = 0
        tallies: Dict[str, Dict[TreeKey, LabelCounts]] = {}
        labels: Dict[str, Dict[TreeKey, Dict[GradeKey, DecisionLabel]]] = {}
        for layer, engine_kind, grouping_kind, use_complex, use_sibs in _LAYERS:
            engine = self.engines[engine_kind]
            grouping = self.groupings[grouping_kind]
            per_tree: Dict[TreeKey, LabelCounts] = {}
            per_labels: Dict[TreeKey, Dict[GradeKey, DecisionLabel]] = {}
            for tree_key in grouping.groups:
                per_tree[tree_key], per_labels[tree_key] = _tally_tree(
                    engine,
                    grouping,
                    tree_key,
                    inputs.known_complex if use_complex else None,
                    inputs.siblings if use_sibs else None,
                )
                graded += 1
            tallies[layer] = per_tree
            labels[layer] = per_labels
        self.tallies = tallies
        self.labels = labels
        return graded

    def advance(self, delta: GraphDelta) -> Tuple[int, int, int, int]:
        """Patch the graph forward one epoch and re-grade the dirty set.

        Returns ``(dirty destinations, invalidated trees, regraded
        groups, reused groups)``.  ``self.tallies`` is replaced with the
        new epoch's per-tree tallies.
        """
        engines = self.engines
        inputs = self.inputs

        # Everything below up to apply_delta reads the OLD topology:
        # the dirty test counts surviving achievers against it, and the
        # cache-key canonicalization consulted for the reuse decision
        # must match the keys the trees were cached under.
        dirty_sets: Dict[str, Tuple[Set[int], Set[CacheKey]]] = {}
        drop: Dict[str, List[CacheKey]] = {}
        # Pre-mutation snapshot of each engine's cache: the keys gate
        # tally reuse (evicted trees were never dirty-tested), and the
        # old RoutingInfo values anchor the per-grade-key diff re-tally
        # of dirty trees.  RoutingInfo objects are immutable snapshots,
        # so they stay valid after apply_delta mutates the graph.
        warm_before: Dict[str, Dict[CacheKey, object]] = {}
        canonical: Dict[str, Dict[TreeKey, CacheKey]] = {}
        for kind, engine in engines.items():
            dests, keys = dirty.dirty_cache_keys(engine, delta)
            dirty_sets[kind] = (dests, keys)
            drop[kind] = dirty.keys_to_invalidate(engine, dests, keys)
            warm_before[kind] = dict(engine.cached_trees())
            canonical[kind] = {}
        for _layer, engine_kind, grouping_kind, _cx, _sb in _LAYERS:
            engine = engines[engine_kind]
            mapping = canonical[engine_kind]
            for tree_key in self.groupings[grouping_kind].groups:
                if tree_key not in mapping:
                    mapping[tree_key] = engine.cache_key(*tree_key)

        apply_delta(self.graph, delta, in_place=True)

        # invalidate_keys adopts the new graph version: the surviving
        # remainder of the cache is exactly what the dirty test just
        # certified as unchanged.
        invalidated = sum(
            engines[kind].invalidate_keys(drop[kind]) for kind in engines
        )

        touched = delta.touched_pairs()
        needed: Dict[str, Dict[TreeKey, None]] = {"simple": {}, "complex": {}}
        plan: List[Tuple[str, str, str, bool, bool, List[TreeKey]]] = []
        reused = 0
        for layer, engine_kind, grouping_kind, use_complex, use_sibs in _LAYERS:
            dests, keys = dirty_sets[engine_kind]
            mapping = canonical[engine_kind]
            warm = warm_before[engine_kind]
            pair_sets = self.pair_sets[grouping_kind]
            stale: List[TreeKey] = []
            for tree_key in self.groupings[grouping_kind].groups:
                canon = mapping[tree_key]
                tree_clean = (
                    canon in warm  # evicted trees were never dirty-tested
                    and tree_key[0] not in dests
                    and canon not in keys
                )
                if tree_clean and pair_sets[tree_key].isdisjoint(touched):
                    reused += 1
                else:
                    stale.append(tree_key)
                    needed[engine_kind][tree_key] = None
            plan.append(
                (layer, engine_kind, grouping_kind, use_complex, use_sibs, stale)
            )

        self._prewarm(needed)
        regraded = 0
        for layer, engine_kind, grouping_kind, use_complex, use_sibs, stale in plan:
            engine = engines[engine_kind]
            grouping = self.groupings[grouping_kind]
            per_tree = self.tallies[layer]
            per_labels = self.labels[layer]
            old_infos = warm_before[engine_kind]
            mapping = canonical[engine_kind]
            asn_index = self.by_asn[grouping_kind]
            pair_index = self.by_pair[grouping_kind]
            pair_sets = self.pair_sets[grouping_kind]
            complex_rel = inputs.known_complex if use_complex else None
            sibs = inputs.siblings if use_sibs else None
            for tree_key in stale:
                old_info = old_infos.get(mapping[tree_key])
                old_labels = per_labels.get(tree_key)
                if old_info is not None and old_labels is not None:
                    _retally_tree_diff(
                        engine,
                        grouping,
                        tree_key,
                        complex_rel,
                        sibs,
                        old_info,
                        old_labels,
                        per_tree[tree_key],
                        touched,
                        asn_index[tree_key],
                        pair_index[tree_key],
                        pair_sets[tree_key],
                    )
                else:
                    per_tree[tree_key], per_labels[tree_key] = _tally_tree(
                        engine, grouping, tree_key, complex_rel, sibs
                    )
                regraded += 1

        dirty_dests = sum(len(dests) for dests, _keys in dirty_sets.values())
        return dirty_dests, invalidated, regraded, reused

    def figure1(self) -> Dict[str, Dict[str, int]]:
        """Sum the per-tree tallies into the epoch's Figure-1 counts."""
        totals: Dict[str, LabelCounts] = {}
        for layer, per_tree in self.tallies.items():
            total = LabelCounts()
            for counts in per_tree.values():
                total = total + counts
            totals[layer] = total
        return _counts_dict(totals)


def _epoch_record(report: EpochReport) -> Dict[str, object]:
    """The journal record for one computed epoch."""
    return {
        "epoch": report.index,
        "schema": EPOCH_SCHEMA,
        "delta": dict(report.delta),
        "dirty_destinations": report.dirty_destinations,
        "invalidated_trees": report.invalidated_trees,
        "regraded_groups": report.regraded_groups,
        "reused_groups": report.reused_groups,
        "cache_misses": report.cache_misses,
        "figure1": report.figure1,
    }


def _replayed_report(record: Dict[str, object]) -> EpochReport:
    return EpochReport(
        index=int(record["epoch"]),
        delta={k: int(v) for k, v in dict(record.get("delta", {})).items()},
        dirty_destinations=int(record.get("dirty_destinations", 0)),
        invalidated_trees=int(record.get("invalidated_trees", 0)),
        regraded_groups=int(record.get("regraded_groups", 0)),
        reused_groups=int(record.get("reused_groups", 0)),
        cache_misses=int(record.get("cache_misses", 0)),
        figure1={
            layer: {label: int(count) for label, count in counts.items()}
            for layer, counts in dict(record["figure1"]).items()
        },
        resumed=True,
    )


def run_incremental(
    snapshots: List[ASGraph],
    inputs: TemporalInputs,
    journal_path: Optional[str] = None,
    resume: bool = False,
    storage: Optional[StoragePolicy] = None,
) -> TemporalResults:
    """Run the longitudinal study incrementally over ``snapshots``.

    With ``journal_path`` every completed epoch is appended durably;
    ``resume=True`` replays journaled epochs verbatim and continues
    from the first missing one (the working state is rebuilt by
    cold-grading the last completed snapshot — a pure function of the
    snapshot, so the continuation is identical to an uninterrupted
    run).  Without ``resume`` an existing journal is overwritten.
    """
    if not snapshots:
        raise ValueError("temporal study needs at least one snapshot")

    fingerprint = None
    journal: Optional[TemporalJournal] = None
    replayed: List[EpochReport] = []
    if journal_path is not None:
        fingerprint = series_fingerprint(snapshots, inputs)
        journal = TemporalJournal(journal_path, storage=storage)
        if resume and journal.exists():
            header, records = journal.load()
            if header is not None:
                stamped = header.get("fingerprint")
                if stamped is not None and stamped != fingerprint:
                    raise ValueError(
                        f"{journal_path} was written for a different snapshot "
                        f"series (fingerprint {stamped!r} != {fingerprint!r})"
                    )
            by_epoch = {int(record["epoch"]): record for record in records}
            # Only an unbroken prefix can be replayed: epoch k's state
            # is rebuilt from epoch k-1, which must itself be complete.
            index = 0
            while index in by_epoch and index < len(snapshots):
                replayed.append(_replayed_report(by_epoch[index]))
                index += 1
        elif not resume and journal.exists():
            os.remove(journal_path)

    metrics = get_obs().metrics
    results = TemporalResults(backend=inputs.backend, epochs=list(replayed))
    results.resumed_epochs = len(replayed)
    start = len(replayed)

    if start >= len(snapshots):
        return results

    try:
        if journal is not None:
            journal.open_append()
            if not replayed:
                journal.write_header(
                    {
                        "fingerprint": fingerprint,
                        "snapshots": len(snapshots),
                        "backend": inputs.backend,
                        "decisions": len(inputs.decisions),
                    }
                )

        # Seed the warm state: epoch 0 cold, or — on resume — a cold
        # rebuild of the last journaled epoch's state (not re-emitted).
        seed_index = max(start - 1, 0)
        state = _EpochState(snapshots[seed_index], inputs)
        with span("temporal-epoch", index=seed_index, mode="full"):
            misses_before = state.cache_misses()
            graded = state.full_grade()
        if start == 0:
            report = EpochReport(
                index=0,
                regraded_groups=graded,
                cache_misses=state.cache_misses() - misses_before,
                figure1=state.figure1(),
            )
            results.epochs.append(report)
            if journal is not None:
                journal.append(_epoch_record(report))
            if metrics.enabled:
                metrics.counter(
                    "repro_temporal_epochs_total",
                    "Temporal epochs computed incrementally.",
                ).inc()
            start = 1

        for index in range(start, len(snapshots)):
            with span("temporal-epoch", index=index, mode="delta"):
                misses_before = state.cache_misses()
                delta = diff_graphs(snapshots[index - 1], snapshots[index])
                if delta.empty:
                    # Nothing changed: every tally (and every cached
                    # tree) carries over untouched — the engines are
                    # not even consulted.
                    report = EpochReport(
                        index=index,
                        reused_groups=sum(
                            len(per_tree) for per_tree in state.tallies.values()
                        ),
                        figure1=state.figure1(),
                    )
                else:
                    dirty_dests, invalidated, regraded, reused = state.advance(
                        delta
                    )
                    report = EpochReport(
                        index=index,
                        delta=delta.summary(),
                        dirty_destinations=dirty_dests,
                        invalidated_trees=invalidated,
                        regraded_groups=regraded,
                        reused_groups=reused,
                        cache_misses=state.cache_misses() - misses_before,
                        figure1=state.figure1(),
                    )
            results.epochs.append(report)
            if journal is not None:
                journal.append(_epoch_record(report))
            if metrics.enabled:
                metrics.counter(
                    "repro_temporal_epochs_total",
                    "Temporal epochs computed incrementally.",
                ).inc()
                metrics.counter(
                    "repro_temporal_trees_invalidated_total",
                    "Cached routing trees invalidated by snapshot deltas.",
                ).inc(report.invalidated_trees)
                metrics.counter(
                    "repro_temporal_groups_reused_total",
                    "Per-(layer, tree) tallies reused across epochs.",
                ).inc(report.reused_groups)
    finally:
        if journal is not None:
            journal.close()
    return results


# ---------------------------------------------------------------------------
# From-scratch reference leg
# ---------------------------------------------------------------------------


def run_scratch(
    snapshots: List[ASGraph], inputs: TemporalInputs
) -> List[Dict[str, Dict[str, int]]]:
    """Grade every snapshot cold, through the canonical study path.

    Fresh engines per snapshot, layers configured by
    :func:`figure1_layer_configs`, grading by
    :func:`classify_decisions` (which dispatches to the vectorized
    arena on the ``array`` backend) — exactly what a per-snapshot study
    would compute.  This is the oracle the incremental leg is compared
    against byte-for-byte.
    """
    series: List[Dict[str, Dict[str, int]]] = []
    for snapshot in snapshots:
        engine_simple = GaoRexfordEngine(snapshot, backend=inputs.backend)
        engine_complex = GaoRexfordEngine(
            snapshot,
            partial_transit=inputs.partial_transit,
            backend=inputs.backend,
        )
        layer_configs = figure1_layer_configs(
            engine_simple,
            engine_complex,
            known_complex=inputs.known_complex,
            siblings=inputs.siblings,
            first_hops_1=inputs.first_hops_1,
            first_hops_2=inputs.first_hops_2,
        )
        figure1 = {
            layer: classify_decisions(
                inputs.decisions,
                config.engine,
                first_hops_for=config.first_hops_for,
                complex_rel=config.complex_rel,
                siblings=config.siblings,
            )
            for layer, config in layer_configs.items()
        }
        series.append(_counts_dict(figure1))
    return series
