"""Which cached routing trees a :class:`GraphDelta` can change.

Gao-Rexford distances are the unique fixpoint of per-node, per-stage
min-equations (DESIGN.md §14 states them and the soundness argument in
full):

* stage 1 — ``cd(x) = min over customers/siblings b of x of cd(b)+1``
  (base case ``cd(dest) = 0``),
* stage 2 — ``pd(x) = min over peers b of x of cd(b)+1``,
* stage 3 — ``provd(c) = min over providers q of c of chosen(q)+1``
  where ``chosen(q)`` prefers ``cd`` over ``pd`` over ``provd`` and a
  partial-transit pair ``(q, c)`` contributes no term while ``q`` has
  no customer/peer route,

with every term whose *source* is the destination gated by the tree's
allowed-first-hop set.  An edge change touches only the terms it
creates or deletes, so a cached tree provably cannot move unless:

* a **removed** term was the *only* achiever of some node-stage min
  (counted against the old graph's surviving terms, evaluated at the
  old tree's distances), or
* an **added** term, evaluated at the old distances, *strictly*
  improves some node-stage min (ties cannot move distances — only
  parents, which nothing on the temporal path consumes), or
* the change is **incident to the destination** (first-hop gating and
  the engine's canonical-key collapse both read the destination's
  neighbor set, so these trees are dirtied unconditionally).

The test never under-approximates; it over-approximates only when a
removal and an addition in the same delta would exactly cancel.  It is
evaluated against the *old* graph — callers must compute dirty sets
before patching the shared graph forward.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.gao_rexford import CacheKey, GaoRexfordEngine, RoutingInfo
from repro.temporal.delta import GraphDelta
from repro.topology.graph import ASGraph
from repro.topology.relationships import Relationship

#: The three construction stages a term can belong to.
_STAGE_CUSTOMER = 0
_STAGE_PEER = 1
_STAGE_PROVIDER = 2

#: One directional term: (node whose min it feeds, stage, source node).
_Term = Tuple[int, int, int]


def _directional_terms(links) -> List[_Term]:
    """The stage terms a set of normalized links creates or deletes.

    A customer-provider link feeds the provider's stage-1 min from the
    customer and the customer's stage-3 min from the provider; peer
    links feed both endpoints' stage-2 mins from each other; sibling
    links feed both endpoints' stage-1 mins from each other.
    """
    terms: List[_Term] = []
    for a, b, rel in links:
        if rel is Relationship.CUSTOMER:
            # Normal form: a is the provider, b the customer.
            terms.append((a, _STAGE_CUSTOMER, b))
            terms.append((b, _STAGE_PROVIDER, a))
        elif rel is Relationship.PEER:
            terms.append((a, _STAGE_PEER, b))
            terms.append((b, _STAGE_PEER, a))
        else:  # SIBLING carries customer routes both ways.
            terms.append((a, _STAGE_CUSTOMER, b))
            terms.append((b, _STAGE_CUSTOMER, a))
    return terms


def _term_value(
    stage: int,
    node: int,
    source: int,
    info: RoutingInfo,
    partial_transit: FrozenSet[Tuple[int, int]],
    destination: int,
    allowed: Optional[FrozenSet[int]],
) -> Optional[int]:
    """The term's value at the old tree's distances; None if absent.

    Mirrors the engine's gates exactly: announcements leave the
    destination only toward allowed first hops, and a partial-transit
    provider exports nothing downward while it has no fixed
    (customer/peer) route of its own.
    """
    if source == destination and allowed is not None and node not in allowed:
        return None
    customer = info.customer_dist
    if stage == _STAGE_CUSTOMER or stage == _STAGE_PEER:
        base = customer.get(source)
        return None if base is None else base + 1
    # Stage 3: the provider exports its chosen route.
    base = customer.get(source)
    if base is None:
        base = info.peer_dist.get(source)
        if base is None:
            if (source, node) in partial_transit:
                return None
            base = info.provider_dist.get(source)
            if base is None:
                return None
    return base + 1


def _node_min(stage: int, node: int, info: RoutingInfo) -> Optional[int]:
    if stage == _STAGE_CUSTOMER:
        return info.customer_dist.get(node)
    if stage == _STAGE_PEER:
        return info.peer_dist.get(node)
    return info.provider_dist.get(node)


def _surviving_achievers(
    graph: ASGraph,
    stage: int,
    node: int,
    old_min: int,
    info: RoutingInfo,
    partial_transit: FrozenSet[Tuple[int, int]],
    destination: int,
    allowed: Optional[FrozenSet[int]],
) -> int:
    """How many of the node's old-graph terms attain ``old_min``.

    The scan runs over the *old* graph, so removed edges are still
    counted — the caller compares this total against the removed
    achievers to decide whether any achiever survives.
    """
    if stage == _STAGE_CUSTOMER:
        wanted = (Relationship.CUSTOMER, Relationship.SIBLING)
    elif stage == _STAGE_PEER:
        wanted = (Relationship.PEER,)
    else:
        wanted = (Relationship.PROVIDER,)
    count = 0
    for neighbor, rel in graph.neighbors(node).items():
        if rel not in wanted:
            continue
        value = _term_value(
            stage, node, neighbor, info, partial_transit, destination, allowed
        )
        if value == old_min:
            count += 1
    return count


def _tree_is_dirty(
    graph: ASGraph,
    info: RoutingInfo,
    destination: int,
    allowed: Optional[FrozenSet[int]],
    partial_transit: FrozenSet[Tuple[int, int]],
    removed_terms: List[_Term],
    added_terms: List[_Term],
) -> bool:
    """Whether this one cached tree can move under the delta.

    ``removed_terms``/``added_terms`` carry no destination-incident
    terms — the caller already dirtied those trees unconditionally.
    """
    # Removals: a (node, stage) min whose every achiever is removed
    # must rise.  Group removed terms per (node, stage) so several
    # removed edges at one node are counted together.
    removed_at: Dict[Tuple[int, int], int] = {}
    for node, stage, source in removed_terms:
        old_min = _node_min(stage, node, info)
        if old_min is None:
            continue
        value = _term_value(
            stage, node, source, info, partial_transit, destination, allowed
        )
        if value != old_min:
            continue  # not an achiever: removing it changes nothing
        key = (node, stage)
        removed_at[key] = removed_at.get(key, 0) + 1
    for (node, stage), removed_count in removed_at.items():
        total = _surviving_achievers(
            graph,
            stage,
            node,
            _node_min(stage, node, info),
            info,
            partial_transit,
            destination,
            allowed,
        )
        if removed_count >= total:
            return True

    # Additions: a new term that strictly improves a min (or creates
    # one where none existed) must lower it.  Equal-value terms cannot
    # move distances, only parents — which the temporal path never
    # reads (grading and these dirty tests are distance-only).
    for node, stage, source in added_terms:
        value = _term_value(
            stage, node, source, info, partial_transit, destination, allowed
        )
        if value is None:
            continue
        old_min = _node_min(stage, node, info)
        if old_min is None or value < old_min:
            return True
    return False


def dirty_cache_keys(
    engine: GaoRexfordEngine, delta: GraphDelta
) -> Tuple[Set[int], Set[CacheKey]]:
    """(dirty destinations, dirty cache keys) among the engine's warm trees.

    Must run **before** the engine's graph is patched forward: both the
    achiever counting and the cached trees themselves describe the old
    topology.  A destination in the returned set dirties *every* key
    for it (whatever the allowed set); the key set covers trees dirtied
    by non-incident changes.  Pass the union to
    :meth:`GaoRexfordEngine.invalidate_keys` after patching.
    """
    graph = engine.graph
    partial_transit = engine.partial_transit

    endpoints: Set[int] = set()
    for a, b in delta.touched_pairs():
        endpoints.add(a)
        endpoints.add(b)
    endpoints.update(delta.added_asns)
    endpoints.update(delta.removed_asns)

    removed_all = _directional_terms(delta.removed_links())
    added_all = _directional_terms(delta.added_links())

    dirty_dests: Set[int] = set()
    dirty_keys: Set[CacheKey] = set()
    for (destination, allowed), info in engine.cached_trees():
        if destination in endpoints:
            # First-hop gating and canonical-key collapse both read the
            # destination's neighbor set; any incident change dirties
            # the whole destination.
            dirty_dests.add(destination)
            continue
        # This destination touches no changed edge, so no term below
        # involves it and the unconditional case above is fully spent.
        if _tree_is_dirty(
            graph,
            info,
            destination,
            allowed,
            partial_transit,
            removed_all,
            added_all,
        ):
            dirty_keys.add((destination, allowed))
    return dirty_dests, dirty_keys


def keys_to_invalidate(
    engine: GaoRexfordEngine,
    dirty_dests: Iterable[int],
    dirty_keys: Iterable[CacheKey],
) -> List[CacheKey]:
    """Expand a dirty set into the concrete cached keys to drop."""
    dests = set(dirty_dests)
    keys = set(dirty_keys)
    return [
        key
        for key, _info in engine.cached_trees()
        if key[0] in dests or key in keys
    ]
