"""IP-to-AS mapping by longest-prefix match over originated prefixes."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.ip import IPAddress, Prefix
from repro.net.trie import PrefixTrie


class IPToASMapper:
    """Maps addresses to the AS originating the covering prefix.

    Built from (prefix, origin ASN) pairs — in practice the origination
    data a real pipeline extracts from BGP table dumps.
    """

    def __init__(self, originations: Iterable[Tuple[Prefix, int]] = ()) -> None:
        self._trie: PrefixTrie = PrefixTrie()
        for prefix, asn in originations:
            self.add(prefix, asn)

    @classmethod
    def from_prefix_map(cls, prefixes: Dict[int, List[Prefix]]) -> "IPToASMapper":
        """Build from an ``{asn: [prefixes]}`` origination map."""
        mapper = cls()
        for asn, prefix_list in prefixes.items():
            for prefix in prefix_list:
                mapper.add(prefix, asn)
        return mapper

    def add(self, prefix: Prefix, asn: int) -> None:
        self._trie.insert(prefix, asn)

    def lookup(self, address: IPAddress) -> Optional[int]:
        """The origin ASN for ``address``, or ``None`` if uncovered."""
        return self._trie.lookup(address)

    def lookup_prefix(self, address: IPAddress) -> Optional[Prefix]:
        """The covering prefix for ``address``."""
        match = self._trie.lookup_with_prefix(address)
        return None if match is None else match[0]

    def __len__(self) -> int:
        return len(self._trie)
