"""IP-to-AS mapping, geolocation, and traceroute conversion.

These are the measurement-pipeline substrates of Section 3.1: mapping
traceroute hop addresses to ASes by longest-prefix match over
originated prefixes, converting IP-level paths to AS-level paths with
the cleanups of Chen et al. (CoNEXT'09), and geolocating
infrastructure addresses (the paper uses the Alidade database; we use
the generated ground truth behind a configurable error model).
"""

from repro.ipmap.ip2as import IPToASMapper
from repro.ipmap.geolocation import GeoDatabase
from repro.ipmap.path_conversion import ASLevelPath, convert_traceroute, path_decisions

__all__ = [
    "IPToASMapper",
    "GeoDatabase",
    "ASLevelPath",
    "convert_traceroute",
    "path_decisions",
]
