"""IP geolocation with a configurable error model.

The paper geolocates router addresses with Alidade, which "offers good
coverage of infrastructure IPs".  We derive a database from the
generated ground truth, then degrade it: a fraction of addresses are
missing, and a fraction geolocate to the wrong city (drawn
deterministically per address so results are reproducible).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.net.ip import IPAddress
from repro.topogen.geography import City
from repro.topogen.internet import Internet


class GeoDatabase:
    """Maps addresses to cities, with country/continent conveniences."""

    def __init__(self, locations: Optional[Dict[int, City]] = None) -> None:
        self._locations: Dict[int, City] = dict(locations or {})

    @classmethod
    def from_internet(
        cls,
        internet: Internet,
        error_rate: float = 0.02,
        miss_rate: float = 0.03,
        seed: int = 0,
    ) -> "GeoDatabase":
        """Derive a degraded database from ground truth.

        ``error_rate`` of covered addresses point at a wrong city;
        ``miss_rate`` are absent entirely.
        """
        rng = random.Random(seed)
        all_cities = internet.world.all_cities()
        locations: Dict[int, City] = {}
        for value, city in sorted(internet.ip_locations.items()):
            roll = rng.random()
            if roll < miss_rate:
                continue
            if roll < miss_rate + error_rate:
                locations[value] = rng.choice(all_cities)
            else:
                locations[value] = city
        return cls(locations)

    def add(self, address: IPAddress, city: City) -> None:
        self._locations[address.value] = city

    def city_of(self, address: IPAddress) -> Optional[City]:
        return self._locations.get(address.value)

    def country_of(self, address: IPAddress) -> Optional[str]:
        city = self.city_of(address)
        return None if city is None else city.country

    def continent_of(self, address: IPAddress) -> Optional[str]:
        city = self.city_of(address)
        return None if city is None else city.continent

    def continents_of_path(self, addresses: List[IPAddress]) -> List[Optional[str]]:
        """Continent per hop, ``None`` where the database has no entry."""
        return [self.continent_of(address) for address in addresses]

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, address: IPAddress) -> bool:
        return address.value in self._locations
