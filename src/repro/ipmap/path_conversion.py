"""Traceroute-to-AS-path conversion (Chen et al., CoNEXT'09 style).

Raw traceroutes are IP-level and messy: unresponsive hops, interconnect
/30 addresses that belong to the neighboring AS, and hops with no
origination data.  The conversion maps each responding hop to an AS,
collapses consecutive duplicates (which also absorbs the
interconnect-ownership artifact), bridges short gaps, and records
whether the result is complete enough to trust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dataplane.traceroute import TracerouteResult
from repro.ipmap.ip2as import IPToASMapper


@dataclass(frozen=True)
class ASLevelPath:
    """An AS-level path recovered from one traceroute."""

    source_asn: int
    destination_asn: int
    hops: Tuple[int, ...]
    #: False when unresolved gaps forced us to bridge between ASes, so
    #: some adjacency may be inferred rather than observed.
    complete: bool

    def __len__(self) -> int:
        return len(self.hops)

    def adjacencies(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(zip(self.hops[:-1], self.hops[1:]))


def convert_traceroute(
    result: TracerouteResult, mapper: IPToASMapper
) -> Optional[ASLevelPath]:
    """Convert one traceroute to an AS path, or ``None`` if unusable.

    A traceroute is unusable when it did not reach the destination or
    when too little of it maps to ASes to recover even the endpoints.
    """
    if not result.reached or not result.hops:
        return None
    # Map hop IPs to ASNs; None for '*' and unmapped addresses.
    mapped: List[Optional[int]] = []
    for hop in result.hops:
        if hop.ip is None:
            mapped.append(None)
        else:
            mapped.append(mapper.lookup(hop.ip))
    destination_asn = mapper.lookup(result.destination_ip)
    if destination_asn is None:
        return None

    # Prepend the probe's own AS (the probe knows where it sits).
    sequence: List[Optional[int]] = [result.source_asn] + mapped

    # Collapse consecutive duplicates, tracking unresolved gaps.
    hops: List[int] = []
    bridged = False
    pending_gap = False
    for asn in sequence:
        if asn is None:
            pending_gap = True
            continue
        if hops and hops[-1] == asn:
            # Same AS on both sides of any gap: the gap was internal.
            pending_gap = False
            continue
        if hops and pending_gap:
            bridged = True
        pending_gap = False
        hops.append(asn)
    if not hops:
        return None
    if hops[-1] != destination_asn:
        hops.append(destination_asn)
    if len(hops) < 2:
        return None
    return ASLevelPath(
        source_asn=result.source_asn,
        destination_asn=destination_asn,
        hops=tuple(hops),
        complete=not bridged,
    )


def path_decisions(path: ASLevelPath) -> List[Tuple[int, int]]:
    """The routing decisions observable on one AS path.

    Interdomain routing is destination-based, so every AS on the path
    (except the destination) reveals its next-hop choice toward the
    destination: ``[(asn, next_hop), ...]``.
    """
    return list(zip(path.hops[:-1], path.hops[1:]))
